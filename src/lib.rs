//! # sensormeta
//!
//! Umbrella crate for the reproduction of *"Advanced Search, Visualization
//! and Tagging of Sensor Metadata"* (Paparrizos, Jeung, Aberer — ICDE 2011):
//! re-exports every subsystem so downstream users can depend on one crate.
//!
//! - [`relstore`] — embedded relational engine (the MySQL stand-in)
//! - [`rdf`] — triple store + SPARQL subset (the RDF export stand-in)
//! - [`graph`] — shared graph toolkit
//! - [`rank`] — double-link PageRank, six solvers, recommendations
//! - [`smr`] — the Sensor Metadata Repository (semantic wiki layer)
//! - [`search`] — BM25 full-text, autocomplete, facets
//! - [`query`] — the Query Management module (SQL + SPARQL + ranking + ACL)
//! - [`tagging`] — the Dynamic Tagging System (cosine graphs, Bron–Kerbosch, Eq. 6)
//! - [`viz`] — SVG charts, maps, graphs, hypergraphs, tag clouds
//! - [`server`] — the demo HTTP application
//! - [`workload`] — synthetic Swiss-Experiment corpus & web-graph generators
//! - [`obs`] — metrics, spans and Prometheus-style exposition
//! - [`par`] — deterministic work-chunked thread pool behind the hot paths
//! - [`cache`] — epoch-invalidated result cache shared by query, search, rank and tagging
//! - [`mod@bench`] — seeded end-to-end benchmark suite
//!
//! ```
//! use sensormeta::smr::{PageDraft, Smr};
//! use sensormeta::query::{QueryEngine, SearchForm};
//!
//! let mut smr = Smr::new();
//! smr.create_page(PageDraft::new("Deployment:d1", "Deployment")
//!     .body("wind sensor")).unwrap();
//! let engine = QueryEngine::open(smr).unwrap();
//! assert_eq!(engine.search(&SearchForm::keywords("wind"), None).unwrap().items.len(), 1);
//! ```

#![warn(missing_docs)]

pub use sensormeta_bench as bench;
pub use sensormeta_cache as cache;
pub use sensormeta_cluster as cluster;
pub use sensormeta_graph as graph;
pub use sensormeta_obs as obs;
pub use sensormeta_par as par;
pub use sensormeta_query as query;
pub use sensormeta_rank as rank;
pub use sensormeta_rdf as rdf;
pub use sensormeta_relstore as relstore;
pub use sensormeta_resil as resil;
pub use sensormeta_search as search;
pub use sensormeta_server as server;
pub use sensormeta_smr as smr;
pub use sensormeta_tagging as tagging;
pub use sensormeta_viz as viz;
pub use sensormeta_workload as workload;

/// Builds an [`smr::Smr`] pre-loaded with the synthetic Swiss-Experiment
/// corpus at the given scale — the quickest path to a populated system.
pub fn demo_repository(cfg: &workload::CorpusConfig) -> smr::Smr {
    let mut repo = smr::Smr::new();
    let report = repo.bulk_load(workload::generate_corpus(cfg).into_iter().map(|p| {
        let mut d = smr::PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    debug_assert!(report.errors.is_empty(), "{:?}", report.errors);
    repo
}
