//! `sensormeta` — command-line interface to the whole system.
//!
//! ```text
//! sensormeta generate  --out corpus.jsonl [--institutions N] [--seed N]
//! sensormeta load      --snapshot repo.snap FILE...
//! sensormeta search    --snapshot repo.snap QUERY [--attribute A --op OP --value V] [--limit N]
//! sensormeta sql       --snapshot repo.snap "SELECT …"
//! sensormeta sparql    --snapshot repo.snap "PREFIX … SELECT …"
//! sensormeta pagerank  --snapshot repo.snap [--top N]
//! sensormeta tagcloud  --snapshot repo.snap [--svg FILE]
//! sensormeta serve     --snapshot repo.snap [--addr HOST:PORT]
//! sensormeta fsck      --snapshot repo.snap
//! sensormeta fig3      [--size N] [--tol T]
//! ```

use sensormeta::query::{CondOp, Condition, QueryEngine, SearchForm};
use sensormeta::rank::{all_solvers, PageRankProblem, TransitionMatrix};
use sensormeta::smr::{parse_csv, parse_jsonl, Smr};
use sensormeta::tagging::{compute_cloud, CloudParams, TagStore};
use sensormeta::workload::{barabasi_albert, generate_corpus, CorpusConfig};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn run(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "generate" => generate(&opts),
        "load" => load(&opts),
        "search" => search(&opts),
        "sql" => sql(&opts),
        "sparql" => sparql(&opts),
        "pagerank" => pagerank(&opts),
        "tagcloud" => tagcloud(&opts),
        "serve" => serve(&opts),
        "fsck" => fsck(&opts),
        "fig3" => fig3(&opts),
        "bench" => bench(&opts),
        "stats" => stats(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `sensormeta help`").into()),
    }
}

fn print_usage() {
    println!(
        "sensormeta — advanced search, visualization and tagging of sensor metadata\n\n\
         commands:\n  \
         generate  --out FILE [--institutions N] [--seed N]   write a synthetic corpus (JSONL)\n  \
         load      --snapshot FILE INPUT...                   bulk-load JSONL/CSV into a snapshot\n  \
         search    --snapshot FILE QUERY [--attribute A --op OP --value V] [--limit N]\n  \
         sql       --snapshot FILE \"SELECT …\"                  run SQL (SELECT/EXPLAIN)\n  \
         sparql    --snapshot FILE \"SELECT …\"                  run SPARQL\n  \
         pagerank  --snapshot FILE [--top N]                  print page authorities\n  \
         tagcloud  --snapshot FILE [--svg FILE]               print/render the tag cloud\n  \
         serve     --snapshot FILE [--addr HOST:PORT]         start the demo web app\n  \
         fsck      --snapshot FILE                            verify WAL checksums + structural invariants\n  \
         fig3      [--size N] [--tol T]                       reproduce the Fig. 3 solver table\n  \
         bench     [--scale N] [--iterations N] [--seed N] [--out-dir DIR]  run the seeded suite, write BENCH_*.json\n  \
         stats     SUBCOMMAND [ARGS...]                       run any subcommand, then dump the metrics registry"
    );
}

/// Dead-simple option parser: `--key value` pairs plus positionals.
struct Opts {
    flags: std::collections::BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut flags = std::collections::BTreeMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                flags.insert(key.to_owned(), value);
                i += 2;
            } else {
                positional.push(args[i].clone());
                i += 1;
            }
        }
        Opts { flags, positional }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_owned()
    }

    fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn snapshot(&self) -> Result<&str, Box<dyn std::error::Error>> {
        self.get("snapshot")
            .ok_or_else(|| "missing --snapshot FILE".into())
    }
}

fn open_smr(opts: &Opts) -> Result<Smr, Box<dyn std::error::Error>> {
    let path = opts.snapshot()?;
    Ok(Smr::load(Path::new(path))?)
}

fn generate(opts: &Opts) -> CliResult {
    let out = opts.get("out").ok_or("missing --out FILE")?;
    let cfg = CorpusConfig {
        institutions: opts.usize_or("institutions", 6),
        projects_per_institution: opts.usize_or("projects", 3),
        sites_per_project: opts.usize_or("sites", 4),
        deployments_per_site: opts.usize_or("deployments", 5),
        seed: opts.usize_or("seed", 2011) as u64,
    };
    let pages = generate_corpus(&cfg);
    let mut lines = String::new();
    for p in &pages {
        let draft = sensormeta::smr::PageDraft {
            title: p.title.clone(),
            namespace: p.namespace.to_owned(),
            body: p.body.clone(),
            annotations: p.annotations.clone(),
            links: p.links.clone(),
            tags: p.tags.clone(),
        };
        lines.push_str(&serde_json::to_string(&draft)?);
        lines.push('\n');
    }
    std::fs::write(out, lines)?;
    println!("wrote {} pages to {out}", pages.len());
    Ok(())
}

fn load(opts: &Opts) -> CliResult {
    let path = opts.snapshot()?.to_owned();
    if opts.positional.is_empty() {
        return Err("no input files given".into());
    }
    // Durable open: creates a fresh store when the snapshot is absent,
    // otherwise recovers any committed work left in the write-ahead log.
    let (mut smr, report) = Smr::open_durable(Path::new(&path))?;
    if report.replayed_ops > 0 || !report.wal_problems.is_empty() {
        println!(
            "recovered {} op(s) from the write-ahead log ({} skipped, {} problem(s))",
            report.replayed_ops,
            report.skipped_ops,
            report.wal_problems.len()
        );
        for p in report.wal_problems.iter().take(5) {
            eprintln!("  wal: {p}");
        }
    }
    for input in &opts.positional {
        let text = std::fs::read_to_string(input)?;
        let (drafts, errors) = if input.ends_with(".csv") {
            parse_csv(&text)
        } else {
            parse_jsonl(&text)
        };
        let report = smr.bulk_load(drafts);
        println!(
            "{input}: created {}, updated {}, errors {}",
            report.created,
            report.updated,
            report.errors.len() + errors.len()
        );
        for (what, why) in report.errors.iter().chain(errors.iter()).take(5) {
            eprintln!("  {what}: {why}");
        }
    }
    // Fold the log into a fresh snapshot so the next open starts clean.
    smr.checkpoint()?;
    println!(
        "checkpointed snapshot to {path} ({} pages)",
        smr.page_count()
    );
    Ok(())
}

fn search(opts: &Opts) -> CliResult {
    let smr = open_smr(opts)?;
    let engine = QueryEngine::open(smr)?;
    let mut form = SearchForm::keywords(opts.positional.join(" "));
    if let (Some(attr), Some(value)) = (opts.get("attribute"), opts.get("value")) {
        let op = match opts.get_or("op", "eq").as_str() {
            "contains" => CondOp::Contains,
            "gt" => CondOp::Gt,
            "lt" => CondOp::Lt,
            "between" => CondOp::Between,
            _ => CondOp::Eq,
        };
        form.conditions.push(Condition::new(attr, op, value));
    }
    form.limit = opts.usize_or("limit", 10);
    let out = engine.search(&form, opts.get("user"))?;
    println!("{} results", out.total_matched);
    for item in &out.items {
        println!(
            "  {:<40} score={:.3} pr={:.3}  {}",
            item.title, item.score, item.pagerank, item.snippet
        );
    }
    if let Some(dym) = &out.did_you_mean {
        println!("did you mean: {dym}");
    }
    if !out.recommendations.is_empty() {
        println!("related:");
        for r in &out.recommendations {
            println!("  {}", r.title);
        }
    }
    Ok(())
}

fn sql(opts: &Opts) -> CliResult {
    let smr = open_smr(opts)?;
    let q = opts.positional.join(" ");
    let rs = smr.sql(&q)?;
    print!("{}", rs.to_ascii_table());
    Ok(())
}

fn sparql(opts: &Opts) -> CliResult {
    let smr = open_smr(opts)?;
    let q = opts.positional.join(" ");
    let sols = smr.sparql(&q)?;
    println!("{}", sols.vars.join("\t"));
    for row in &sols.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|t| {
                t.as_ref()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "—".into())
            })
            .collect();
        println!("{}", cells.join("\t"));
    }
    Ok(())
}

fn pagerank(opts: &Opts) -> CliResult {
    let smr = open_smr(opts)?;
    let engine = QueryEngine::open(smr)?;
    let mut titles = engine.smr().page_titles()?;
    titles.sort_by(|a, b| {
        engine
            .pagerank_of(b)
            .partial_cmp(&engine.pagerank_of(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for t in titles.iter().take(opts.usize_or("top", 20)) {
        println!("{:.5}  {t}", engine.pagerank_of(t).unwrap_or(0.0));
    }
    Ok(())
}

fn tagcloud(opts: &Opts) -> CliResult {
    let smr = open_smr(opts)?;
    let mut store = TagStore::new();
    let pairs = smr.all_tags()?;
    store.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    let cloud = compute_cloud(&store, &CloudParams::default());
    println!(
        "{} tags, {} cliques",
        cloud.entries.len(),
        cloud.cliques.len()
    );
    for entry in cloud.by_prominence().iter().take(opts.usize_or("top", 20)) {
        println!(
            "  {:<20} count={:<4} size={:<3} cliques={:?}",
            entry.tag, entry.count, entry.font_size, entry.cliques
        );
    }
    if let Some(svg_path) = opts.get("svg") {
        std::fs::write(
            svg_path,
            sensormeta::viz::render_tag_cloud("Metadata trends", &cloud),
        )?;
        println!("wrote {svg_path}");
    }
    Ok(())
}

fn serve(opts: &Opts) -> CliResult {
    match sensormeta::resil::chaos::install_from_env() {
        Ok(0) => {}
        Ok(n) => println!("chaos: armed {n} fault(s) from SENSORMETA_CHAOS"),
        Err(e) => return Err(format!("SENSORMETA_CHAOS: {e}").into()),
    }
    let topology = sensormeta::cluster::Topology::from_env();
    // Replicas tail the primary's write-ahead log, so a replicated server
    // must own the store durably; otherwise the plain recovering open keeps
    // the snapshot read-only.
    let smr = if topology.replicas > 0 {
        Smr::open_durable(Path::new(opts.snapshot()?))?.0
    } else {
        open_smr(opts)?
    };
    println!("indexing {} pages…", smr.page_count());
    let engine = QueryEngine::open(smr)?;
    let mut app = sensormeta::server::App::new(engine);
    if topology.shards > 1 {
        println!("scatter-gather serving over {} shards", topology.shards);
    }
    if topology.replicas > 0 {
        let n = app.attach_replicas(Path::new(opts.snapshot()?))?;
        println!(
            "attached {n} WAL-shipped read replica(s), staleness bound {} epoch(s)",
            topology.staleness_epochs
        );
    }
    let addr = opts.get_or("addr", "127.0.0.1:8080");
    let server = sensormeta::server::serve(app, &addr, opts.usize_or("workers", 8))?;
    println!("serving on http://{}", server.addr);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Scans the write-ahead log that rides alongside `snapshot` (if any) and
/// verifies every frame's length and CRC32. The bytes are read raw off disk
/// *before* the snapshot is opened, so the verdict reflects exactly what a
/// recovery would see — a durable open would checkpoint the log away.
fn wal_fsck(snapshot: &Path) -> Result<(), Vec<String>> {
    let wal_path = sensormeta::relstore::wal_path_for(snapshot);
    if !wal_path.exists() {
        println!("fsck: write-ahead log: absent (nothing to verify)");
        return Ok(());
    }
    let bytes = match std::fs::read(&wal_path) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("unreadable: {e}")]),
    };
    let scan = sensormeta::relstore::scan_wal(&bytes);
    println!(
        "fsck: write-ahead log: {} frame(s), {} committed transaction(s), \
         {} uncommitted, {} byte(s) discarded",
        scan.frames,
        scan.committed.len(),
        scan.uncommitted_txs,
        scan.discarded_bytes
    );
    if scan.problems.is_empty() {
        Ok(())
    } else {
        Err(scan.problems)
    }
}

/// Runs every deep structural validator over a snapshot: the write-ahead
/// log (frame lengths and checksums), the relational mirror (heaps, slotted
/// pages, B-tree indexes), the RDF triple store, the hyperlink CSR graphs,
/// and the tag-similarity graph. Exits nonzero if any invariant is violated.
fn fsck(opts: &Opts) -> CliResult {
    let wal_outcome = wal_fsck(Path::new(opts.snapshot()?));
    let smr = open_smr(opts)?;
    let mut failures = 0usize;
    let mut section = |name: &str, outcome: Result<(), Vec<String>>| match outcome {
        Ok(()) => println!("fsck: {name}: ok"),
        Err(problems) => {
            failures += problems.len();
            for p in &problems {
                println!("fsck: {name}: {p}");
            }
        }
    };

    section("write-ahead log", wal_outcome);
    section("relational store", smr.database().check_invariants());
    section("rdf triple store", smr.rdf().check_invariants());

    let (hyperlink, semantic, _titles) = smr.link_graphs()?;
    section("hyperlink graph", hyperlink.check_invariants());
    section("semantic graph", semantic.check_invariants());

    let mut tags = TagStore::new();
    let pairs = smr.all_tags()?;
    tags.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    let (_names, sets) = tags.incidence();
    let threshold = sensormeta::tagging::DEFAULT_THRESHOLD;
    let graph = sensormeta::tagging::similarity_graph(&sets, threshold);
    section(
        "tag similarity graph",
        sensormeta::tagging::check_similarity_graph(&sets, threshold, &graph),
    );

    if failures == 0 {
        println!("fsck: all invariants hold");
        Ok(())
    } else {
        Err(format!("fsck: {failures} invariant violation(s)").into())
    }
}

/// Runs the seeded benchmark suite and writes one `BENCH_<name>.json` per
/// workload (p50/p95/p99 straight from the obs histograms).
fn bench(opts: &Opts) -> CliResult {
    let cfg = sensormeta::bench::BenchConfig {
        scale: opts.usize_or("scale", 4),
        iterations: opts.usize_or("iterations", 40),
        seed: opts.usize_or("seed", 2011) as u64,
    };
    let dir = opts.get_or("out-dir", ".");
    for report in sensormeta::bench::run_suite(&cfg) {
        let path = format!("{dir}/BENCH_{}.json", report.name);
        std::fs::write(&path, report.to_json())?;
        println!(
            "{:<16} n={:<4} p50={}us p95={}us p99={}us max={}us -> {path}",
            report.name,
            report.iterations,
            report.p50_us,
            report.p95_us,
            report.p99_us,
            report.max_us
        );
    }
    Ok(())
}

/// Wrapper command: runs any other subcommand, then dumps the global
/// metrics registry (Prometheus text format; set SENSORMETA_STATS=json for
/// the JSON rendering) to stdout.
fn stats(rest: &[String]) -> CliResult {
    if !rest.is_empty() {
        run(rest)?;
    }
    let reg = sensormeta::obs::global();
    let dump = if std::env::var("SENSORMETA_STATS").as_deref() == Ok("json") {
        reg.render_json()
    } else {
        reg.render_prometheus()
    };
    print!("{dump}");
    Ok(())
}

fn fig3(opts: &Opts) -> CliResult {
    let n = opts.usize_or("size", 10_000);
    let tol: f64 = opts.get("tol").and_then(|t| t.parse().ok()).unwrap_or(1e-9);
    let g = barabasi_albert(n, 3, 0.15, 2011);
    let p = PageRankProblem::new(TransitionMatrix::from_graph(&g));
    println!("n={n}, tol={tol:.0e}");
    println!(
        "{:<14} {:>10} {:>9} {:>9}",
        "method", "iterations", "matvecs", "ms"
    );
    for solver in all_solvers() {
        let t0 = std::time::Instant::now();
        let r = solver.solve(&p, tol, 10_000);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<14} {:>10} {:>9} {:>9.2}{}",
            solver.name(),
            r.iterations,
            r.matvecs,
            ms,
            if r.converged {
                ""
            } else {
                "  (no convergence)"
            }
        );
    }
    Ok(())
}
