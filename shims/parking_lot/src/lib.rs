//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with non-poisoning
//! guards, implemented over `std::sync`. A poisoned std lock (a panic while
//! holding the guard) is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
