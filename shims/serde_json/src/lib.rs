//! Offline stand-in for `serde_json`: a recursive-descent JSON parser and
//! compact printer over the `serde` shim's [`Value`] tree, plus
//! [`to_string`]/[`from_str`] entry points and a [`json!`] macro.
//!
//! Shim limits: numbers are `i64` when integral else `f64`; `json!` object
//! values may be arbitrary expressions or `[...]` array literals, but not
//! nested `{...}` object literals (wrap those in an inner `json!` call).

#![warn(missing_docs)]

pub use serde::Value;

#[doc(hidden)]
pub use serde as __serde;

use std::fmt;

/// JSON (de)serialization failure with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in this workspace's
                            // data; unpaired surrogates degrade to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Object values may be expressions
/// or `[...]` literals; nest objects via inner `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__serde::Serialize::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( (($key).to_string(), $crate::__serde::Serialize::to_value(&$val)) ),* ])
    };
    ($other:expr) => { $crate::__serde::Serialize::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -7}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x\n");
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], -7);
        let reparsed: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("{} junk").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        let rows: Vec<Vec<String>> = vec![vec!["a".into()]];
        let v = json!({"rows": rows, "tags": ["wind"], "n": 3, "ok": true});
        assert_eq!(v["rows"][0][0], "a");
        assert_eq!(v["tags"][0], "wind");
        assert_eq!(v["n"], 3);
        assert_eq!(
            v.to_string(),
            r#"{"rows":[["a"]],"tags":["wind"],"n":3,"ok":true}"#
        );
    }

    #[test]
    fn string_escaping() {
        let v = Value::String("he said \"hi\"\t\\".into());
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }
}
