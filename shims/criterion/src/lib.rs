//! Offline stand-in for `criterion`: the same builder-style API surface the
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`), backed by a simple
//! wall-clock timer. Each bench runs a short warmup, then `sample_size`
//! timed iterations, and prints mean/min per-iteration time. Set
//! `CRITERION_SHIM_SKIP=1` to compile-check benches without running them.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque measurement context handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if skip() {
            return;
        }
        // Warmup.
        black_box(f());
        for _ in 0..self.iters_per_sample {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn skip() -> bool {
    std::env::var_os("CRITERION_SHIM_SKIP").is_some_and(|v| v == "1")
}

/// Identity function that defeats constant-folding of bench results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from just the parameter component.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.default_samples, None, |b| f(b));
        self
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.samples, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-bench; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: samples.max(1),
    };
    f(&mut b);
    if skip() || b.samples.is_empty() {
        println!("bench {label}: skipped");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    match tp {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {label}: mean {mean:?}, min {min:?}, {rate:.0} elem/s");
        }
        _ => println!("bench {label}: mean {mean:?}, min {min:?}"),
    }
}

/// Declares a group-runner function over the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
                b.iter(|| n * 2);
            });
            g.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }
}
