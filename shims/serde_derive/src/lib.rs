//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available in
//! this container). Supports the shapes this workspace actually derives:
//!
//! - named-field structs, with `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes; missing `Option<T>`
//!   fields deserialize to `None`; unknown input fields are ignored
//! - enums with unit and newtype variants (externally tagged), with the
//!   `#[serde(rename_all = "snake_case")]` container attribute
//!
//! Generated impls target the `Serialize`/`Deserialize` traits of the
//! sibling `serde` shim (`to_value`/`from_value` over `serde::Value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    ty: String,
    has_default: bool,
    default_path: Option<String>,
}

struct Variant {
    name: String,
    newtype: bool,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container_attrs = Vec::new();

    // Leading attributes (docs, #[serde(...)], other derives' helpers).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(inner) = serde_attr_body(&g.stream()) {
                        container_attrs.push(inner);
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) / pub(super)
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => i += 1,
        }
    }

    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    // Skip ahead to the body brace group (no generics in this workspace).
    let body = loop {
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => continue,
            None => panic!(
                "serde_derive shim: `{name}` has no braced body (tuple/unit types unsupported)"
            ),
        }
    };

    let rename_snake = container_attrs
        .iter()
        .any(|a| a.contains("rename_all") && a.contains("snake_case"));

    let src = if is_enum {
        let variants = parse_variants(&body);
        match which {
            Which::Serialize => enum_serialize(&name, &variants, rename_snake),
            Which::Deserialize => enum_deserialize(&name, &variants, rename_snake),
        }
    } else {
        let fields = parse_fields(&body);
        match which {
            Which::Serialize => struct_serialize(&name, &fields),
            Which::Deserialize => struct_deserialize(&name, &fields),
        }
    };

    src.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim: generated invalid code for `{name}`: {e}"))
}

/// If `stream` is the inside of a `#[...]` attribute and it is a
/// `serde(...)` attribute, returns the `...` body as a string.
fn serde_attr_body(stream: &TokenStream) -> Option<String> {
    let mut it = stream.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Some(g.stream().to_string())
        }
        _ => None,
    }
}

/// Splits a brace-group body at top-level commas (tracking `<...>` depth;
/// parenthesized groups are single token trees, so their commas never show).
fn split_top_level(body: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle: i32 = 0;
    for tt in body.clone().into_iter() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Consumes leading `#[...]` attributes from `toks[*i..]`, returning the
/// bodies of any `serde(...)` attributes among them.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut serde_attrs = Vec::new();
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if let Some(body) = serde_attr_body(&g.stream()) {
                serde_attrs.push(body);
            }
            *i += 2;
        } else {
            break;
        }
    }
    serde_attrs
}

fn parse_fields(body: &TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    for chunk in split_top_level(body) {
        let mut i = 0;
        let attrs = take_attrs(&chunk, &mut i);
        if let Some(TokenTree::Ident(id)) = chunk.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue, // trailing comma artifact
        };
        i += 1;
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: field `{name}` missing `:` (got {other:?})"),
        }
        let ty = chunk[i..]
            .iter()
            .map(|tt| tt.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let mut has_default = false;
        let mut default_path = None;
        for a in &attrs {
            let a = a.trim();
            if a == "default" {
                has_default = true;
            } else if let Some(rest) = a.strip_prefix("default") {
                let rest = rest.trim_start();
                if let Some(path) = rest.strip_prefix('=') {
                    default_path = Some(path.trim().trim_matches('"').to_string());
                }
            }
        }
        fields.push(Field {
            name,
            ty,
            has_default,
            default_path,
        });
    }
    fields
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    for chunk in split_top_level(body) {
        let mut i = 0;
        let _ = take_attrs(&chunk, &mut i); // skips #[default], docs, etc.
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        i += 1;
        let newtype = matches!(
            chunk.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        variants.push(Variant { name, newtype });
    }
    variants
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn wire_name(name: &str, rename_snake: bool) -> String {
    if rename_snake {
        snake_case(name)
    } else {
        name.to_string()
    }
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
         {pushes}\
         ::serde::Value::Object(fields)\n\
         }}\n}}\n"
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut lets = String::new();
    let mut inits = String::new();
    for f in fields {
        let missing = if let Some(path) = &f.default_path {
            format!("{path}()")
        } else if f.has_default || f.ty.starts_with("Option") {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::DeError::missing_field(\"{}\"))",
                f.name
            )
        };
        lets.push_str(&format!(
            "let field_{n}: {ty} = match v.get(\"{n}\") {{\n\
             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             None => {missing},\n\
             }};\n",
            n = f.name,
            ty = f.ty
        ));
        inits.push_str(&format!("{n}: field_{n},\n", n = f.name));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
         if v.as_object().is_none() {{\n\
         return Err(::serde::DeError::new(concat!(\"expected object for \", stringify!({name}))));\n\
         }}\n\
         {lets}\
         Ok({name} {{ {inits} }})\n\
         }}\n}}\n"
    )
}

fn enum_serialize(name: &str, variants: &[Variant], rename_snake: bool) -> String {
    let mut arms = String::new();
    for v in variants {
        let wire = wire_name(&v.name, rename_snake);
        if v.newtype {
            arms.push_str(&format!(
                "{name}::{v_name}(inner) => ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Serialize::to_value(inner))]),\n",
                v_name = v.name
            ));
        } else {
            arms.push_str(&format!(
                "{name}::{v_name} => ::serde::Value::String(\"{wire}\".to_string()),\n",
                v_name = v.name
            ));
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant], rename_snake: bool) -> String {
    let mut unit_arms = String::new();
    let mut newtype_arms = String::new();
    for v in variants {
        let wire = wire_name(&v.name, rename_snake);
        if v.newtype {
            newtype_arms.push_str(&format!(
                "\"{wire}\" => Ok({name}::{v_name}(::serde::Deserialize::from_value(val)?)),\n",
                v_name = v.name
            ));
        } else {
            unit_arms.push_str(&format!(
                "\"{wire}\" => Ok({name}::{v_name}),\n",
                v_name = v.name
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
         match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }},\n\
         ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
         let (key, val) = &entries[0];\n\
         let _ = val;\n\
         match key.as_str() {{\n\
         {newtype_arms}\
         other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }}\n\
         }},\n\
         _ => Err(::serde::DeError::new(concat!(\"expected string or single-key object for \", stringify!({name})))),\n\
         }}\n\
         }}\n}}\n"
    )
}
