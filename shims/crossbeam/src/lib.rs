//! Offline stand-in for `crossbeam`: a multi-producer **multi-consumer**
//! channel (std's `mpsc::Receiver` is not `Clone`, which the server's worker
//! pool needs), implemented with a `Mutex<VecDeque>` + `Condvar`.

#![warn(missing_docs)]

/// MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone; carries
    /// the unsent value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates a channel with a capacity hint. The shim does not block
    /// producers at capacity (the workspace only uses tiny bounded channels
    /// as shutdown signals), so this behaves like [`unbounded`].
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.0.queue.lock() {
                Ok(mut q) => q.push_back(value),
                Err(poisoned) => poisoned.into_inner().push_back(value),
            }
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fan_out_to_cloned_receivers() {
        let (tx, rx) = channel::unbounded::<usize>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100, "every message consumed exactly once");
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_receivers_gone_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
