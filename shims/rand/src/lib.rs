//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! exactly the API surface the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` (half-open and inclusive integer/float
//! ranges) and `Rng::gen_bool`. The generator is SplitMix64 — statistically
//! fine for synthetic corpora and benchmarks, deterministic per seed (though
//! the streams differ from upstream `rand`, so generated corpora are not
//! byte-identical to ones produced with the real crate).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `gen_range` can draw uniformly. A single generic
/// `SampleRange` impl is keyed off this trait (mirroring upstream rand's
/// structure) so integer-literal ranges like `rng.gen_range(400..3600)`
/// still resolve through default integer fallback.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing RNG methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`rng.gen::<f64>()`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let x = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
