//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy, format-agnostic framework; this shim is a
//! small value-tree model: [`Serialize`] renders any value to a JSON-like
//! [`Value`] and [`Deserialize`] rebuilds values from it. That is exactly the
//! surface this workspace uses (derived struct/enum (de)serialization through
//! `serde_json`). The derive macros come from the sibling `serde_derive`
//! shim and support `#[serde(default)]`, `#[serde(default = "path")]` and
//! `#[serde(rename_all = "snake_case")]`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like value tree (re-exported by the `serde_json` shim).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (kept exact, separate from floats).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view of ints and floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// True when this is `Value::Null` (including indexing misses).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Renders compact JSON (the `serde_json::Value::to_string` contract).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no NaN/Inf; real serde_json refuses them at the
            // serializer layer, the shim degrades to null.
            Value::Float(_) => f.write_str("null"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        self.as_array().and_then(|a| a.get(ix)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Int(i) => *i == *other as i64,
                    Value::Float(f) => *f == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:ident ( $conv:expr )),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(clippy::redundant_closure_call)]
                Value::$variant(($conv)(v))
            }
        }
    )*};
}

impl_value_from!(
    bool => Bool(|v| v),
    i8 => Int(|v| v as i64),
    i16 => Int(|v| v as i64),
    i32 => Int(|v| v as i64),
    i64 => Int(|v: i64| v),
    u8 => Int(|v| v as i64),
    u16 => Int(|v| v as i64),
    u32 => Int(|v| v as i64),
    u64 => Int(|v| v as i64),
    usize => Int(|v| v as i64),
    f32 => Float(|v| v as f64),
    f64 => Float(|v: f64| v),
    String => String(|v: String| v),
    &str => String(|v: &str| v.to_owned()),
    &String => String(|v: &String| v.clone()),
);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => Value::from(v),
            None => Value::Null,
        }
    }
}

/// Deserialization failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// The standard "missing field" error.
    pub fn missing_field(name: &str) -> DeError {
        DeError(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected boolean"))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::new("expected integer")),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new("expected number"))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($( ($($name:ident : $ix:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$( self.$ix.to_value() ),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected array (tuple)"))?;
                let expected = [$( stringify!($ix) ),+].len();
                if arr.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of length {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(( $( $name::from_value(&arr[$ix])?, )+ ))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(Option::<i64>::from_value(&Value::Null), Ok(None::<i64>));
        let tup = (1i64, "x".to_owned());
        assert_eq!(<(i64, String)>::from_value(&tup.to_value()), Ok(tup));
        let v: Vec<(String, String)> = vec![("a".into(), "b".into())];
        assert_eq!(Vec::<(String, String)>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn value_index_and_eq() {
        let v = Value::Object(vec![(
            "items".into(),
            Value::Array(vec![Value::Object(vec![(
                "title".into(),
                Value::String("x".into()),
            )])]),
        )]);
        assert_eq!(v["items"][0]["title"], "x");
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(Value::Int(3), 3);
        assert_eq!(Value::Float(3.0), 3);
    }

    #[test]
    fn out_of_range_int_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
