//! Offline stand-in for `proptest`.
//!
//! Same test-authoring surface the workspace uses — `proptest! { fn t(x in
//! strategy) { ... } }`, range/tuple/char-class-string strategies,
//! `prop_oneof!`, `prop::collection::{vec, btree_set, btree_map}`,
//! `prop::sample::Index`, `any::<T>()` — backed by a deterministic
//! SplitMix64 generator seeded from the test name. No shrinking: a failing
//! case reports its case number and the full `Debug` rendering of the
//! generated inputs, then re-raises the panic.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name (FNV-1a) so every test gets a stable stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between equally-typed boxed strategies — the engine
/// behind [`prop_oneof!`].
#[derive(Debug)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len() as u64) as usize;
        self.0[ix].generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, magnitude spread over several decades.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Whole-domain strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// `"[chars]{m,n}"` string strategies (the subset of proptest's regex
/// strategies this workspace uses: one character class with a repetition).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_charclass_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi). Panics on anything
/// else — a loud signal that the shim needs extending, not a silent skip.
fn parse_charclass_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let inner = pat
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("proptest shim: unsupported pattern `{pat}`"));
    let (class, rep) = inner;
    let rep = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("proptest shim: unsupported repetition in `{pat}`"));
    let (lo, hi) = match rep.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or(0),
            hi.trim().parse().unwrap_or(8),
        ),
        None => {
            let n = rep.trim().parse().unwrap_or(1);
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            let mut look = chars.clone();
            look.next(); // '-'
            if let Some(&end) = look.peek() {
                if end != ']' {
                    chars.next();
                    chars.next();
                    for code in (c as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            alphabet.push(ch);
                        }
                    }
                    continue;
                }
            }
        }
        alphabet.push(c);
    }
    assert!(
        !alphabet.is_empty(),
        "proptest shim: empty character class in `{pat}`"
    );
    (alphabet, lo, hi)
}

macro_rules! impl_strategy_tuple {
    ($( ($($name:ident : $ix:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ( $( self.$ix.generate(rng), )+ )
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::fmt;
    use std::ops::Range;

    /// `Vec` strategy with a length range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with a target-size range.
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Set of up to `size` distinct elements drawn from `element` (duplicate
    /// draws retry a bounded number of times, then the set stays smaller).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_len(&self.size, rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `BTreeMap` strategy with a target-size range.
    #[derive(Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Map of up to `size` entries with distinct keys.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord + fmt::Debug,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_len(&self.size, rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target && attempts < target * 10 + 16 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty collection size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

/// Sampling helpers (`prop::sample::*`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index into any slice, resolved at use time — generate one
    /// with `any::<Index>()`, then project with [`Index::get`]/[`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete length. Panics on `len == 0`, like
        /// upstream proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }

        /// Picks the element of `slice` this index denotes.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Runner configuration (`cases` is the only knob the shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The proptest test-block macro: wraps each `fn name(pat in strategy, ...)`
/// into a deterministic multi-case `#[test]`-style runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let __vals = ( $( $crate::Strategy::generate(&$strat, &mut __rng), )+ );
                    let __repr = format!("{:?}", __vals);
                    let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let ( $($pat,)+ ) = __vals;
                        $body
                    }));
                    if let Err(__payload) = __outcome {
                        eprintln!(
                            "proptest shim: `{}` failed at case {}/{} with input:\n  {}",
                            stringify!($name), __case, __config.cases, __repr
                        );
                        std::panic::resume_unwind(__payload);
                    }
                }
            }
        )*
    };
}

/// Boolean property assertion (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality property assertion (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality property assertion (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the rest of the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_strings_in_bounds() {
        let mut rng = crate::TestRng::from_name("t");
        for _ in 0..200 {
            let v = Strategy::generate(&(-20i64..20), &mut rng);
            assert!((-20..20).contains(&v));
            let s = Strategy::generate(&"[a-c]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u8..3).prop_map(|i| format!("iri{i}")),
            Just("fixed".to_string()),
        ];
        let mut rng = crate::TestRng::from_name("t2");
        let mut saw_fixed = false;
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            saw_fixed |= v == "fixed";
            assert!(v == "fixed" || v.starts_with("iri"));
        }
        assert!(saw_fixed);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::from_name("t3");
        for _ in 0..50 {
            let v = Strategy::generate(&prop::collection::vec(0usize..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0usize..30, 0..15), &mut rng);
            assert!(s.len() < 15);
            let m = Strategy::generate(
                &prop::collection::btree_map("[a-z]{1,10}", 0.0f64..100.0, 1..20),
                &mut rng,
            );
            assert!(m.len() < 20);
        }
    }

    #[test]
    fn index_is_stable_per_value() {
        let mut rng = crate::TestRng::from_name("t4");
        let ix = <prop::sample::Index as Arbitrary>::arbitrary(&mut rng);
        let data = [10, 20, 30];
        assert_eq!(ix.get(&data), &data[ix.index(3)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple bindings, tuples.
        #[test]
        fn macro_smoke((a, b) in (0i64..10, 0i64..10), s in "[xy]{1,2}") {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!s.is_empty());
        }
    }
}
