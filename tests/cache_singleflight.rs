//! Single-flight stampede protection under real threads: concurrent
//! lookups of one hot key through the `par` pool must coalesce onto
//! exactly one computation, and a bounded wait must give up with
//! `WaitTimeout` instead of blocking a worker behind a slow leader.

use sensormeta::cache::{Cache, CacheConfig, CacheError, Domain, EpochClock};
use sensormeta::par::Pool;
use std::convert::Infallible;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TASKS: usize = 4;

fn hot_cache(name: &'static str) -> Cache<u64> {
    // A private clock: concurrent tests in this process bump the global one.
    Cache::with_clock(
        CacheConfig::new(name, 1 << 16, &[Domain::Relational]),
        |_| 8,
        Arc::new(EpochClock::new()),
    )
}

/// Spins until `cond` holds, bounded so a lost thread fails the test
/// instead of hanging it.
fn await_or_give_up(cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() && t0.elapsed() < Duration::from_secs(5) {
        std::thread::yield_now();
    }
}

#[test]
fn one_hot_key_computes_exactly_once_across_threads() {
    let cache = hot_cache("sf_hot");
    let computes = AtomicUsize::new(0);
    let arrived = AtomicUsize::new(0);
    let results = Mutex::new(Vec::new());
    // Exactly as many tasks as pool threads: a single-flight waiter blocks
    // its worker, so more tasks than threads could starve the leader.
    let pool = Pool::new(TASKS);
    pool.run(TASKS, |_| {
        arrived.fetch_add(1, Ordering::SeqCst);
        let (result, _status) = cache.get_or_compute(42, None, || {
            computes.fetch_add(1, Ordering::SeqCst);
            // Hold the flight until every task has at least entered the
            // lookup, then a little longer so they reach the wait.
            await_or_give_up(|| arrived.load(Ordering::SeqCst) == TASKS);
            std::thread::sleep(Duration::from_millis(25));
            Ok::<u64, Infallible>(777)
        });
        let value = *result.expect("single-flight lookup failed");
        results.lock().unwrap().push(value);
    });
    assert_eq!(
        computes.load(Ordering::SeqCst),
        1,
        "the hot key must compute exactly once"
    );
    let results = results.into_inner().unwrap();
    assert_eq!(results, vec![777; TASKS]);
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert!(
        stats.singleflight_waits >= 1,
        "followers should have waited on the leader: {stats:?}"
    );
    // A follower first counts a wait, then resolves the published result as
    // a hit — so hits covers everyone who didn't lead.
    assert_eq!(stats.hits, (TASKS - 1) as u64, "{stats:?}");
}

#[test]
fn bounded_wait_times_out_instead_of_blocking() {
    let cache = hot_cache("sf_slow");
    let leading = AtomicBool::new(false);
    let timed_out = AtomicBool::new(false);
    let pool = Pool::new(TASKS);
    pool.run(2, |i| {
        if i == 0 {
            let (result, _status) = cache.get_or_compute(7, None, || {
                leading.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(250));
                Ok::<u64, Infallible>(1)
            });
            assert_eq!(*result.expect("leader compute failed"), 1);
        } else {
            await_or_give_up(|| leading.load(Ordering::SeqCst));
            let (result, _status) =
                cache.get_or_compute(7, Some(Duration::from_millis(10)), || {
                    Ok::<u64, Infallible>(2)
                });
            match result {
                Err(CacheError::WaitTimeout) => timed_out.store(true, Ordering::SeqCst),
                other => panic!("expected WaitTimeout, got {:?}", other.map(|v| *v)),
            }
        }
    });
    assert!(timed_out.load(Ordering::SeqCst));
    // The impatient caller never computed: one compute, zero poisonings.
    assert_eq!(cache.stats().misses, 1);
}
