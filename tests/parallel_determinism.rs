//! Determinism suite for the parallel execution layer: every parallelized
//! hot path must produce **bit-for-bit** identical results on pools of 1, 2
//! and 7 threads. Chunk boundaries and reduction order in `sensormeta-par`
//! depend only on data length and fixed chunk-size constants, never on the
//! thread count — these tests pin that contract end to end.

use sensormeta::graph::CsrGraph;
use sensormeta::par::Pool;
use sensormeta::rank::{
    Arnoldi, BiCgStab, GaussSeidel, Gmres, Jacobi, PageRankProblem, PowerIteration, Solver, Sor,
    TransitionMatrix,
};
use sensormeta::search::SearchIndex;
use sensormeta::tagging::similarity_matrix_in;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Seeded LCG, the same generator the solver unit tests use.
fn lcg(seed: u64) -> impl FnMut() -> usize {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    }
}

fn web_problem(n: usize, seed: u64) -> PageRankProblem {
    let mut next = lcg(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for _ in 0..(next() % 7) {
            edges.push((u, next() % n));
        }
    }
    PageRankProblem::new(TransitionMatrix::from_graph(&CsrGraph::from_edges(
        n, &edges, true,
    )))
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|e| e.to_bits()).collect()
}

#[test]
fn matvec_is_bitwise_identical_across_thread_counts() {
    let p = web_problem(1500, 11);
    let mut next = lcg(99);
    let x: Vec<f64> = (0..p.n())
        .map(|_| (next() % 1000) as f64 / 1000.0)
        .collect();
    let mut reference = vec![0.0; p.n()];
    p.google_matvec_in(&Pool::new(1), &x, &mut reference);
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        let mut y = vec![0.0; p.n()];
        p.google_matvec_in(&pool, &x, &mut y);
        assert_eq!(bits(&y), bits(&reference), "{threads} threads");
    }
}

#[test]
fn every_solver_is_bitwise_identical_across_thread_counts() {
    let p = web_problem(900, 7);
    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(PowerIteration),
        Box::new(Jacobi),
        Box::new(GaussSeidel),
        Box::new(Sor { omega: 1.05 }),
        Box::new(BiCgStab),
        Box::new(Gmres::default()),
        Box::new(Arnoldi::default()),
    ];
    for solver in &solvers {
        let reference = solver.solve_in(&Pool::new(1), &p, 1e-10, 500);
        for threads in THREAD_COUNTS {
            let r = solver.solve_in(&Pool::new(threads), &p, 1e-10, 500);
            assert_eq!(
                bits(&r.x),
                bits(&reference.x),
                "{} at {threads} threads",
                solver.name()
            );
            assert_eq!(
                r.iterations,
                reference.iterations,
                "{} iteration trajectory at {threads} threads",
                solver.name()
            );
            assert_eq!(
                bits(&r.residuals),
                bits(&reference.residuals),
                "{} residual trajectory at {threads} threads",
                solver.name()
            );
        }
    }
}

#[test]
fn similarity_matrix_is_bitwise_identical_across_thread_counts() {
    let mut next = lcg(2011);
    let sets: Vec<Vec<usize>> = (0..150)
        .map(|_| {
            let mut s: Vec<usize> = (0..(2 + next() % 20)).map(|_| next() % 400).collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let reference = similarity_matrix_in(&Pool::new(1), &sets);
    for threads in THREAD_COUNTS {
        let m = similarity_matrix_in(&Pool::new(threads), &sets);
        assert_eq!(
            bits(m.as_slice()),
            bits(reference.as_slice()),
            "{threads} threads"
        );
    }
}

#[test]
fn index_build_is_identical_across_thread_counts() {
    let mut next = lcg(5);
    let vocab = [
        "snow",
        "avalanche",
        "temperature",
        "wind",
        "sensor",
        "station",
        "discharge",
        "hydrology",
        "weissfluhjoch",
        "davos",
    ];
    let docs: Vec<(String, String)> = (0..200)
        .map(|i| {
            let words: Vec<&str> = (0..(5 + next() % 40))
                .map(|_| vocab[next() % vocab.len()])
                .collect();
            (format!("Page:{i}"), words.join(" "))
        })
        .collect();
    let reference = SearchIndex::build_in(&Pool::new(1), &docs).fingerprint();
    for threads in THREAD_COUNTS {
        let fp = SearchIndex::build_in(&Pool::new(threads), &docs).fingerprint();
        assert_eq!(fp, reference, "{threads} threads");
    }
}
