//! E3 — the Fig. 1 architecture exercised end to end: bulk-load → combined
//! SQL/SPARQL/keyword query → PageRank ordering → typed results feeding
//! every visualization, over the full synthetic Swiss-Experiment corpus and
//! through the real HTTP server.

use sensormeta::query::{CondOp, Condition, QueryEngine, SearchForm, SortBy};
use sensormeta::server::{serve, App};
use sensormeta::viz;
use sensormeta::workload::CorpusConfig;
use std::io::{Read, Write};
use std::net::TcpStream;

#[test]
fn full_pipeline_over_corpus() {
    // Bulk-load the corpus (the paper's Bulk-loading Interface).
    let repo = sensormeta::demo_repository(&CorpusConfig::default());
    let pages = repo.page_count();
    assert!(pages > 50);

    // The RDF mirror holds the same metadata as the relational store.
    let sql_pages = repo.sql("SELECT COUNT(*) FROM pages").unwrap().rows[0][0]
        .as_int()
        .unwrap() as usize;
    assert_eq!(sql_pages, pages);
    let sparql_pages = repo
        .sparql(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT DISTINCT ?p WHERE { ?p prop:title ?t }",
        )
        .unwrap()
        .len();
    assert_eq!(sparql_pages, pages);

    // Query Management: keyword + condition + ranking.
    let engine = QueryEngine::open(repo).unwrap();
    let mut form = SearchForm::keywords("temperature sensor").condition(Condition::new(
        "hasUnit",
        CondOp::Eq,
        "C",
    ));
    form.limit = 10;
    let out = engine.search(&form, None).unwrap();
    assert!(!out.items.is_empty());
    for item in &out.items {
        assert_eq!(item.namespace, "Deployment");
        assert!(item.score > 0.0);
        assert!((0.0..=1.0).contains(&item.pagerank));
    }
    // Results are relevance-ordered.
    for w in out.items.windows(2) {
        assert!(w[0].score >= w[1].score);
    }

    // PageRank ordering differs from BM25 ordering in general (the ranking
    // layer is doing something).
    let mut by_pagerank = form.clone();
    by_pagerank.sort_by = SortBy::PageRank;
    let pr_out = engine.search(&by_pagerank, None).unwrap();
    assert_eq!(pr_out.total_matched, out.total_matched);

    // Visualization dispatch: every renderer accepts the typed output.
    let bar_data: Vec<viz::Datum> = out
        .facets
        .iter()
        .filter(|f| f.attribute == "hasVendor")
        .map(|f| viz::Datum::new(f.value.clone(), f.count as f64))
        .collect();
    let bar = viz::bar_chart("vendors", &bar_data);
    assert!(bar.contains("<svg"));
    let pie = viz::pie_chart("vendors", &bar_data);
    assert!(pie.contains("<svg"));

    // Map path over a geolocated query.
    let geo = engine
        .search(
            &SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "0")),
            None,
        )
        .unwrap();
    let markers: Vec<viz::MapMarker> = geo
        .geolocated()
        .map(|i| viz::MapMarker {
            title: i.title.clone(),
            lat: i.coords.unwrap().0,
            lon: i.coords.unwrap().1,
            match_degree: i.match_degree,
        })
        .collect();
    assert!(!markers.is_empty());
    let map = viz::map_plot("sites", &markers, &viz::MapOptions::default());
    assert!(map.contains("<circle"));

    // Recommendations exist for a populated corpus.
    assert!(
        !out.recommendations.is_empty(),
        "corpus queries should produce related pages"
    );
}

#[test]
fn architecture_through_http() {
    let repo = sensormeta::demo_repository(&CorpusConfig {
        institutions: 3,
        ..CorpusConfig::default()
    });
    let engine = QueryEngine::open(repo).unwrap();
    let server = serve(App::new(engine), "127.0.0.1:0", 2).unwrap();

    let get = |path: &str| -> (u16, String) {
        let mut s = TcpStream::connect(server.addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let status = buf.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, buf.split_once("\r\n\r\n").unwrap().1.to_owned())
    };

    // Fig. 7 flow: autocomplete → search → page view → visualization.
    let (status, body) = get("/autocomplete?prefix=Deployment");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let first = v[0]["suggestion"].as_str().unwrap().to_owned();
    let (status, body) = get("/search?q=temperature");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(v["totalMatched"].is_null() || v["total_matched"].as_u64().unwrap() > 0);
    let (status, _) = get(&format!(
        "/page/{}",
        sensormeta::server::url_encode(&titlecase_first(&first))
    ));
    // The autocomplete result is lowercased; page lookup of the original
    // casing may or may not resolve. Both 200 and 404 are structurally
    // valid; the route must not error out.
    assert!(status == 200 || status == 404);
    for path in ["/viz/bar", "/viz/pie", "/tags", "/viz/hypergraph"] {
        let (status, body) = get(path);
        assert_eq!(status, 200, "{path}");
        assert!(body.contains("<svg"), "{path}");
    }
    server.stop();
}

fn titlecase_first(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}
