//! Invalidation property test for the shared result cache: interleave
//! random repository mutations with cached reads and check that every
//! `search_shared` answer equals a fresh `search_uncached` oracle run at
//! the same instant — the cache may miss spuriously, but it must never
//! serve a result from before a mutation.

use proptest::prelude::*;
use sensormeta::query::{QueryEngine, SearchForm, SearchOptions};
use sensormeta::smr::{PageDraft, Smr};

const VOCAB: [&str; 6] = [
    "snow",
    "wind",
    "temperature",
    "humidity",
    "alpine",
    "glacier",
];

fn word(ix: u8) -> &'static str {
    VOCAB[ix as usize % VOCAB.len()]
}

fn draft(page: u8, a: u8, b: u8) -> PageDraft {
    PageDraft::new(format!("Deployment:d{}", page % 8), "Deployment")
        .body(format!("{} {} sensor", word(a), word(b)))
        .annotate("measuresQuantity", word(a))
        .tag(word(b))
}

/// Serializes both sides of a search so `Ok` outputs compare structurally
/// and `Err`s compare by message.
fn canon(result: Result<String, String>) -> String {
    match result {
        Ok(json) => json,
        Err(msg) => format!("error: {msg}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any interleaving of upserts and deletes, a cached read taken
    /// right after the mutation (and a repeat read, which should be warm)
    /// both equal the uncached oracle.
    #[test]
    fn cached_reads_never_go_stale(
        ops in prop::collection::vec((0u8..3, any::<u8>(), any::<u8>(), any::<u8>()), 1..12)
    ) {
        let mut engine = QueryEngine::open(Smr::new()).unwrap();
        for (op, page, a, b) in ops {
            match op {
                0 | 1 => {
                    engine.smr_mut().upsert_page(draft(page, a, b)).unwrap();
                }
                _ => {
                    engine.smr_mut().delete_page(&format!("Deployment:d{}", page % 8)).unwrap();
                }
            }
            engine.rebuild().unwrap();
            // Two forms per step: a pure keyword search and one with an
            // annotation condition, each read twice (cold, then warm).
            let keyword = SearchForm::keywords(word(a));
            let mut combined = SearchForm::keywords(word(b));
            combined.conditions.push(sensormeta::query::Condition::new(
                "measuresQuantity",
                sensormeta::query::CondOp::Eq,
                word(a),
            ));
            combined.soft_conditions = true;
            for form in [&keyword, &combined] {
                for _ in 0..2 {
                    let cached = canon(
                        engine
                            .search_shared(form, &SearchOptions::default())
                            .map(|(out, _status)| serde_json::to_string(&*out).unwrap())
                            .map_err(|e| e.to_string()),
                    );
                    let oracle = canon(
                        engine
                            .search_uncached(form, None)
                            .map(|out| serde_json::to_string(&out).unwrap())
                            .map_err(|e| e.to_string()),
                    );
                    prop_assert_eq!(&cached, &oracle, "stale cached result");
                }
            }
        }
    }
}
