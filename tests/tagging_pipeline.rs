//! E5 — the Fig. 4 Dynamic Tagging System pipeline, driven end to end from
//! SMR-stored tags through cache, matrix transformation, clique enumeration
//! and font-size calculation, to a rendered cloud.

use sensormeta::smr::{PageDraft, Smr};
use sensormeta::tagging::{
    compute_cloud, maximal_cliques, similarity_graph, similarity_matrix, BkVariant, CloudCache,
    CloudParams, FontScale, TagStore,
};
use sensormeta::viz::render_tag_cloud;

/// SMR populated so tags form two co-occurrence groups plus a bridge tag.
fn tagged_smr() -> Smr {
    let mut smr = Smr::new();
    for (i, (tags, ns)) in [
        (vec!["snow", "avalanche", "winter"], "Deployment"),
        (vec!["snow", "avalanche", "winter"], "Deployment"),
        (vec!["snow", "avalanche"], "Deployment"),
        (vec!["hydrology", "discharge", "snow"], "Fieldsite"),
        (vec!["hydrology", "discharge"], "Fieldsite"),
        (vec!["hydrology", "discharge"], "Fieldsite"),
    ]
    .into_iter()
    .enumerate()
    {
        let mut draft = PageDraft::new(format!("{ns}:page{i}"), ns);
        for t in tags {
            draft = draft.tag(t);
        }
        smr.create_page(draft).unwrap();
    }
    smr
}

#[test]
fn smr_to_cloud_pipeline() {
    let smr = tagged_smr();
    // Parser module: fetch tags from the SMR.
    let mut store = TagStore::new();
    let pairs = smr.all_tags().unwrap();
    store.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    assert_eq!(store.tag_count(), 5);

    // Matrix Transformation: cosine similarities.
    let (tags, sets) = store.incidence();
    let matrix = similarity_matrix(&sets);
    let ix = |name: &str| tags.iter().position(|t| t == name).unwrap();
    // snow and avalanche co-occur on 3 of snow's 4 pages.
    assert!(matrix.get(ix("snow"), ix("avalanche")) > 0.8);
    // snow also touches one hydrology page.
    assert!(matrix.get(ix("snow"), ix("hydrology")) > 0.0);
    assert!(matrix.get(ix("snow"), ix("hydrology")) < 0.5);

    // Graph + Max Clique modules.
    let graph = similarity_graph(&sets, 0.5);
    let (cliques, stats) = maximal_cliques(&graph, BkVariant::Pivot);
    assert!(stats.calls > 0);
    let multi: Vec<&Vec<usize>> = cliques.iter().filter(|c| c.len() > 1).collect();
    assert_eq!(multi.len(), 2, "two co-occurrence groups: {cliques:?}");

    // Font Size Calculation (Eq. 6) through the assembled cloud.
    let cloud = compute_cloud(&store, &CloudParams::default());
    let snow = cloud.entries.iter().find(|e| e.tag == "snow").unwrap();
    let winter = cloud.entries.iter().find(|e| e.tag == "winter").unwrap();
    assert!(snow.count > winter.count);
    assert!(snow.font_size >= winter.font_size);
    assert!(cloud.entries.iter().all(|e| e.font_size >= 1));

    // Eq. 6 extrema directly: the most frequent tag carries f_max plus its
    // clique bonus.
    let counts: Vec<usize> = cloud.entries.iter().map(|e| e.count).collect();
    let scale = FontScale::from_counts(&counts, cloud.cliques.len(), 10);
    assert_eq!(scale.t_max, snow.count);

    // Renderable output.
    let svg = render_tag_cloud("pipeline", &cloud);
    assert!(svg.contains("snow"));
}

#[test]
fn cache_module_cuts_recomputation() {
    let smr = tagged_smr();
    let mut store = TagStore::new();
    let pairs = smr.all_tags().unwrap();
    store.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));

    let cache = CloudCache::new();
    let params = CloudParams::default();
    for _ in 0..10 {
        let _ = cache.get(&store, &params);
    }
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, 9);

    // A new user tag invalidates exactly once.
    store.add("Deployment:page0", "freshly-tagged");
    let cloud = cache.get(&store, &params);
    assert_eq!(cache.stats().misses, 2);
    assert!(cloud.entries.iter().any(|e| e.tag == "freshly-tagged"));
}

#[test]
fn modularity_swapping_the_clique_module() {
    // The paper: "by replacing the Max Clique Algorithm module we can focus
    // on other graph properties". All three BK variants must be drop-in
    // equivalent for the cloud's content.
    let smr = tagged_smr();
    let mut store = TagStore::new();
    let pairs = smr.all_tags().unwrap();
    store.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    let reference = compute_cloud(&store, &CloudParams::default());
    for variant in [BkVariant::Naive, BkVariant::Degeneracy] {
        let other = compute_cloud(
            &store,
            &CloudParams {
                variant,
                ..CloudParams::default()
            },
        );
        assert_eq!(reference.entries, other.entries, "{variant:?}");
    }
}
