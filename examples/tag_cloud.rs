//! Reproduces the paper's Fig. 5 scenario: a tag ("apple") that belongs to
//! two semantic cliques, plus a corpus-scale tag cloud with Eq. 6 font
//! sizes. Writes `target/viz/fig5_cliques.svg` and
//! `target/viz/tag_cloud.svg`.
//!
//! Run with: `cargo run --example tag_cloud`

use sensormeta::tagging::{
    compute_cloud, maximal_cliques, similarity_graph, BkVariant, CloudParams, TagStore,
};
use sensormeta::viz::{render_digraph, render_tag_cloud, GraphLayout, GraphNode};
use sensormeta::workload::CorpusConfig;

fn main() {
    // --- Fig. 5: the two cliques of "apple" ---
    let mut store = TagStore::new();
    for page in ["fruit1", "fruit2", "fruit3"] {
        store.add(page, "apple");
        store.add(page, "banana");
        store.add(page, "orange");
    }
    for page in ["tech1", "tech2", "tech3"] {
        store.add(page, "apple");
        store.add(page, "mac");
        store.add(page, "laptop");
    }
    let (tags, sets) = store.incidence();
    let graph = similarity_graph(&sets, 0.5);
    let (cliques, stats) = maximal_cliques(&graph, BkVariant::Pivot);
    println!(
        "Fig 5 reproduction — tag graph cliques (BK pivot, {} calls):",
        stats.calls
    );
    for (i, clique) in cliques.iter().enumerate() {
        let names: Vec<&str> = clique.iter().map(|&t| tags[t].as_str()).collect();
        println!("  clique {i}: {names:?}");
    }
    let apple = tags.iter().position(|t| t == "apple").expect("apple tag");
    let apple_cliques = cliques.iter().filter(|c| c.contains(&apple)).count();
    println!("'apple' belongs to {apple_cliques} cliques (paper shows 2)\n");

    // Render the clique structure as a colored graph (Fig. 5 style):
    // every node colored by its clique; apple (in both) gets its own color.
    let mut edges = Vec::new();
    for u in 0..graph.node_count() {
        for &v in graph.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    let digraph = sensormeta::graph::CsrGraph::from_edges(graph.node_count(), &edges, false);
    let nodes: Vec<GraphNode> = tags
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let member: Vec<usize> = cliques
                .iter()
                .enumerate()
                .filter(|(_, c)| c.contains(&i))
                .map(|(ci, _)| ci)
                .collect();
            GraphNode {
                label: t.clone(),
                class: if member.len() > 1 {
                    cliques.len() // its own color for multi-clique tags
                } else {
                    member.first().copied().unwrap_or(cliques.len() + 1)
                },
            }
        })
        .collect();
    std::fs::create_dir_all("target/viz").expect("mkdir");
    std::fs::write(
        "target/viz/fig5_cliques.svg",
        render_digraph(
            "Fig 5: cliques in the tag graph",
            &digraph,
            &nodes,
            GraphLayout::Force,
        ),
    )
    .expect("write fig5");

    // --- Corpus-scale tag cloud ---
    let repo = sensormeta::demo_repository(&CorpusConfig::default());
    let mut corpus_tags = TagStore::new();
    let pairs = repo.all_tags().expect("tags");
    corpus_tags.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    let cloud = compute_cloud(&corpus_tags, &CloudParams::default());
    println!(
        "Corpus cloud: {} tags, {} cliques, {} BK calls",
        cloud.entries.len(),
        cloud.cliques.len(),
        cloud.clique_calls
    );
    println!("Most prominent tags (Eq. 6 font sizes):");
    for entry in cloud.by_prominence().iter().take(10) {
        println!(
            "  {:<16} count={:<3} size={:<3} cliques={:?}",
            entry.tag, entry.count, entry.font_size, entry.cliques
        );
    }
    std::fs::write(
        "target/viz/tag_cloud.svg",
        render_tag_cloud("Swiss-Experiment metadata trends", &cloud),
    )
    .expect("write tag cloud");
    println!("\nWrote target/viz/fig5_cliques.svg and target/viz/tag_cloud.svg");
}
