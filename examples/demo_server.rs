//! Runs the full demo web application over the synthetic Swiss-Experiment
//! corpus — the Section V demonstration. Prints the endpoints to try, then
//! serves until Ctrl-C.
//!
//! Run with: `cargo run --release --example demo_server`
//! Then e.g.: `curl 'http://127.0.0.1:8080/search?q=temperature'`

use sensormeta::query::QueryEngine;
use sensormeta::server::{serve, App};
use sensormeta::workload::CorpusConfig;

fn main() {
    let repo = sensormeta::demo_repository(&CorpusConfig {
        institutions: 8,
        projects_per_institution: 4,
        sites_per_project: 4,
        deployments_per_site: 5,
        seed: 2011,
    });
    println!(
        "Loaded {} metadata pages; building indexes…",
        repo.page_count()
    );
    let engine = QueryEngine::open(repo).expect("engine builds");
    let server = serve(App::new(engine), "127.0.0.1:8080", 8).expect("bind 127.0.0.1:8080");
    println!("Serving on http://{} — try:", server.addr);
    for path in [
        "/",
        "/search?q=temperature&format=html",
        "/search?attribute=hasElevation&op=gt&value=2000",
        "/autocomplete?prefix=Fieldsite",
        "/tags",
        "/viz/bar?attribute=measuresQuantity",
        "/viz/map?attribute=hasElevation&op=gt&value=1000",
        "/viz/hypergraph",
    ] {
        println!("  http://{}{path}", server.addr);
    }
    println!("Press Ctrl-C to stop.");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
