//! Regenerates Fig. 3 of the paper: convergence (a) and time (b) evaluation
//! of the PageRank solvers on synthetic web graphs. Prints the two series
//! and writes SVG plots to `target/viz/`.
//!
//! Run with: `cargo run --release --example pagerank_eval`

use sensormeta::rank::{all_solvers, PageRankProblem, TransitionMatrix};
use sensormeta::viz::line_chart;
use sensormeta::workload::barabasi_albert;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let tol = 1e-9;
    println!("Graph: Barabási–Albert n={n}, m=3, 15% dangling, c=0.85, tol={tol:.0e}\n");
    let g = barabasi_albert(n, 3, 0.15, 2011);
    let problem = PageRankProblem::new(TransitionMatrix::from_graph(&g));

    // Fig. 3(a): residual vs iteration, per method.
    println!("Fig 3(a) — convergence evaluation");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "method", "iterations", "matvecs", "residual"
    );
    let mut conv_series = Vec::new();
    for solver in all_solvers() {
        let r = solver.solve(&problem, tol, 10_000);
        println!(
            "{:<14} {:>10} {:>10} {:>12.2e}",
            solver.name(),
            r.iterations,
            r.matvecs,
            problem.residual(&r.x)
        );
        let points: Vec<(f64, f64)> = r
            .residuals
            .iter()
            .enumerate()
            .map(|(i, res)| (i as f64 + 1.0, res.max(1e-16).log10()))
            .collect();
        conv_series.push((solver.name().to_owned(), points));
    }

    // Fig. 3(b): wall-clock time vs graph size, per method.
    println!("\nFig 3(b) — time evaluation (ms to tol, median of 3 runs)");
    let sizes = [1_000usize, 5_000, 10_000, 20_000, 50_000];
    print!("{:<14}", "method");
    for s in sizes {
        print!(" {s:>9}");
    }
    println!();
    let mut time_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for solver in all_solvers() {
        let mut points = Vec::new();
        print!("{:<14}", solver.name());
        for &size in &sizes {
            let g = barabasi_albert(size, 3, 0.15, 2011);
            let p = PageRankProblem::new(TransitionMatrix::from_graph(&g));
            let mut samples = Vec::new();
            for _ in 0..3 {
                let t0 = Instant::now();
                let r = solver.solve(&p, tol, 10_000);
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                assert!(r.converged, "{} failed at n={size}", solver.name());
                samples.push(dt);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = samples[1];
            print!(" {median:>9.2}");
            points.push((size as f64, median));
        }
        println!();
        time_series.push((solver.name().to_owned(), points));
    }

    std::fs::create_dir_all("target/viz").expect("mkdir target/viz");
    std::fs::write(
        "target/viz/fig3a_convergence.svg",
        line_chart(
            "Fig 3(a): PageRank convergence (n=20k BA graph)",
            "iteration",
            "log10 residual",
            &conv_series,
        ),
    )
    .expect("write fig3a");
    std::fs::write(
        "target/viz/fig3b_time.svg",
        line_chart(
            "Fig 3(b): PageRank time to 1e-9 (ms)",
            "graph size (nodes)",
            "milliseconds",
            &time_series,
        ),
    )
    .expect("write fig3b");
    println!("\nWrote target/viz/fig3a_convergence.svg and target/viz/fig3b_time.svg");
}
