//! SPARQL analytics over the metadata graph: the "trend" questions the
//! paper's tag clouds visualize, answered directly with aggregate queries
//! (GROUP BY / COUNT / AVG / UNION) against the RDF mirror.
//!
//! Run with: `cargo run --release --example sparql_analytics`

use sensormeta::workload::CorpusConfig;

fn main() {
    let repo = sensormeta::demo_repository(&CorpusConfig {
        institutions: 8,
        ..CorpusConfig::default()
    });
    println!("{} pages in the repository\n", repo.page_count());

    // Which quantity is measured most? (the bar-chart question)
    let sols = repo
        .sparql(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT ?q (COUNT(*) AS ?n) WHERE { ?d prop:measuresQuantity ?q } \
             GROUP BY ?q ORDER BY DESC(?n) LIMIT 8",
        )
        .expect("aggregate query");
    println!("Most-measured quantities:");
    for row in &sols.rows {
        println!(
            "  {:<16} {}",
            row[0]
                .as_ref()
                .and_then(|t| t.literal_value())
                .unwrap_or("?"),
            row[1].as_ref().and_then(|t| t.as_number()).unwrap_or(0.0)
        );
    }

    // Average sampling interval per vendor.
    let sols = repo
        .sparql(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT ?vendor (AVG(?i) AS ?avg) (COUNT(*) AS ?n) WHERE { \
             ?d prop:hasVendor ?vendor . ?d prop:hasSamplingIntervalMinutes ?i } \
             GROUP BY ?vendor ORDER BY ?vendor",
        )
        .expect("avg query");
    println!("\nMean sampling interval per vendor (minutes):");
    for row in &sols.rows {
        println!(
            "  {:<12} avg {:>6.1}  over {} deployments",
            row[0]
                .as_ref()
                .and_then(|t| t.literal_value())
                .unwrap_or("?"),
            row[1].as_ref().and_then(|t| t.as_number()).unwrap_or(0.0),
            row[2].as_ref().and_then(|t| t.as_number()).unwrap_or(0.0)
        );
    }

    // UNION: everything that is either high-frequency (≤ 5 min) or measures
    // snow height — two ways to be "interesting to the snow forecasters".
    let sols = repo
        .sparql(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT (COUNT(*) AS ?n) WHERE { \
             { ?d prop:measuresQuantity \"snow_height\" } \
             UNION { ?d prop:hasSamplingIntervalMinutes ?i . FILTER(?i <= 5) } }",
        )
        .expect("union query");
    println!(
        "\nDeployments of interest to snow forecasting (snow_height ∪ interval ≤ 5min): {}",
        sols.rows[0][0]
            .as_ref()
            .and_then(|t| t.as_number())
            .unwrap_or(0.0)
    );

    // Elevation profile of field sites, straight off the mirror.
    let sols = repo
        .sparql(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT (COUNT(*) AS ?n) (MIN(?e) AS ?lo) (AVG(?e) AS ?mean) (MAX(?e) AS ?hi) \
             WHERE { ?s prop:hasElevation ?e }",
        )
        .expect("stats query");
    let num = |ix: usize| {
        sols.rows[0][ix]
            .as_ref()
            .and_then(|t| t.as_number())
            .unwrap_or(0.0)
    };
    println!(
        "\nField-site elevations: n={} min={} mean={:.0} max={} m",
        num(0),
        num(1),
        num(2),
        num(3)
    );
}
