//! Regenerates the Fig. 2 visualization gallery over the synthetic corpus:
//! tabular results, bar and pie diagrams, the clustered map with
//! match-degree colors, the association digraph, and a hypergraph snapshot.
//! Everything lands in `target/viz/`.
//!
//! Run with: `cargo run --release --example visualize`

use sensormeta::query::{CondOp, Condition, QueryEngine, SearchForm};
use sensormeta::viz::{
    bar_chart, classify_by_neighbors, map_plot, pie_chart, render_digraph, render_hypergraph,
    Datum, GraphLayout, GraphNode, MapMarker, MapOptions,
};
use sensormeta::workload::CorpusConfig;

fn main() {
    let repo = sensormeta::demo_repository(&CorpusConfig {
        institutions: 8,
        ..CorpusConfig::default()
    });
    let engine = QueryEngine::open(repo).expect("engine");
    std::fs::create_dir_all("target/viz").expect("mkdir");

    // Tabular format — plain SQL output.
    let rs = engine
        .smr()
        .sql(
            "SELECT namespace, COUNT(*) AS pages FROM pages GROUP BY namespace \
             ORDER BY pages DESC",
        )
        .expect("sql");
    println!("Result table:\n{}", rs.to_ascii_table());

    // Bar + pie: measuresQuantity distribution over a keyword search.
    let out = engine
        .search(&SearchForm::keywords("sensor"), None)
        .expect("search");
    let data: Vec<Datum> = {
        let mut counts: Vec<(&str, usize)> = out
            .facets
            .iter()
            .filter(|f| f.attribute == "measuresQuantity")
            .map(|f| (f.value.as_str(), f.count))
            .collect();
        counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        counts
            .into_iter()
            .take(8)
            .map(|(v, c)| Datum::new(v, c as f64))
            .collect()
    };
    std::fs::write(
        "target/viz/fig2_bar.svg",
        bar_chart("Sensors per measured quantity", &data),
    )
    .expect("bar");
    std::fs::write(
        "target/viz/fig2_pie.svg",
        pie_chart("Share of measured quantities", &data),
    )
    .expect("pie");

    // Map: geolocated field sites, soft conditions → match-degree colors.
    let mut form = SearchForm::default()
        .condition(Condition::new("hasElevation", CondOp::Gt, "1500"))
        .condition(Condition::new("hasElevation", CondOp::Lt, "3000"));
    form.soft_conditions = true;
    form.limit = 500;
    let out = engine.search(&form, None).expect("map search");
    let markers: Vec<MapMarker> = out
        .geolocated()
        .map(|i| MapMarker {
            title: i.title.clone(),
            lat: i.coords.expect("geo").0,
            lon: i.coords.expect("geo").1,
            match_degree: i.match_degree,
        })
        .collect();
    println!(
        "Map markers: {} ({} clusters at default zoom)",
        markers.len(),
        { sensormeta::viz::cluster_markers(&markers, &MapOptions::default()).len() }
    );
    std::fs::write(
        "target/viz/fig2_map.svg",
        map_plot(
            "Field sites, colored by match degree",
            &markers,
            &MapOptions::default(),
        ),
    )
    .expect("map");

    // Association digraph over the hyperlink structure (first 50 pages).
    let (_, hyperlink, titles) = engine.smr().link_graphs().expect("graphs");
    let max_nodes = titles.len().min(50);
    let edges: Vec<(usize, usize)> = hyperlink
        .iter_edges()
        .filter(|(u, v)| *u < max_nodes && *v < max_nodes)
        .collect();
    let sub = sensormeta::graph::CsrGraph::from_edges(max_nodes, &edges, true);
    let classes = classify_by_neighbors(&sub);
    let nodes: Vec<GraphNode> = (0..max_nodes)
        .map(|i| GraphNode {
            label: titles[i].clone(),
            class: classes[i],
        })
        .collect();
    std::fs::write(
        "target/viz/fig2_graph.svg",
        render_digraph("Metadata associations", &sub, &nodes, GraphLayout::Force),
    )
    .expect("digraph");

    // Hypergraph around the most-linked page.
    let ind = hyperlink.in_degrees();
    let focus = (0..titles.len())
        .max_by_key(|&v| ind[v])
        .expect("non-empty corpus");
    println!(
        "Hypergraph focus: {} (in-degree {})",
        titles[focus], ind[focus]
    );
    std::fs::write(
        "target/viz/fig2_hypergraph.svg",
        render_hypergraph(
            &format!("Hypergraph around {}", titles[focus]),
            &hyperlink,
            &titles,
            focus,
            2,
        ),
    )
    .expect("hypergraph");

    println!("Wrote fig2_bar/pie/map/graph/hypergraph SVGs to target/viz/");
}
