//! Quickstart: create a repository, add annotated pages, and run the three
//! query modalities (keyword, SQL-backed conditions, SPARQL), plus ranking,
//! recommendations and a tag cloud.
//!
//! Run with: `cargo run --example quickstart`

use sensormeta::query::{CondOp, Condition, QueryEngine, SearchForm};
use sensormeta::smr::{PageDraft, Smr};
use sensormeta::tagging::{compute_cloud, CloudParams, TagStore};

fn main() {
    // 1. Build a small Sensor Metadata Repository.
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Fieldsite:Weissfluhjoch", "Fieldsite")
            .body("High-alpine research site above Davos, 2693 m, snow and avalanche studies.")
            .annotate("hasElevation", "2693")
            .annotate("hasLatitude", "46.8333")
            .annotate("hasLongitude", "9.8064")
            .tag("snow")
            .tag("avalanche"),
    )
    .expect("create field site");
    smr.create_page(
        PageDraft::new("Deployment:wfj_snow_height", "Deployment")
            .body("Ultrasonic snow height sensor on the Weissfluhjoch study plot.")
            .annotate("measuresQuantity", "snow_height")
            .annotate("hasUnit", "cm")
            .annotate("deployedAt", "Fieldsite:Weissfluhjoch")
            .link("Fieldsite:Weissfluhjoch")
            .tag("snow"),
    )
    .expect("create deployment");
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("Ventilated air temperature sensor next to the snow height instrument.")
            .annotate("measuresQuantity", "temperature")
            .annotate("hasUnit", "C")
            .annotate("deployedAt", "Fieldsite:Weissfluhjoch")
            .link("Fieldsite:Weissfluhjoch")
            .link("Deployment:wfj_snow_height")
            .tag("snow"),
    )
    .expect("create deployment");

    // 2. SQL and SPARQL directly against the repository.
    let rs = smr
        .sql("SELECT title, namespace FROM pages ORDER BY title")
        .expect("sql");
    println!("Pages via SQL:\n{}", rs.to_ascii_table());
    let sols = smr
        .sparql(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT ?t WHERE { ?p prop:deployedAt ?site . ?p prop:title ?t } ORDER BY ?t",
        )
        .expect("sparql");
    println!(
        "Deployments via SPARQL: {:?}",
        sols.rows
            .iter()
            .filter_map(|r| r[0].as_ref().and_then(|t| t.literal_value()))
            .collect::<Vec<_>>()
    );

    // 3. The advanced search engine: keyword + structured condition.
    let engine = QueryEngine::open(smr).expect("engine builds");
    let form = SearchForm::keywords("snow sensor").condition(Condition::new(
        "measuresQuantity",
        CondOp::Eq,
        "snow_height",
    ));
    let out = engine.search(&form, None).expect("search");
    println!("\nAdvanced search ({} matched):", out.total_matched);
    for item in &out.items {
        println!(
            "  {:<32} score={:.3} pagerank={:.3} snippet={}",
            item.title, item.score, item.pagerank, item.snippet
        );
    }
    println!("Recommended:");
    for rec in &out.recommendations {
        println!("  {} (shares {:?})", rec.title, rec.shared_properties);
    }

    // 4. Autocomplete, as the search box would use it.
    println!("\nAutocomplete 'Dep' → {:?}", engine.autocomplete("Dep", 5));

    // 5. A tag cloud from the pages' tags.
    let mut tags = TagStore::new();
    let pairs = engine.smr().all_tags().expect("tags");
    tags.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    let cloud = compute_cloud(&tags, &CloudParams::default());
    println!("\nTag cloud:");
    for entry in cloud.by_prominence() {
        println!(
            "  {:<12} count={} font-size={} cliques={:?}",
            entry.tag, entry.count, entry.font_size, entry.cliques
        );
    }
}
