//! The Swiss-Experiment scenario end to end: generate the full synthetic
//! platform corpus, bulk-load it, build the engine, and walk through the
//! workflows the paper demonstrates — advanced search with privileges,
//! map-ready results with match degrees, facets for bar/pie diagrams, and
//! per-namespace statistics.
//!
//! Run with: `cargo run --release --example swiss_experiment`

use sensormeta::query::{Acl, CondOp, Condition, QueryEngine, RankBlend, SearchForm, SortBy};
use sensormeta::workload::CorpusConfig;

fn main() {
    // 1. Generate and load the corpus.
    let cfg = CorpusConfig {
        institutions: 8,
        projects_per_institution: 4,
        sites_per_project: 4,
        deployments_per_site: 6,
        seed: 2011,
    };
    let smr = sensormeta::demo_repository(&cfg);
    println!("Loaded {} metadata pages.", smr.page_count());
    let attrs = smr.attributes().expect("attributes");
    println!("Top annotation attributes (drive the form's drop-downs):");
    for (a, n) in attrs.iter().take(6) {
        println!("  {a:<28} {n}");
    }

    // 2. Privileges: the public sees field sites; researchers also see
    //    deployments (the paper: queries run "within their privileges").
    let mut acl = Acl::new();
    acl.grant("public", "Fieldsite");
    acl.grant("public", "Project");
    acl.grant("public", "Institution");
    acl.grant("researchers", "Deployment");
    acl.add_member("ioannis", "researchers");
    let engine = QueryEngine::build(smr, acl, RankBlend::default()).expect("engine");

    // 3. Keyword search as two different users.
    let form = SearchForm::keywords("temperature");
    let public = engine.search(&form, None).expect("public search");
    let researcher = engine
        .search(&form, Some("ioannis"))
        .expect("researcher search");
    println!(
        "\n'temperature': public sees {} results, researcher sees {}",
        public.total_matched, researcher.total_matched
    );
    assert!(researcher.total_matched >= public.total_matched);

    // 4. Structured search: high-alpine sites, sorted by elevation, with
    //    coordinates ready for the map view.
    let mut form =
        SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "2000"));
    form.sort_by = SortBy::Attribute("hasElevation".into());
    form.descending = true;
    let high = engine.search(&form, None).expect("structured search");
    println!("\nField sites above 2000 m (map-ready):");
    for item in high.items.iter().take(8) {
        let (lat, lon) = item.coords.expect("sites are geolocated");
        println!("  {:<28} ({lat:.3}N, {lon:.3}E)", item.title);
    }

    // 5. Facets → the data behind the bar/pie diagrams.
    let out = engine
        .search(&SearchForm::keywords("sensor"), Some("ioannis"))
        .expect("facet search");
    let mut quantities: Vec<(&str, usize)> = out
        .facets
        .iter()
        .filter(|f| f.attribute == "measuresQuantity")
        .map(|f| (f.value.as_str(), f.count))
        .collect();
    quantities.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nmeasuresQuantity facet over 'sensor' results (bar chart input):");
    for (value, count) in quantities.iter().take(8) {
        println!("  {value:<16} {count}");
    }

    // 6. PageRank: which pages does the double-link structure consider
    //    authoritative? (Field sites and projects attract links.)
    let mut titles = engine.smr().page_titles().expect("titles");
    titles.sort_by(|a, b| {
        engine
            .pagerank_of(b)
            .partial_cmp(&engine.pagerank_of(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("\nHighest-PageRank pages:");
    for t in titles.iter().take(6) {
        println!("  {:<36} {:.4}", t, engine.pagerank_of(t).unwrap_or(0.0));
    }

    // 7. Recommendations from a seed deployment.
    if let Some(dep) = titles.iter().find(|t| t.starts_with("Deployment:")) {
        let recs = engine.recommend(&[dep.as_str()], 5);
        println!("\nPages related to {dep}:");
        for r in recs {
            println!("  {:<36} via {:?}", r.title, r.shared_properties);
        }
    }
}
