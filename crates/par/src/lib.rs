//! # sensormeta-par
//!
//! A zero-dependency, scoped, work-chunked thread pool for the sensormeta
//! stack's embarrassingly parallel hot paths (PageRank matvecs and
//! reductions, tag-similarity pair fills, per-document tokenization).
//!
//! ## Determinism contract
//!
//! Every primitive in this crate produces output **bit-for-bit identical**
//! to a serial run, at any thread count:
//!
//! - Work is split into chunks whose boundaries depend only on the input
//!   length and a fixed per-call-site chunk size — never on the thread
//!   count. Threads *claim* chunks dynamically, but which elements belong
//!   to which chunk is fixed.
//! - Reductions ([`Pool::par_sum`]) accumulate serially *within* each chunk
//!   and combine the per-chunk partials in chunk order, so floating-point
//!   rounding is identical whether one thread or sixteen executed the
//!   chunks.
//! - The serial fallback (a 1-thread pool, a single-chunk region, or a
//!   nested region) runs the very same chunked algorithm inline on the
//!   caller.
//!
//! This is what lets the parallel ranking/tagging/indexing paths share
//! golden tests and fsck validators with their serial ancestors.
//!
//! ## Sizing
//!
//! [`Pool::global`] is sized from the `SENSORMETA_THREADS` environment
//! variable when set to a positive integer, otherwise from
//! `std::thread::available_parallelism()`. A pool of size 1 spawns no
//! worker threads at all and executes every region inline.
//!
//! ## Panics
//!
//! A panic inside a task is caught on the worker, the region is still
//! drained (so no task is silently skipped), and the first panic payload
//! is re-thrown on the calling thread when the region (or [`Pool::scope`])
//! returns. Values produced by tasks that completed before the panic are
//! leaked, not dropped.

#![warn(missing_docs)]

use sensormeta_obs as obs;
use std::any::Any;
use std::cell::RefCell;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// Upper bound on pool size; protects against absurd `SENSORMETA_THREADS`.
const MAX_THREADS: usize = 256;

/// Acquires a mutex, recovering from poisoning: the pool catches task
/// panics with `catch_unwind`, so a poisoned lock only means a panic
/// unwound through a guard — the protected state is still consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One parallel region: a fixed number of tasks, claimed by index.
struct Job {
    /// The task body, lifetime-erased. Only dereferenced for claimed
    /// indices `< tasks`, all of which complete before `remaining` reaches
    /// zero — and the submitting call does not return (ending the borrow)
    /// until it does.
    func: *const (dyn Fn(usize) + Sync),
    /// Next task index to claim.
    next: AtomicUsize,
    /// Total number of tasks.
    tasks: usize,
    /// Tasks not yet completed.
    remaining: AtomicUsize,
    /// First panic payload captured from a task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `func` is only dereferenced while the submitting `run_region`
// call keeps the underlying closure alive (see the field comment); the
// closure itself is `Sync`, so shared calls from several threads are fine.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Erases the lifetime of a task closure so it can sit in a [`Job`] shared
/// with worker threads. See the safety argument on [`Job::func`].
fn erase(f: &(dyn Fn(usize) + Sync)) -> *const (dyn Fn(usize) + Sync) {
    // SAFETY: fat-pointer transmute between the same trait object with the
    // lifetime bound erased; validity is upheld by the Job protocol.
    unsafe { std::mem::transmute(f) }
}

impl Job {
    /// Claims and executes tasks until the job is exhausted. Runs on both
    /// workers and the submitting thread.
    fn work(job: &Arc<Job>, shared: &Shared) {
        loop {
            let idx = job.next.fetch_add(1, Ordering::Relaxed);
            if idx >= job.tasks {
                return;
            }
            // SAFETY: idx < tasks, so the submitting call is still blocked
            // in `run_region` and the closure is alive.
            let func = unsafe { &*job.func };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(idx))) {
                lock(&job.panic).get_or_insert(payload);
            }
            if job.remaining.fetch_sub(1, Ordering::Release) == 1 {
                // Last task: wake the submitter. Taking the state lock
                // orders this notify against the submitter's check-then-wait.
                let _st = lock(&shared.state);
                shared.done.notify_all();
            }
        }
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    state: Mutex<State>,
    /// Signaled when a new job is published or the pool shuts down.
    work: Condvar,
    /// Signaled when a job's last task completes.
    done: Condvar,
}

struct State {
    /// The currently published job, if any.
    job: Option<Arc<Job>>,
    shutdown: bool,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                match st.job.as_ref() {
                    Some(j) if j.next.load(Ordering::Relaxed) < j.tasks => break j.clone(),
                    _ => st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner),
                }
            }
        };
        Job::work(&job, &shared);
    }
}

/// A work-chunked thread pool with deterministic chunking and reduction
/// order. See the crate docs for the determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
    /// Serializes parallel regions. `try_lock` failure (a region is already
    /// active, e.g. a nested call from inside a task) falls back to inline
    /// serial execution rather than deadlocking.
    region: Mutex<()>,
    /// Cached metric handles: recording is lock-free, only the by-name
    /// lookup locks, so look up once at construction.
    tasks_total: obs::Counter,
    regions_total: obs::Counter,
    queue_depth: obs::Gauge,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Pool size from the environment: `SENSORMETA_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn configured_threads() -> usize {
    let from_env = std::env::var("SENSORMETA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    match from_env {
        Some(n) => n.min(MAX_THREADS),
        None => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS),
    }
}

impl Pool {
    /// Creates a pool executing regions on `threads` threads (the calling
    /// thread participates; `threads - 1` workers are spawned). A 1-thread
    /// pool spawns nothing and runs every region inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut workers = Vec::new();
        for i in 1..threads {
            let sh = shared.clone();
            let builder = thread::Builder::new().name(format!("sensormeta-par-{i}"));
            // A failed spawn just leaves the pool with fewer workers; the
            // region protocol and the results are unaffected.
            if let Ok(handle) = builder.spawn(move || worker_loop(sh)) {
                workers.push(handle);
            }
        }
        Pool {
            shared,
            workers,
            threads,
            region: Mutex::new(()),
            tasks_total: obs::counter("par_tasks_total"),
            regions_total: obs::counter("par_regions_total"),
            queue_depth: obs::gauge("par_queue_depth"),
        }
    }

    /// The process-wide pool, sized by [`configured_threads`] on first use.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| Pool::new(configured_threads()))
    }

    /// Number of threads executing regions (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(0), f(1), …, f(tasks - 1)`, each exactly once, across
    /// the pool. Blocks until all tasks finished; re-throws the first task
    /// panic. Task *completion order* is nondeterministic — determinism is
    /// the caller's concern and comes from tasks writing disjoint output.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        self.run_region(tasks, &f);
    }

    fn run_region(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // Serial fallback: 1-thread pool, a single task, or a region already
        // active on this pool (nested/concurrent submission). Same chunked
        // algorithm, same arithmetic, run inline.
        let guard = if self.threads > 1 && tasks > 1 {
            self.region.try_lock().ok()
        } else {
            None
        };
        let Some(_guard) = guard else {
            for i in 0..tasks {
                f(i);
            }
            return;
        };
        self.regions_total.inc();
        self.tasks_total.add(tasks as u64);
        self.queue_depth.set(tasks as f64);
        let job = Arc::new(Job {
            func: erase(f),
            next: AtomicUsize::new(0),
            tasks,
            remaining: AtomicUsize::new(tasks),
            panic: Mutex::new(None),
        });
        {
            let mut st = lock(&self.shared.state);
            st.job = Some(job.clone());
            self.shared.work.notify_all();
        }
        // The submitter works too — a region never waits idle on workers.
        Job::work(&job, &self.shared);
        let mut st = lock(&self.shared.state);
        while job.remaining.load(Ordering::Acquire) != 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
            st.job = None;
        }
        drop(st);
        self.queue_depth.set(0.0);
        let payload = lock(&job.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Runs `tasks` tasks and collects their results in task order.
    fn run_collect<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(tasks);
        out.resize_with(tasks, MaybeUninit::uninit);
        let slots = SendPtr(out.as_mut_ptr());
        self.run_region(tasks, &|i| {
            let value = f(i);
            // SAFETY: each task index writes exactly its own slot.
            unsafe { (*slots.at(i)).write(value) };
        });
        // SAFETY: run_region returned without unwinding, so every slot was
        // written; Vec<MaybeUninit<R>> and Vec<R> share layout.
        unsafe {
            let ptr = out.as_mut_ptr() as *mut R;
            let cap = out.capacity();
            std::mem::forget(out);
            Vec::from_raw_parts(ptr, tasks, cap)
        }
    }

    /// Splits `data` into fixed-size chunks (the last may be short) and
    /// runs `f(chunk_index, chunk_offset, chunk)` for each, returning the
    /// per-chunk results **in chunk order**. Chunk boundaries depend only
    /// on `data.len()` and `chunk`, never on the thread count.
    pub fn par_chunks_mut<T, R, F>(&self, data: &mut [T], chunk: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, &mut [T]) -> R + Sync,
    {
        let len = data.len();
        let chunk = chunk.max(1);
        let tasks = len.div_ceil(chunk);
        let base = SendPtr(data.as_mut_ptr());
        self.run_collect(tasks, |k| {
            let start = k * chunk;
            let end = (start + chunk).min(len);
            // SAFETY: chunk ranges are disjoint and `data` stays exclusively
            // borrowed for the whole region.
            let part = unsafe { std::slice::from_raw_parts_mut(base.at(start), end - start) };
            f(k, start, part)
        })
    }

    /// Maps `f` over `items` (chunked internally), preserving input order
    /// in the output.
    pub fn par_map_collect<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let len = items.len();
        let chunk = chunk.max(1);
        let tasks = len.div_ceil(chunk);
        let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
        out.resize_with(len, MaybeUninit::uninit);
        let slots = SendPtr(out.as_mut_ptr());
        self.run_region(tasks, &|k| {
            let start = k * chunk;
            let end = (start + chunk).min(len);
            for (i, item) in items[start..end].iter().enumerate() {
                // SAFETY: chunks write disjoint index ranges.
                unsafe { (*slots.at(start + i)).write(f(item)) };
            }
        });
        // SAFETY: as in `run_collect` — all slots written, layouts match.
        unsafe {
            let ptr = out.as_mut_ptr() as *mut U;
            let cap = out.capacity();
            std::mem::forget(out);
            Vec::from_raw_parts(ptr, len, cap)
        }
    }

    /// Deterministic chunked reduction: `Σ f(i)` for `i in 0..len`, summed
    /// serially within each fixed-size chunk, with the per-chunk partials
    /// combined in chunk order. The float rounding is therefore identical
    /// at every thread count.
    pub fn par_sum<F: Fn(usize) -> f64 + Sync>(&self, len: usize, chunk: usize, f: F) -> f64 {
        let chunk = chunk.max(1);
        let tasks = len.div_ceil(chunk);
        let partials = self.run_collect(tasks, |k| {
            let start = k * chunk;
            let end = (start + chunk).min(len);
            let mut acc = 0.0;
            for i in start..end {
                acc += f(i);
            }
            acc
        });
        partials.into_iter().sum()
    }

    /// Runs a fork-join scope: closures handed to [`Scope::spawn`] execute
    /// on the pool after `f` returns, and `scope` itself returns once all
    /// of them completed. The first panic from a spawned closure (or from
    /// `f`) propagates to the caller.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let _span = obs::span("par_scope");
        let scope = Scope {
            jobs: RefCell::new(Vec::new()),
        };
        let result = f(&scope);
        let mut jobs = scope.jobs.into_inner();
        let n = jobs.len();
        if n == 0 {
            return result;
        }
        // Hand each boxed closure to exactly one task by moving it out of
        // the Vec's buffer; emptying the Vec first keeps a panicking region
        // from double-dropping (every index still runs — `Job::work` drains
        // the region even after capturing a panic — so nothing leaks).
        let slots = SendPtr(jobs.as_mut_ptr());
        // SAFETY: ownership of all `n` boxes is transferred to the tasks.
        unsafe { jobs.set_len(0) };
        self.run_region(n, &|i| {
            // SAFETY: each index is claimed exactly once.
            let job = unsafe { std::ptr::read(slots.at(i)) };
            job();
        });
        result
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A fork-join scope; see [`Pool::scope`].
pub struct Scope<'scope> {
    #[allow(clippy::type_complexity)]
    jobs: RefCell<Vec<Box<dyn FnOnce() + Send + 'scope>>>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("spawned", &self.jobs.borrow().len())
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Queues `f` to run on the pool when the scope body returns.
    pub fn spawn<F: FnOnce() + Send + 'scope>(&self, f: F) {
        self.jobs.borrow_mut().push(Box::new(f));
    }
}

/// Raw-pointer wrapper that may cross threads: every use hands disjoint
/// indices to distinct tasks.
struct SendPtr<T>(*mut T);

// SAFETY: see the type doc — disjoint-index access only.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass indices inside the allocation.
        unsafe { self.0.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.run(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let doubled = pool.par_map_collect(&items, 16, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunks_mut_sees_disjoint_offsets() {
        let mut data = vec![0usize; 103];
        let pool = Pool::new(4);
        let chunk_ids = pool.par_chunks_mut(&mut data, 10, |k, offset, part| {
            assert_eq!(offset, k * 10);
            for (r, slot) in part.iter_mut().enumerate() {
                *slot = offset + r;
            }
            k
        });
        assert_eq!(chunk_ids, (0..11).collect::<Vec<_>>());
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn par_sum_is_bitwise_deterministic_across_thread_counts() {
        // Values chosen so summation order changes the float result.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_usize) as f64).sqrt() * 1e-3 + 1e9 * ((i % 7) as f64))
            .collect();
        let reference = Pool::new(1).par_sum(values.len(), 128, |i| values[i]);
        for threads in [2, 3, 7] {
            let pool = Pool::new(threads);
            for _ in 0..5 {
                let sum = pool.par_sum(values.len(), 128, |i| values[i]);
                assert_eq!(sum.to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn scope_runs_spawned_jobs() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        let out = pool.scope(|s| {
            for i in 1..=10u64 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
            "body-result"
        });
        assert_eq!(out, "body-result");
        assert_eq!(total.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn panic_propagates_out_of_scope_and_pool_survives() {
        let pool = Pool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom in scope"));
                for _ in 0..20 {
                    s.spawn(|| {});
                }
            });
        }));
        let payload = caught.expect_err("scope must re-throw the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("boom in scope"), "{msg}");
        // The pool keeps working after a panicked region.
        let n = AtomicUsize::new(0);
        pool.run(50, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panic_propagates_from_run() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(10, |i| {
                if i == 3 {
                    panic!("task 3 failed");
                }
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn single_thread_pool_is_inline_and_ordered() {
        let pool = Pool::new(1);
        assert!(pool.workers.is_empty(), "no workers at 1 thread");
        let order = Mutex::new(Vec::new());
        pool.run(10, |i| lock(&order).push(i));
        assert_eq!(lock(&order).clone(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn env_sizing_parses_positive_integers() {
        std::env::set_var("SENSORMETA_THREADS", "3");
        assert_eq!(configured_threads(), 3);
        std::env::set_var("SENSORMETA_THREADS", "0");
        let fallback = configured_threads();
        assert!(fallback >= 1, "invalid env falls back to detection");
        std::env::remove_var("SENSORMETA_THREADS");
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn empty_region_and_empty_inputs() {
        let pool = Pool::new(4);
        pool.run(0, |_| unreachable!());
        assert_eq!(pool.par_sum(0, 8, |_| 1.0), 0.0);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.par_map_collect(&empty, 8, |&b| b).is_empty());
        let mut none: Vec<u8> = Vec::new();
        let res: Vec<()> = pool.par_chunks_mut(&mut none, 8, |_, _, _| ());
        assert!(res.is_empty());
    }

    #[test]
    fn nested_regions_fall_back_to_inline() {
        let pool = Pool::new(4);
        let n = AtomicUsize::new(0);
        pool.run(8, |_| {
            // A region submitted from inside a task must not deadlock.
            pool.run(8, |_| {
                n.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(n.load(Ordering::Relaxed), 64);
    }
}
