//! Resilience integration: deadline propagation through the query pipeline
//! and serve-stale degradation from the result cache.
//!
//! One test function: the chaos plan and the epoch clock are process-global,
//! so phases must run sequentially rather than as parallel `#[test]`s.

use sensormeta_cache::Status;
use sensormeta_query::{QueryEngine, QueryError, SearchForm, SearchOptions};
use sensormeta_resil::chaos::{Fault, FaultKind};
use sensormeta_resil::{chaos, Deadline};
use sensormeta_smr::{PageDraft, Smr};
use std::time::Duration;

fn seed_smr() -> Smr {
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("Temperature sensor on the snow surface")
            .annotate("measuresQuantity", "temperature"),
    )
    .expect("seed page");
    smr.create_page(
        PageDraft::new("Deployment:davos_wind", "Deployment")
            .body("Wind speed sensor at Davos")
            .annotate("measuresQuantity", "wind_speed"),
    )
    .expect("seed page");
    smr
}

#[test]
fn deadlines_interrupt_and_stale_results_degrade() {
    let mut engine = QueryEngine::open(seed_smr()).expect("build engine");
    let form = SearchForm::keywords("temperature");

    // Warm the result cache.
    let (fresh, status) = engine
        .search_shared(&form, &SearchOptions::default())
        .expect("first search");
    assert_eq!(status, Status::Miss);
    assert_eq!(fresh.items.len(), 1);
    let (_, status) = engine
        .search_shared(&form, &SearchOptions::default())
        .expect("second search");
    assert_eq!(status, Status::Hit);

    // An expired budget interrupts an uncached query cooperatively…
    let expired = SearchOptions {
        deadline: Deadline::within(Duration::ZERO),
        ..SearchOptions::default()
    };
    let err = engine
        .search_shared(&SearchForm::keywords("wind"), &expired)
        .expect_err("no budget, no cached entry");
    assert!(matches!(err, QueryError::DeadlineExceeded), "{err}");
    // …while a valid cached entry still answers instantly.
    let (_, status) = engine
        .search_shared(&form, &expired)
        .expect("hit needs no budget");
    assert_eq!(status, Status::Hit);

    // Mutate the corpus: the cached entry goes epoch-stale.
    engine
        .smr_mut()
        .create_page(
            PageDraft::new("Deployment:new_temp", "Deployment")
                .body("A second temperature sensor")
                .annotate("measuresQuantity", "temperature"),
        )
        .expect("mutation");
    engine.rebuild().expect("rebuild");

    // With the backend faulted, a plain request fails…
    chaos::install("query_search", Fault::always(FaultKind::Error));
    let err = engine
        .search_shared(&form, &SearchOptions::default())
        .expect_err("injected fault");
    assert!(matches!(err, QueryError::Injected("query_search")), "{err}");
    // …but a stale-tolerant request degrades to the superseded entry,
    // labeled as such, with the pre-mutation body.
    let stale_ok = SearchOptions {
        stale_ok: true,
        ..SearchOptions::default()
    };
    let (out, status) = engine
        .search_shared(&form, &stale_ok)
        .expect("serve stale under fault");
    assert_eq!(status, Status::Degraded);
    assert_eq!(status.as_str(), "stale");
    assert_eq!(out.items.len(), 1, "pre-mutation result");
    // The breaker-open path finds the same entry without computing.
    let (held, age) = engine.search_stale(&form, None).expect("stale lookup");
    assert_eq!(held.items.len(), 1);
    assert!(age < Duration::from_secs(60));

    // Fault cleared: the next request recomputes the real, fresh answer
    // (reported `Stale` — the retained superseded entry was replaced).
    chaos::clear();
    let (out, status) = engine
        .search_shared(&form, &SearchOptions::default())
        .expect("recovered");
    assert_eq!(status, Status::Stale);
    assert_eq!(out.items.len(), 2, "post-mutation result");

    // An injected failure must not have been negatively cached: the fresh
    // result above proves it, and a repeat is a plain hit.
    let (_, status) = engine
        .search_shared(&form, &SearchOptions::default())
        .expect("replay");
    assert_eq!(status, Status::Hit);
}
