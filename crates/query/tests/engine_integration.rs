//! Integration tests: the full query pipeline over a small hand-built SMR
//! and over the synthetic Swiss-Experiment corpus.

use sensormeta_query::{Acl, CondOp, Condition, QueryEngine, RankBlend, SearchForm, SortBy};
use sensormeta_smr::{PageDraft, Smr};
use sensormeta_workload::{generate_corpus, CorpusConfig};

fn small_smr() -> Smr {
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Fieldsite:Weissfluhjoch", "Fieldsite")
            .body("High alpine field site for snow and avalanche research")
            .annotate("hasElevation", "2693")
            .annotate("hasLatitude", "46.8333")
            .annotate("hasLongitude", "9.8064")
            .tag("snow"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Fieldsite:Davos", "Fieldsite")
            .body("Valley station near Davos for climate monitoring")
            .annotate("hasElevation", "1594")
            .annotate("hasLatitude", "46.8")
            .annotate("hasLongitude", "9.83")
            .tag("climate"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("Temperature sensor measuring snow surface temperature")
            .annotate("measuresQuantity", "temperature")
            .annotate("deployedAt", "Fieldsite:Weissfluhjoch")
            .link("Fieldsite:Weissfluhjoch")
            .tag("snow"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Deployment:davos_wind", "Deployment")
            .body("Wind speed sensor at Davos")
            .annotate("measuresQuantity", "wind_speed")
            .annotate("deployedAt", "Fieldsite:Davos")
            .link("Fieldsite:Davos")
            .tag("wind"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Internal:secret_plan", "Internal")
            .body("secret temperature calibration notes")
            .annotate("measuresQuantity", "temperature"),
    )
    .unwrap();
    smr
}

#[test]
fn keyword_search_ranks_and_snippets() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let out = engine
        .search(&SearchForm::keywords("temperature"), None)
        .unwrap();
    assert!(out.total_matched >= 2);
    // BM25 is length-normalized, so the exact winner between the two
    // temperature-heavy pages is close; the wfj deployment must be in the
    // top two and every hit carries a keyword snippet and positive score.
    let pos = out
        .items
        .iter()
        .position(|i| i.title == "Deployment:wfj_temp")
        .expect("wfj deployment found");
    assert!(pos <= 1, "rank {pos}");
    assert!(out.items[0].snippet.to_lowercase().contains("temperature"));
    assert!(out.items[0].score > 0.0);
}

#[test]
fn sparql_condition_path() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let form = SearchForm::default().condition(Condition::new(
        "measuresQuantity",
        CondOp::Eq,
        "temperature",
    ));
    let out = engine.search(&form, None).unwrap();
    let titles: Vec<&str> = out.items.iter().map(|i| i.title.as_str()).collect();
    assert!(titles.contains(&"Deployment:wfj_temp"));
    assert!(titles.contains(&"Internal:secret_plan"));
}

#[test]
fn sql_numeric_condition_path() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let form = SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "2000"));
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items.len(), 1);
    assert_eq!(out.items[0].title, "Fieldsite:Weissfluhjoch");
    let form = SearchForm::default().condition(Condition::new(
        "hasElevation",
        CondOp::Between,
        "1000..2000",
    ));
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items[0].title, "Fieldsite:Davos");
}

#[test]
fn combined_keyword_and_condition() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let form = SearchForm::keywords("sensor").condition(Condition::new(
        "measuresQuantity",
        CondOp::Eq,
        "wind_speed",
    ));
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items.len(), 1);
    assert_eq!(out.items[0].title, "Deployment:davos_wind");
}

#[test]
fn soft_conditions_report_match_degree() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let mut form = SearchForm::default()
        .condition(Condition::new("hasElevation", CondOp::Gt, "2000"))
        .condition(Condition::new("hasElevation", CondOp::Lt, "3000"));
    form.soft_conditions = true;
    let out = engine.search(&form, None).unwrap();
    // WFJ matches both (degree 1.0); Davos matches only Lt (degree 0.5).
    let degree = |t: &str| {
        out.items
            .iter()
            .find(|i| i.title == t)
            .map(|i| i.match_degree)
            .unwrap()
    };
    assert_eq!(degree("Fieldsite:Weissfluhjoch"), 1.0);
    assert_eq!(degree("Fieldsite:Davos"), 0.5);
}

#[test]
fn acl_hides_namespaces() {
    let mut acl = Acl::new();
    acl.grant("public", "Fieldsite");
    acl.grant("public", "Deployment");
    acl.grant("staff", "Internal");
    acl.add_member("bob", "staff");
    let engine = QueryEngine::build(small_smr(), acl, RankBlend::default()).unwrap();
    let form = SearchForm::keywords("temperature");
    let anon = engine.search(&form, None).unwrap();
    assert!(anon.items.iter().all(|i| i.namespace != "Internal"));
    let bob = engine.search(&form, Some("bob")).unwrap();
    assert!(bob.items.iter().any(|i| i.namespace == "Internal"));
}

#[test]
fn namespace_filter() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let mut form = SearchForm::keywords("sensor snow temperature wind");
    form.namespace = Some("Fieldsite".into());
    let out = engine.search(&form, None).unwrap();
    assert!(!out.items.is_empty());
    assert!(out.items.iter().all(|i| i.namespace == "Fieldsite"));
}

#[test]
fn sort_by_attribute_and_title() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let mut form = SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "0"));
    form.sort_by = SortBy::Attribute("hasElevation".into());
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items[0].title, "Fieldsite:Davos", "ascending numeric");
    form.descending = true;
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items[0].title, "Fieldsite:Weissfluhjoch");
    form.sort_by = SortBy::Title;
    form.descending = false;
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items[0].title, "Fieldsite:Davos");
}

#[test]
fn geolocated_results_carry_coords() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let form = SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "0"));
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.geolocated().count(), 2);
}

#[test]
fn facets_cover_match_set() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let out = engine
        .search(&SearchForm::keywords("sensor temperature wind"), None)
        .unwrap();
    let quantity_total: usize = out
        .facets
        .iter()
        .filter(|f| f.attribute == "measuresQuantity")
        .map(|f| f.count)
        .sum();
    assert!(quantity_total >= 2);
}

#[test]
fn recommendations_exclude_results_and_share_properties() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    // Search that matches only the wfj deployment; davos_wind shares the
    // measuresQuantity/deployedAt properties and should be recommended.
    let form = SearchForm::keywords("surface");
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items.len(), 1);
    assert!(
        out.recommendations
            .iter()
            .any(|r| r.title == "Deployment:davos_wind"),
        "recommendations: {:?}",
        out.recommendations
    );
    let rec = out
        .recommendations
        .iter()
        .find(|r| r.title == "Deployment:davos_wind")
        .unwrap();
    assert!(rec
        .shared_properties
        .contains(&"measuresQuantity".to_string()));
}

#[test]
fn pagerank_favors_linked_to_pages() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    // Field sites receive links from deployments; deployments receive none.
    let wfj = engine.pagerank_of("Fieldsite:Weissfluhjoch").unwrap();
    let dep = engine.pagerank_of("Deployment:wfj_temp").unwrap();
    assert!(wfj > dep, "wfj {wfj} vs dep {dep}");
}

#[test]
fn autocomplete_suggests_titles_and_attributes() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let suggestions = engine.autocomplete("Fieldsite:", 10);
    assert_eq!(suggestions.len(), 2);
    let attrs = engine.autocomplete("has", 10);
    assert!(attrs.iter().any(|(s, _)| s == "haselevation"));
}

#[test]
fn empty_form_is_an_error() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    assert!(engine.search(&SearchForm::default(), None).is_err());
}

#[test]
fn engine_over_generated_corpus() {
    let pages = generate_corpus(&CorpusConfig::default());
    let mut smr = Smr::new();
    let report = smr.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let engine = QueryEngine::open(smr).unwrap();
    // Keyword search across the corpus.
    let out = engine
        .search(&SearchForm::keywords("temperature"), None)
        .unwrap();
    assert!(!out.items.is_empty());
    // Structured search: high-altitude field sites.
    let form = SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "2500"));
    let high = engine.search(&form, None).unwrap();
    assert!(high.items.iter().all(|i| i.namespace == "Fieldsite"));
    for item in &high.items {
        assert!(item.coords.is_some(), "field sites are geolocated");
    }
    // Rebuild after adding a page keeps the engine consistent.
    let mut engine = engine;
    engine
        .smr_mut()
        .create_page(
            PageDraft::new("Deployment:new_probe", "Deployment")
                .body("a brand new temperature probe"),
        )
        .unwrap();
    engine.rebuild().unwrap();
    let out2 = engine
        .search(&SearchForm::keywords("brand new probe"), None)
        .unwrap();
    assert_eq!(out2.items[0].title, "Deployment:new_probe");
}

#[test]
fn limit_truncates_but_total_counts() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let mut form =
        SearchForm::default().condition(Condition::new("measuresQuantity", CondOp::Contains, "e"));
    form.limit = 1;
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items.len(), 1);
    assert!(out.total_matched >= 2);
}

#[test]
fn did_you_mean_on_zero_results() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let out = engine
        .search(&SearchForm::keywords("temperture"), None)
        .unwrap();
    assert_eq!(out.total_matched, 0);
    assert_eq!(out.did_you_mean.as_deref(), Some("temperature"));
    // Successful queries never carry a suggestion.
    let out = engine
        .search(&SearchForm::keywords("temperature"), None)
        .unwrap();
    assert!(out.did_you_mean.is_none());
    // Condition-only queries never carry one either.
    let out = engine
        .search(
            &SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "9999")),
            None,
        )
        .unwrap();
    assert!(out.did_you_mean.is_none());
}

#[test]
fn map_region_filters_geolocated_pages() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    // A box around Davos/WFJ (lon > 9) excludes nothing in GR but a narrow
    // box around WFJ's latitude keeps only WFJ.
    let mut form = SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "0"));
    form.region = Some((46.82, 46.85, 9.0, 10.0));
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items.len(), 1);
    assert_eq!(out.items[0].title, "Fieldsite:Weissfluhjoch");
    // Pages without coordinates never match a region-scoped search.
    let mut form = SearchForm::keywords("temperature");
    form.region = Some((0.0, 90.0, 0.0, 90.0));
    let out = engine.search(&form, None).unwrap();
    assert!(out.items.iter().all(|i| i.coords.is_some()));
}

#[test]
fn region_only_search_is_valid_map_browsing() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    let form = SearchForm {
        region: Some((46.0, 47.0, 9.0, 10.0)),
        ..SearchForm::default()
    };
    let out = engine.search(&form, None).unwrap();
    assert_eq!(out.items.len(), 2, "both GR field sites");
    assert!(out.items.iter().all(|i| i.coords.is_some()));
}

#[test]
fn pushdown_preserves_multi_condition_results() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    // Two hard conditions trigger the selectivity-ordered semi-join pushdown;
    // the surviving set must be exactly the pages matching both.
    let before = sensormeta_obs::counter("query_pushdown_semijoin_total").get();
    let form = SearchForm::default()
        .condition(Condition::new(
            "measuresQuantity",
            CondOp::Eq,
            "temperature",
        ))
        .condition(Condition::new(
            "deployedAt",
            CondOp::Contains,
            "Weissfluhjoch",
        ));
    let out = engine.search(&form, None).unwrap();
    let titles: Vec<&str> = out.items.iter().map(|i| i.title.as_str()).collect();
    assert_eq!(titles, ["Deployment:wfj_temp"]);
    assert!(
        sensormeta_obs::counter("query_pushdown_semijoin_total").get() > before,
        "second condition should have been evaluated as a semi-join"
    );
    // An empty first intersection short-circuits the rest.
    let form = SearchForm::default()
        .condition(Condition::new(
            "measuresQuantity",
            CondOp::Eq,
            "no_such_quantity",
        ))
        .condition(Condition::new("hasElevation", CondOp::Gt, "0"));
    let out = engine.search(&form, None).unwrap();
    assert!(out.items.is_empty());
}

#[test]
fn pushdown_leaves_soft_conditions_independent() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    // Soft mode scores each condition independently, so the pushdown must
    // not restrict later conditions: Davos matches only one of the two.
    let mut form = SearchForm::default()
        .condition(Condition::new(
            "measuresQuantity",
            CondOp::Eq,
            "temperature",
        ))
        .condition(Condition::new("hasElevation", CondOp::Lt, "3000"));
    form.soft_conditions = true;
    let out = engine.search(&form, None).unwrap();
    let degree = |t: &str| {
        out.items
            .iter()
            .find(|i| i.title == t)
            .map(|i| i.match_degree)
            .unwrap()
    };
    assert_eq!(degree("Fieldsite:Davos"), 0.5);
    assert_eq!(degree("Deployment:wfj_temp"), 0.5);
}

#[test]
fn autocomplete_falls_back_to_substring_matches() {
    let engine = QueryEngine::open(small_smr()).unwrap();
    // "davos" is not a title or attribute prefix, but the trigram-backed
    // ILIKE fallback surfaces mid-title matches.
    let out = engine.autocomplete("davos", 10);
    assert!(
        out.iter().any(|(s, _)| s == "Fieldsite:Davos"),
        "substring fallback missing: {out:?}"
    );
    assert!(out.iter().any(|(s, _)| s == "Deployment:davos_wind"));
    // Short fragments stay prefix-only (trigram needs 3+ chars).
    let short = engine.autocomplete("da", 10);
    assert!(short
        .iter()
        .all(|(s, _)| s.to_lowercase().starts_with("da")));
    // The prefix trie still wins when it already fills the budget.
    let prefixed = engine.autocomplete("Fieldsite:", 10);
    assert_eq!(prefixed.len(), 2);
}
