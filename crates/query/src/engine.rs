//! The Query Management module (Fig. 1).
//!
//! Owns the SMR plus every derived structure: the full-text index, the
//! autocomplete trie, double-link PageRank scores, and the recommender.
//! Query execution combines the relational store (numeric conditions via
//! SQL), the RDF mirror (exact semantic conditions via SPARQL), and the
//! inverted index (keywords), then ranks by the blended BM25 × PageRank
//! metric and attaches facets and recommendations.

use crate::acl::Acl;
use crate::error::{QueryError, Result};
use crate::form::{CondOp, Condition, SearchForm, SortBy};
use crate::result::{FacetCount, QueryOutput, RecommendedPage, ResultItem};
use sensormeta_cache::{Cache, CacheConfig, CacheError, Domain, EpochVector, Fingerprint, Status};
use sensormeta_obs as obs;
use sensormeta_rank::{GaussSeidel, PageRankProblem, RankCache, Recommender, TransitionMatrix};
use sensormeta_resil::{self as resil, Deadline};
use sensormeta_search::{Autocomplete, Hit, SearchIndex, SpellSuggester};
use sensormeta_smr::{sql_escape, Page, Smr};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Largest running-intersection size still worth pushing into SQL as a
/// `p.title IN (...)` list during condition semi-joins. Beyond this the
/// literal list outgrows the scan it saves.
const SEMIJOIN_PUSHDOWN_CAP: usize = 128;

/// Ranking blend: `score = (1−w)·bm25_norm + w·pagerank_norm` when keywords
/// are present; pure PageRank otherwise.
#[derive(Debug, Clone, Copy)]
pub struct RankBlend {
    /// PageRank weight `w`.
    pub pagerank_weight: f64,
    /// Double-link alpha (semantic share; see `TransitionMatrix::double_link`).
    pub semantic_alpha: f64,
    /// Teleportation coefficient `c` of Eq. 2.
    pub c: f64,
}

impl Default for RankBlend {
    fn default() -> Self {
        RankBlend {
            pagerank_weight: 0.3,
            semantic_alpha: 0.5,
            c: 0.85,
        }
    }
}

/// Epoch domains a combined query result depends on: relational rows (SQL
/// conditions, page bodies), the triple mirror (SPARQL conditions), the
/// inverted index (keywords) and the web graph (PageRank blending).
const RESULT_DEPS: &[Domain] = &[
    Domain::Relational,
    Domain::Triples,
    Domain::SearchIndex,
    Domain::WebGraph,
];

/// Byte budget for cached combined results.
const RESULT_CACHE_CAPACITY: usize = 16 << 20;

/// Per-request cache controls for [`QueryEngine::search_shared`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchOptions<'a> {
    /// Skip the cache entirely (compute fresh, store nothing).
    pub bypass: bool,
    /// Upper bound on blocking behind an identical in-flight query; `None`
    /// waits indefinitely (bounded by `deadline` either way). Expired waits
    /// return [`QueryError::CacheBusy`].
    pub wait: Option<Duration>,
    /// End-to-end request budget. Installed as the ambient resil deadline
    /// for the whole execution, so the index scans, condition evaluation and
    /// result assembly all observe it cooperatively; expiry surfaces as
    /// [`QueryError::DeadlineExceeded`].
    pub deadline: Deadline,
    /// Requesting user (ACL identity) — part of the cache key, since result
    /// visibility is per user.
    pub user: Option<&'a str>,
    /// Permit answering a backend failure or deadline expiry from the cache
    /// within its staleness grace window. Such responses are labeled
    /// [`Status::Degraded`]; callers must surface the label.
    pub stale_ok: bool,
    /// The MVCC snapshot's epoch vector this request is pinned at. When set,
    /// cache entries are keyed and validated against it instead of the live
    /// clock, so a reader on an old snapshot neither sees results from a
    /// newer generation nor misses just because a writer committed mid-read.
    pub at: Option<EpochVector>,
}

/// One shard's contribution to a scattered search: assembled result rows
/// carrying *raw* (unnormalized) BM25 and unblended scores, plus the shard's
/// facet counts. Produced by [`QueryEngine::assemble_partial`]; partials that
/// cover the corpus exactly once merge back into the single-store output
/// through [`QueryEngine::finalize_partials`].
#[derive(Debug, Default)]
pub struct ShardPartial {
    /// `(raw item, page row)` pairs surviving the ACL, namespace and region
    /// filters. The page row rides along for attribute sorting.
    pub items: Vec<(ResultItem, Page)>,
    /// Facet counts over this shard's visible pages (counted before the
    /// region filter, exactly as in the single-store path).
    pub facets: BTreeMap<(String, String), usize>,
}

/// The query engine over one SMR.
///
/// Every derived structure sits behind an `Arc`: [`QueryEngine::rebuild`]
/// replaces them wholesale, so a [`QueryEngine::clone_reader`] snapshot keeps
/// the versions that were current when it was taken while the primary moves
/// on — the MVCC publication path clones in O(fields), not O(corpus).
pub struct QueryEngine {
    smr: Smr,
    acl: Acl,
    blend: RankBlend,
    index: Arc<SearchIndex>,
    autocomplete: Arc<Autocomplete>,
    /// title → dense page id (indexes `titles` / `pagerank`).
    title_ids: Arc<HashMap<String, usize>>,
    titles: Arc<Vec<String>>,
    /// PageRank per dense id, normalized so max = 1.
    pagerank: Arc<Vec<f64>>,
    recommender: Arc<Recommender>,
    /// Attribute-name dictionary for the recommender's property ids.
    prop_names: Arc<Vec<String>>,
    suggester: Arc<SpellSuggester>,
    /// Combined SQL+SPARQL+keyword result cache (see [`RESULT_DEPS`]).
    /// Shared between the primary and its reader snapshots, so a result
    /// computed through any snapshot benefits every concurrent request.
    results: Arc<Cache<QueryOutput>>,
    /// Converged PageRank vectors, shared across rebuilds.
    rank_cache: Arc<RankCache>,
}

fn weigh_output(out: &QueryOutput) -> usize {
    let items: usize = out
        .items
        .iter()
        .map(|i| std::mem::size_of_val(i) + i.title.len() + i.namespace.len() + i.snippet.len())
        .sum();
    let facets: usize = out
        .facets
        .iter()
        .map(|f| std::mem::size_of_val(f) + f.attribute.len() + f.value.len())
        .sum();
    let recs: usize = out
        .recommendations
        .iter()
        .map(|r| {
            std::mem::size_of_val(r)
                + r.title.len()
                + r.shared_properties.iter().map(String::len).sum::<usize>()
        })
        .sum();
    items + facets + recs + out.did_you_mean.as_deref().map_or(0, str::len)
}

/// Default staleness grace: how long a superseded result may still be served
/// (labeled) when the backend fails or a breaker is open.
const DEFAULT_STALE_GRACE_MS: u64 = 60_000;

/// Reads `SENSORMETA_STALE_GRACE_MS` (default 60000; `0` disables
/// serve-stale degradation entirely).
fn stale_grace_from_env() -> Option<Duration> {
    let ms = std::env::var("SENSORMETA_STALE_GRACE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_STALE_GRACE_MS);
    (ms > 0).then(|| Duration::from_millis(ms))
}

fn result_cache() -> Cache<QueryOutput> {
    let mut cfg = CacheConfig::new("query_results", RESULT_CACHE_CAPACITY, RESULT_DEPS);
    // Wall-clock backstop on top of epoch invalidation.
    cfg.ttl = Some(Duration::from_secs(120));
    cfg.stale_grace = stale_grace_from_env();
    Cache::new(cfg, weigh_output)
}

impl QueryEngine {
    /// Builds the engine, indexing the repository and solving double-link
    /// PageRank with the Gauss–Seidel method (the paper's choice from
    /// Fig. 3).
    pub fn build(smr: Smr, acl: Acl, blend: RankBlend) -> Result<QueryEngine> {
        let mut engine = QueryEngine {
            smr,
            acl,
            blend,
            index: Arc::new(SearchIndex::new()),
            autocomplete: Arc::new(Autocomplete::new()),
            title_ids: Arc::new(HashMap::new()),
            titles: Arc::new(Vec::new()),
            pagerank: Arc::new(Vec::new()),
            recommender: Arc::new(Recommender::new(Vec::new(), Vec::new())),
            prop_names: Arc::new(Vec::new()),
            suggester: Arc::new(SpellSuggester::new()),
            results: Arc::new(result_cache()),
            rank_cache: Arc::new(RankCache::new()),
        };
        engine.rebuild()?;
        Ok(engine)
    }

    /// Builds with an open ACL and default blend.
    pub fn open(smr: Smr) -> Result<QueryEngine> {
        Self::build(smr, Acl::open(), RankBlend::default())
    }

    /// Recomputes every derived structure from the current SMR contents.
    /// Call after bulk loads; PageRank "scores need to be updated regularly
    /// as new metadata pages are continuously created".
    pub fn rebuild(&mut self) -> Result<()> {
        let _timing = obs::span("query_rebuild");
        // Shield the rebuild from any ambient request deadline: a half-built
        // index or rank vector must never escape, so write paths run to
        // completion regardless of the caller's budget.
        let _shield = resil::shield();
        obs::counter("query_rebuilds_total").inc();
        let (semantic, hyperlink, titles) = self.smr.link_graphs()?;
        let title_ids: HashMap<String, usize> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();

        // PageRank over the double linking structure.
        let pagerank: Vec<f64> = if titles.is_empty() {
            Vec::new()
        } else {
            let matrix =
                TransitionMatrix::double_link(&semantic, &hyperlink, self.blend.semantic_alpha);
            let problem = PageRankProblem::with_c(matrix, self.blend.c);
            let (solution, cached) = self.rank_cache.solve(&GaussSeidel, &problem, 1e-10, 1000);
            if cached {
                obs::counter("query_rebuild_rank_cached_total").inc();
            }
            let max = solution.x.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
            solution.x.iter().map(|v| v / max).collect()
        };

        // Full-text index + autocomplete + recommender incidence. Document
        // text assembly stays serial (SMR access, property interning); the
        // tokenize-heavy index construction then runs as one parallel batch.
        // Everything is built into locals and published wholesale below, so
        // a reader snapshot taken mid-rebuild still sees the old generation.
        let _index_timing = obs::span("search_index_build");
        let mut autocomplete = Autocomplete::new();
        let mut prop_ids: HashMap<String, u32> = HashMap::new();
        let mut prop_names: Vec<String> = Vec::new();
        let mut page_props: Vec<Vec<u32>> = vec![Vec::new(); titles.len()];
        let mut docs: Vec<(String, String)> = Vec::with_capacity(titles.len());
        for (i, title) in titles.iter().enumerate() {
            let page = self
                .smr
                .get_page(title)?
                .ok_or_else(|| QueryError::Internal(format!("page `{title}` vanished")))?;
            // Index title words, body, annotation values, and tags together.
            let mut text = format!("{} {}", page.title.replace([':', '_'], " "), page.body);
            for (a, v) in &page.annotations {
                text.push(' ');
                text.push_str(v);
                let id = match prop_ids.get(a) {
                    Some(&id) => id,
                    None => {
                        let id = prop_names.len() as u32;
                        prop_ids.insert(a.clone(), id);
                        prop_names.push(a.clone());
                        id
                    }
                };
                page_props[i].push(id);
            }
            for t in &page.tags {
                text.push(' ');
                text.push_str(t);
            }
            docs.push((title.clone(), text));
            autocomplete.insert(title, 1.0 + pagerank[i] * 10.0);
        }
        let index = SearchIndex::build(&docs);
        for (attr, count) in self.smr.attributes()? {
            autocomplete.insert(&attr, count as f64);
        }
        let mut suggester = SpellSuggester::new();
        for (term, df) in index.terms() {
            suggester.add(term, df);
        }
        let recommender = Recommender::new(page_props, pagerank.clone());

        // Publish the new generation: replace the Arcs; live snapshots keep
        // the ones they cloned.
        self.titles = Arc::new(titles);
        self.title_ids = Arc::new(title_ids);
        self.pagerank = Arc::new(pagerank);
        self.index = Arc::new(index);
        self.autocomplete = Arc::new(autocomplete);
        self.prop_names = Arc::new(prop_names);
        self.recommender = Arc::new(recommender);
        self.suggester = Arc::new(suggester);
        Ok(())
    }

    /// A cheap read-only clone for MVCC snapshot publication: shares the
    /// SMR's copy-on-write state (without its durability handle) and every
    /// derived structure by `Arc`, including the result cache — so a version
    /// published from this clone answers queries identically to `self` at
    /// the moment of the call, at the cost of a dozen refcount bumps.
    pub fn clone_reader(&self) -> QueryEngine {
        QueryEngine {
            smr: self.smr.clone_reader(),
            acl: self.acl.clone(),
            blend: self.blend,
            index: Arc::clone(&self.index),
            autocomplete: Arc::clone(&self.autocomplete),
            title_ids: Arc::clone(&self.title_ids),
            titles: Arc::clone(&self.titles),
            pagerank: Arc::clone(&self.pagerank),
            recommender: Arc::clone(&self.recommender),
            prop_names: Arc::clone(&self.prop_names),
            suggester: Arc::clone(&self.suggester),
            results: Arc::clone(&self.results),
            rank_cache: Arc::clone(&self.rank_cache),
        }
    }

    /// A shard view: this engine's global derived structures (index,
    /// PageRank, titles, recommender — everything ranking depends on) over a
    /// *partition* repository holding only the pages the shard owns. Shard
    /// views evaluate conditions and assemble results against their own
    /// store while scoring with collection-global statistics, which is what
    /// keeps scattered results byte-identical to the single-store path. The
    /// view gets a private result cache: its outputs are partial by design
    /// and must never serve whole-corpus cache hits.
    pub fn shard_view(&self, partition: Smr) -> QueryEngine {
        QueryEngine {
            smr: partition,
            results: Arc::new(result_cache()),
            ..self.clone_reader()
        }
    }

    /// Dense page id of a title (indexes `titles`, `pagerank`, index docs).
    pub fn dense_id(&self, title: &str) -> Option<usize> {
        self.title_ids.get(title).copied()
    }

    /// Number of indexed documents (= pages with a dense id).
    pub fn doc_count(&self) -> usize {
        self.titles.len()
    }

    /// Title of a dense page id, if in range.
    pub fn title_of(&self, id: usize) -> Option<&str> {
        self.titles.get(id).map(String::as_str)
    }

    /// Read access to the repository.
    pub fn smr(&self) -> &Smr {
        &self.smr
    }

    /// Mutable repository access. The caller must [`QueryEngine::rebuild`]
    /// afterwards (cheap for the demo corpus; incremental maintenance is a
    /// non-goal of the reproduction).
    pub fn smr_mut(&mut self) -> &mut Smr {
        &mut self.smr
    }

    /// Normalized PageRank of a page.
    pub fn pagerank_of(&self, title: &str) -> Option<f64> {
        self.title_ids.get(title).map(|&i| self.pagerank[i])
    }

    /// Top-k autocomplete suggestions. Prefix matches come from the trie;
    /// when they fall short of `k` and the input is at least one trigram
    /// long, mid-title matches are pulled in through the repository's
    /// trigram-indexed `ILIKE` query (so "wind" also surfaces
    /// "Deployment:wfj_wind_speed").
    pub fn autocomplete(&self, prefix: &str, k: usize) -> Vec<(String, f64)> {
        let mut out = self.autocomplete.complete(prefix, k);
        let clean = prefix.trim();
        if out.len() < k && clean.chars().count() >= 3 && !clean.contains(['%', '_']) {
            obs::counter("query_autocomplete_substring_total").inc();
            if let Ok(rs) = self.smr.sql(&format!(
                "SELECT title FROM pages WHERE title ILIKE '%{}%' ORDER BY title LIMIT {k}",
                sql_escape(clean)
            )) {
                for row in rs.rows {
                    let title = row[0].to_string();
                    // The trie reports lowercased entries; dedup accordingly.
                    if out.iter().any(|(t, _)| t.eq_ignore_ascii_case(&title)) {
                        continue;
                    }
                    let score = self.pagerank_of(&title).unwrap_or(0.0);
                    out.push((title, score));
                }
                out.truncate(k);
            }
        }
        out
    }

    /// Pages recommended for a set of seed titles (the paper's
    /// recommendation mechanism).
    pub fn recommend(&self, seeds: &[&str], k: usize) -> Vec<RecommendedPage> {
        let seed_ids: Vec<usize> = seeds
            .iter()
            .filter_map(|t| self.title_ids.get(*t).copied())
            .collect();
        self.recommender
            .recommend(&seed_ids, k)
            .into_iter()
            .map(|r| RecommendedPage {
                title: self.titles[r.page].clone(),
                score: r.score,
                shared_properties: r
                    .shared_properties
                    .iter()
                    .map(|&p| self.prop_names[p as usize].clone())
                    .collect(),
            })
            .collect()
    }

    /// Executes an advanced-search form for a user, through the result
    /// cache. Owned convenience wrapper over [`QueryEngine::search_shared`].
    pub fn search(&self, form: &SearchForm, user: Option<&str>) -> Result<QueryOutput> {
        let opts = SearchOptions {
            user,
            ..SearchOptions::default()
        };
        self.search_shared(form, &opts)
            .map(|(out, _)| (*out).clone())
    }

    /// Executes an advanced-search form through the result cache, returning
    /// the shared output plus how the lookup was answered. Identical
    /// concurrent queries coalesce onto one computation (bounded by
    /// `opts.deadline`); any mutation to the underlying stores invalidates
    /// via the epoch clock before the next lookup.
    pub fn search_shared(
        &self,
        form: &SearchForm,
        opts: &SearchOptions<'_>,
    ) -> Result<(Arc<QueryOutput>, Status)> {
        // Cheap validation stays outside the cache so an empty form is never
        // negatively cached (it is a client error, not a backend failure).
        if form.is_empty() {
            return Err(QueryError::EmptyForm);
        }
        // Install (tighten) the ambient deadline for everything below —
        // index scans, SQL/SPARQL evaluation, assembly, and the single-flight
        // wait all observe it.
        let _scope = resil::deadline_scope(opts.deadline);
        if opts.bypass {
            return Ok((
                Arc::new(self.search_uncached(form, opts.user)?),
                Status::Bypass,
            ));
        }
        // The key is generation-independent (form + user only): a pinned
        // snapshot validates entries against its own epoch vector instead,
        // so serve-stale degradation can still find the superseded entry
        // after a writer commits.
        let key = form_fingerprint(form, opts.user);
        // Blocking behind an identical in-flight query is bounded by both
        // the explicit wait and whatever remains of the request budget.
        let wait = match (opts.wait, resil::current_deadline().remaining()) {
            (Some(w), Some(r)) => Some(w.min(r)),
            (w, r) => w.or(r),
        };
        let (result, status) = match opts.at {
            None => self.results.get_or_compute_filtered(
                key,
                wait,
                || self.search_uncached(form, opts.user),
                QueryError::cacheable_failure,
            ),
            Some(stamp) => self.results.get_or_compute_filtered_at(
                key,
                stamp,
                wait,
                || self.search_uncached(form, opts.user),
                QueryError::cacheable_failure,
            ),
        };
        let err = match result {
            Ok(out) => return Ok((out, status)),
            Err(CacheError::Compute(e)) => e,
            Err(CacheError::Negative(msg)) => QueryError::Cached(msg.to_string()),
            Err(CacheError::WaitTimeout) => QueryError::CacheBusy,
        };
        // Serve-stale degradation: a backend failure (or expired budget) can
        // be answered from a superseded entry within the staleness grace
        // window. The `Degraded` status is the caller's obligation to label.
        if opts.stale_ok && err.degradable() {
            if let Some((out, _age)) = self.results.get_stale(key) {
                obs::counter("query_degraded_serves_total").inc();
                return Ok((out, Status::Degraded));
            }
        }
        Err(err)
    }

    /// Looks up the last known good result for a form without computing
    /// anything — the circuit-breaker-open path, where issuing fresh backend
    /// work is exactly what must not happen. Returns the superseded output
    /// and its age when one exists within the staleness grace window.
    pub fn search_stale(
        &self,
        form: &SearchForm,
        user: Option<&str>,
    ) -> Option<(Arc<QueryOutput>, Duration)> {
        let hit = self.results.get_stale(form_fingerprint(form, user));
        if hit.is_some() {
            obs::counter("query_degraded_serves_total").inc();
        }
        hit
    }

    /// Executes an advanced-search form without consulting or filling the
    /// result cache — the oracle the invalidation property tests compare
    /// cached reads against.
    ///
    /// Structured as scatter-gather over a single "shard" spanning the whole
    /// corpus: keyword scoring, condition evaluation, candidate assembly and
    /// final ranking are the same stages `crates/cluster` fans out across
    /// shard views, so the sharded path is byte-identical by construction.
    pub fn search_uncached(&self, form: &SearchForm, user: Option<&str>) -> Result<QueryOutput> {
        let _timing = obs::span("query_search");
        obs::counter("query_searches_total").inc();
        resil::checkpoint("query_search")?;
        if form.is_empty() {
            return Err(QueryError::EmptyForm);
        }
        // 1. Keyword candidates with BM25 scores (None = no keyword filter).
        let keyword_scores = self.keyword_score_map(form)?;

        // 2. Structured conditions: exact string equality runs as SPARQL
        //    against the RDF mirror; the rest (numeric, substring) as SQL
        //    against the annotation table — the paper's SQL+SPARQL
        //    combination. In hard (AND) mode the conditions are evaluated
        //    most-selective-first and later ones are semi-joined against the
        //    running intersection; see `eval_conditions`.
        let cond_matches = self.eval_conditions(form)?;

        // 3+4. Candidate assembly over the whole corpus, then 5+6. ranking.
        let partial =
            self.assemble_partial(form, user, keyword_scores.as_ref(), &cond_matches, None)?;
        self.finalize_partials(form, keyword_scores.as_ref(), vec![partial])
    }

    /// Stage 1 of search: the form's keyword hits as a dense-page-id → raw
    /// BM25 score map (`None` when the form has no keywords). Served through
    /// the index's shared query cache.
    pub fn keyword_score_map(&self, form: &SearchForm) -> Result<Option<HashMap<usize, f64>>> {
        if form.keywords.trim().is_empty() {
            return Ok(None);
        }
        let _ft = obs::span("query_fulltext");
        let hits = if form.match_all {
            self.index
                .try_search_all_terms_cached(&form.keywords, usize::MAX)?
                .0
        } else {
            self.index.try_search_cached(&form.keywords, usize::MAX)?.0
        };
        Ok(Some(self.scores_from_hits(&hits)))
    }

    /// The form's keyword hits restricted to a contiguous document range of
    /// the shared index — the scatter half of stage 1. Scores use global
    /// collection statistics (see [`SearchIndex::try_search_range`]), so
    /// hits merged across disjoint ranges covering the corpus equal the
    /// unrestricted [`QueryEngine::keyword_score_map`] input.
    pub fn keyword_hits_range(
        &self,
        form: &SearchForm,
        range: std::ops::Range<usize>,
    ) -> Result<Option<Vec<Hit>>> {
        if form.keywords.trim().is_empty() {
            return Ok(None);
        }
        let _ft = obs::span("query_fulltext");
        let hits = if form.match_all {
            self.index
                .try_search_all_terms_range(&form.keywords, usize::MAX, range)?
        } else {
            self.index
                .try_search_range(&form.keywords, usize::MAX, range)?
        };
        Ok(Some(hits))
    }

    /// Projects search hits onto dense page ids (hits whose key is not a
    /// known page title are dropped, as in the single-store path).
    pub fn scores_from_hits(&self, hits: &[Hit]) -> HashMap<usize, f64> {
        hits.iter()
            .filter_map(|h| self.title_ids.get(&h.key).map(|&i| (i, h.score)))
            .collect()
    }

    /// Stages 3–4 of search: assembles raw result rows for the candidate
    /// pages this engine can see, optionally restricted to an owned subset
    /// of dense page ids (`keep`) — the per-shard half of a scattered
    /// search. Returned BM25 values are *raw* and scores unblended;
    /// [`QueryEngine::finalize_partials`] normalizes against the global
    /// maximum so per-shard assembly cannot skew ranking.
    pub fn assemble_partial(
        &self,
        form: &SearchForm,
        user: Option<&str>,
        keyword_scores: Option<&HashMap<usize, f64>>,
        cond_matches: &[HashSet<usize>],
        keep: Option<&HashSet<usize>>,
    ) -> Result<ShardPartial> {
        let _combine = obs::span("query_combine");
        let candidates: Vec<usize> = match keyword_scores {
            Some(scores) => scores.keys().copied().collect(),
            None => (0..self.titles.len()).collect(),
        };
        let mut matched: Vec<(usize, f64)> = Vec::new(); // (page, match_degree)
        for page in candidates {
            if keep.is_some_and(|owned| !owned.contains(&page)) {
                continue;
            }
            let degree = if cond_matches.is_empty() {
                1.0
            } else {
                let hit = cond_matches.iter().filter(|s| s.contains(&page)).count();
                hit as f64 / cond_matches.len() as f64
            };
            let keep_page = if form.soft_conditions {
                cond_matches.is_empty() || degree > 0.0
            } else {
                degree >= 1.0
            };
            if keep_page {
                matched.push((page, degree));
            }
        }

        // ACL + namespace filter (needs page rows).
        let mut out = ShardPartial::default();
        for (assembled, (page_id, degree)) in matched.into_iter().enumerate() {
            if assembled % 64 == 0 {
                resil::checkpoint("query_assemble")?;
            }
            let title = &self.titles[page_id];
            let page = self
                .smr
                .get_page(title)?
                .ok_or_else(|| QueryError::Internal(format!("page `{title}` vanished")))?;
            if !self.acl.can_read(user, &page.namespace) {
                continue;
            }
            if let Some(ns) = &form.namespace {
                if !page.namespace.eq_ignore_ascii_case(ns) {
                    continue;
                }
            }
            let bm25_raw = keyword_scores
                .and_then(|s| s.get(&page_id).copied())
                .unwrap_or(0.0);
            let pr = self.pagerank[page_id];
            for (a, v) in &page.annotations {
                *out.facets.entry((a.clone(), v.clone())).or_insert(0) += 1;
            }
            let coords = extract_coords(&page.annotations);
            if let Some((lat_min, lat_max, lon_min, lon_max)) = form.region {
                // Map-based browsing: only geolocated pages inside the box.
                let Some((lat, lon)) = coords else {
                    continue;
                };
                if !(lat_min..=lat_max).contains(&lat) || !(lon_min..=lon_max).contains(&lon) {
                    continue;
                }
            }
            out.items.push((
                ResultItem {
                    title: page.title.clone(),
                    namespace: page.namespace.clone(),
                    score: 0.0,     // blended in finalize_partials
                    bm25: bm25_raw, // raw until normalized in finalize_partials
                    pagerank: pr,
                    match_degree: degree,
                    snippet: snippet(&page.body, &form.keywords),
                    coords,
                },
                page,
            ));
        }
        Ok(out)
    }

    /// Stages 5–6 of search: normalizes and blends scores across every
    /// partial, sorts, truncates, and attaches facets, recommendations and
    /// spelling suggestions. `keyword_scores` must be the *global* score map
    /// (all shards), so BM25 normalization matches the single-store path
    /// regardless of how assembly was partitioned.
    pub fn finalize_partials(
        &self,
        form: &SearchForm,
        keyword_scores: Option<&HashMap<usize, f64>>,
        partials: Vec<ShardPartial>,
    ) -> Result<QueryOutput> {
        let _merge = obs::span("query_finalize");
        let bm25_max = keyword_scores
            .map(|s| s.values().copied().fold(f64::MIN_POSITIVE, f64::max))
            .unwrap_or(1.0);
        let mut items: Vec<(ResultItem, Page)> = Vec::new();
        let mut facet_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for partial in partials {
            for ((attribute, value), count) in partial.facets {
                *facet_counts.entry((attribute, value)).or_insert(0) += count;
            }
            for (mut item, page) in partial.items {
                item.bm25 /= bm25_max;
                item.score = if keyword_scores.is_some() {
                    (1.0 - self.blend.pagerank_weight) * item.bm25
                        + self.blend.pagerank_weight * item.pagerank
                } else {
                    item.pagerank
                };
                items.push((item, page));
            }
        }

        // Sort.
        match &form.sort_by {
            SortBy::Relevance => {
                items.sort_by(|a, b| cmp_f64(b.0.score, a.0.score).then(a.0.title.cmp(&b.0.title)))
            }
            SortBy::PageRank => items.sort_by(|a, b| {
                cmp_f64(b.0.pagerank, a.0.pagerank).then(a.0.title.cmp(&b.0.title))
            }),
            SortBy::Title => items.sort_by(|a, b| a.0.title.cmp(&b.0.title)),
            SortBy::Attribute(attr) => {
                items.sort_by(|a, b| {
                    let va = annotation_value(&a.1.annotations, attr);
                    let vb = annotation_value(&b.1.annotations, attr);
                    cmp_annotation(va, vb).then(a.0.title.cmp(&b.0.title))
                });
            }
        }
        // `descending` flips the sort key's natural order (best-first for
        // Relevance/PageRank, ascending for Title/Attribute).
        if form.descending {
            items.reverse();
        }

        let total_matched = items.len();
        let limit = form.effective_limit();
        let top: Vec<ResultItem> = items.into_iter().map(|(i, _)| i).take(limit).collect();

        // Recommendations from the top results.
        let seeds: Vec<&str> = top.iter().take(5).map(|i| i.title.as_str()).collect();
        let seed_set: HashSet<&str> = top.iter().map(|i| i.title.as_str()).collect();
        let recommendations = self
            .recommend(&seeds, 8)
            .into_iter()
            .filter(|r| !seed_set.contains(r.title.as_str()))
            .take(5)
            .collect();

        let facets = facet_counts
            .into_iter()
            .map(|((attribute, value), count)| FacetCount {
                attribute,
                value,
                count,
            })
            .collect();

        // "Did you mean": only when keywords were given and nothing matched.
        let did_you_mean = if total_matched == 0 && !form.keywords.trim().is_empty() {
            self.suggester.suggest_query(&form.keywords, 2)
        } else {
            None
        };

        Ok(QueryOutput {
            items: top,
            total_matched,
            facets,
            recommendations,
            did_you_mean,
        })
    }

    /// Drops every cached result this engine holds: combined query outputs,
    /// the index's query cache, and memoized PageRank vectors.
    pub fn clear_caches(&self) {
        self.results.clear();
        self.index.clear_cache();
        self.rank_cache.clear();
    }

    /// Statistics of the combined-result cache.
    pub fn result_cache_stats(&self) -> sensormeta_cache::CacheStats {
        self.results.stats()
    }

    /// Evaluates the form's structured conditions to per-condition match
    /// sets (indexed like `form.conditions`).
    ///
    /// Soft (OR-ish) mode needs every condition's full match set for the
    /// match-degree computation, so each is evaluated independently. Hard
    /// (AND) mode only keeps pages matching *all* conditions, which admits
    /// cross-engine pushdown: conditions run most-selective-first (by the
    /// relstore planner's estimate of annotation rows per attribute), each
    /// later condition's SQL is semi-joined against the running intersection
    /// when it is small, and once the intersection is empty the remaining
    /// conditions are not evaluated at all. Restricted sets are subsets of
    /// the full ones containing every page that matches all conditions, so
    /// the surviving set — and therefore the output — is unchanged.
    fn eval_conditions(&self, form: &SearchForm) -> Result<Vec<HashSet<usize>>> {
        if form.soft_conditions || form.conditions.len() < 2 {
            return form
                .conditions
                .iter()
                .map(|c| self.eval_condition(c, None))
                .collect();
        }
        // Selectivity estimate per condition: annotation rows carrying the
        // attribute (exact B-tree count via `annotations_attr`).
        let est: Vec<usize> = form
            .conditions
            .iter()
            .map(|c| {
                self.smr
                    .database()
                    .estimate_eq(
                        "annotations",
                        "attribute",
                        &sensormeta_relstore::Value::text(c.attribute.clone()),
                    )
                    .unwrap_or(usize::MAX)
            })
            .collect();
        let mut order: Vec<usize> = (0..form.conditions.len()).collect();
        order.sort_by_key(|&i| est[i]);
        if order.windows(2).any(|w| w[0] > w[1]) {
            obs::counter("query_pushdown_reordered_total").inc();
        }
        let mut sets: Vec<Option<HashSet<usize>>> = vec![None; form.conditions.len()];
        let mut current: Option<HashSet<usize>> = None;
        for &i in &order {
            if current.as_ref().is_some_and(HashSet::is_empty) {
                // Hard mode already ruled every page out; the remaining
                // conditions cannot resurrect anything.
                sets[i] = Some(HashSet::new());
                continue;
            }
            let restrict = current
                .as_ref()
                .filter(|c| c.len() <= SEMIJOIN_PUSHDOWN_CAP);
            if restrict.is_some() {
                obs::counter("query_pushdown_semijoin_total").inc();
            }
            let s = self.eval_condition(&form.conditions[i], restrict)?;
            current = Some(match current.take() {
                None => s.clone(),
                Some(c) => c.intersection(&s).copied().collect(),
            });
            sets[i] = Some(s);
        }
        Ok(sets.into_iter().map(Option::unwrap_or_default).collect())
    }

    /// Evaluates one condition to the set of matching page ids. `restrict`
    /// narrows the SQL fallback to a candidate page set (semi-join pushdown);
    /// the SPARQL path stays unrestricted so its exact-match-first semantics
    /// are preserved.
    fn eval_condition(
        &self,
        cond: &Condition,
        restrict: Option<&HashSet<usize>>,
    ) -> Result<HashSet<usize>> {
        let titles: Vec<String> = if cond.op == CondOp::Eq {
            let out = self.sparql_condition_titles(cond)?;
            // SPARQL matched the exact lexical form; Eq is declared
            // case-insensitive, so complete with a SQL pass when needed.
            if out.is_empty() {
                self.sql_condition(cond, restrict)?
            } else {
                out
            }
        } else {
            self.sql_condition(cond, restrict)?
        };
        Ok(self.resolve_title_set(titles))
    }

    /// SPARQL half of an `Eq` condition: exact literal match on the mirrored
    /// property, returning matching page titles from *this engine's* store.
    /// Exposed for scattered condition evaluation, where each shard view
    /// runs this over its partition and the caller unions the titles —
    /// crucially making the empty-result SQL-fallback decision on the
    /// *global* union, as the single-store path does.
    pub fn sparql_condition_titles(&self, cond: &Condition) -> Result<Vec<String>> {
        let _sparql = obs::span("query_sparql");
        obs::counter("query_sparql_conditions_total").inc();
        resil::checkpoint("query_sparql")?;
        let q = format!(
            "PREFIX prop: <http://swiss-experiment.ch/property/> \
             SELECT ?t WHERE {{ ?page prop:{} \"{}\" . ?page prop:title ?t }}",
            cond.attribute.replace(' ', "_"),
            cond.value.replace('\\', "\\\\").replace('"', "\\\"")
        );
        let sols = self.smr.sparql(&q)?;
        Ok(sols
            .rows
            .iter()
            .filter_map(|r| {
                r[0].as_ref()
                    .and_then(|t| t.literal_value())
                    .map(str::to_owned)
            })
            .collect())
    }

    /// SQL half of a condition, unrestricted — the scatter primitive paired
    /// with [`QueryEngine::sparql_condition_titles`].
    pub fn sql_condition_titles(&self, cond: &Condition) -> Result<Vec<String>> {
        self.sql_condition(cond, None)
    }

    /// Maps page titles onto the dense-id space shared by every shard view
    /// (unknown titles are dropped).
    pub fn resolve_title_set(&self, titles: impl IntoIterator<Item = String>) -> HashSet<usize> {
        titles
            .into_iter()
            .filter_map(|t| self.title_ids.get(&t).copied())
            .collect()
    }

    /// SQL fallback: fetch all values of the attribute and filter in Rust
    /// (numeric ops can't be pushed into our SQL subset portably). With
    /// `restrict`, only candidate pages' annotations are fetched — the
    /// semi-join half of cross-engine pushdown.
    fn sql_condition(
        &self,
        cond: &Condition,
        restrict: Option<&HashSet<usize>>,
    ) -> Result<Vec<String>> {
        let _sql = obs::span("query_sql");
        obs::counter("query_sql_conditions_total").inc();
        resil::checkpoint("query_sql")?;
        let mut query = format!(
            "SELECT p.title, a.value FROM annotations a JOIN pages p ON a.page_id = p.id \
             WHERE a.attribute = '{}'",
            sql_escape(&cond.attribute)
        );
        if let Some(pages) = restrict {
            if pages.is_empty() {
                return Ok(Vec::new());
            }
            let titles: Vec<String> = pages
                .iter()
                .map(|&p| format!("'{}'", sql_escape(&self.titles[p])))
                .collect();
            query.push_str(&format!(" AND p.title IN ({})", titles.join(", ")));
        }
        let rs = self.smr.sql(&query)?;
        Ok(rs
            .rows
            .into_iter()
            .filter(|r| cond.matches(&r[1].to_string()))
            .map(|r| r[0].to_string())
            .collect())
    }
}

/// Stable 64-bit key of (form, user): every field that affects the output
/// feeds the fingerprint, so logically identical requests collide onto one
/// entry and any difference separates them.
fn form_fingerprint(form: &SearchForm, user: Option<&str>) -> u64 {
    let mut fp = Fingerprint::new()
        .opt_str(user)
        .str(&form.keywords)
        .usize(form.conditions.len());
    for c in &form.conditions {
        fp = fp
            .str(&c.attribute)
            .u64(match c.op {
                CondOp::Eq => 0,
                CondOp::Contains => 1,
                CondOp::Gt => 2,
                CondOp::Lt => 3,
                CondOp::Between => 4,
            })
            .str(&c.value);
    }
    fp = fp.opt_str(form.namespace.as_deref());
    fp = match &form.sort_by {
        SortBy::Relevance => fp.u64(0),
        SortBy::PageRank => fp.u64(1),
        SortBy::Title => fp.u64(2),
        SortBy::Attribute(attr) => fp.u64(3).str(attr),
    };
    fp = fp
        .bool(form.descending)
        .usize(form.limit)
        .bool(form.match_all)
        .bool(form.soft_conditions);
    fp = match form.region {
        None => fp.bool(false),
        Some((a, b, c, d)) => fp.bool(true).f64(a).f64(b).f64(c).f64(d),
    };
    fp.finish()
}

fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

fn annotation_value<'a>(annotations: &'a [(String, String)], attr: &str) -> Option<&'a str> {
    annotations
        .iter()
        .find(|(a, _)| a.eq_ignore_ascii_case(attr))
        .map(|(_, v)| v.as_str())
}

fn cmp_annotation(a: Option<&str>, b: Option<&str>) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Greater, // missing sorts last
        (Some(_), None) => std::cmp::Ordering::Less,
        (Some(x), Some(y)) => match (x.parse::<f64>(), y.parse::<f64>()) {
            (Ok(nx), Ok(ny)) => cmp_f64(nx, ny),
            _ => x.cmp(y),
        },
    }
}

fn extract_coords(annotations: &[(String, String)]) -> Option<(f64, f64)> {
    let lat = annotation_value(annotations, "hasLatitude")?.parse().ok()?;
    let lon = annotation_value(annotations, "hasLongitude")?
        .parse()
        .ok()?;
    Some((lat, lon))
}

/// Builds a ~140-char snippet centered on the first keyword occurrence.
fn snippet(body: &str, keywords: &str) -> String {
    const WINDOW: usize = 140;
    if body.is_empty() {
        return String::new();
    }
    let lower = body.to_lowercase();
    let hit = keywords
        .split_whitespace()
        .filter_map(|k| lower.find(&k.to_lowercase()))
        .min();
    let chars: Vec<char> = body.chars().collect();
    let center_byte = hit.unwrap_or(0);
    // Convert byte offset to char offset safely.
    let center = body[..center_byte.min(body.len())].chars().count();
    let start = center.saturating_sub(WINDOW / 4);
    let slice: String = chars.iter().skip(start).take(WINDOW).collect();
    let mut out = String::new();
    if start > 0 {
        out.push('…');
    }
    out.push_str(slice.trim());
    if start + WINDOW < chars.len() {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_centers_on_keyword() {
        let body = format!("{} temperature sensor {}", "x".repeat(200), "y".repeat(200));
        let s = snippet(&body, "temperature");
        assert!(s.contains("temperature"));
        assert!(s.starts_with('…') && s.ends_with('…'));
        assert!(s.chars().count() <= 144);
    }

    #[test]
    fn snippet_without_hit_takes_prefix() {
        let s = snippet("short body text", "zzz");
        assert_eq!(s, "short body text");
    }

    #[test]
    fn coords_extraction() {
        let ann = vec![
            ("hasLatitude".to_string(), "46.8".to_string()),
            ("hasLongitude".to_string(), "9.8".to_string()),
        ];
        assert_eq!(extract_coords(&ann), Some((46.8, 9.8)));
        assert_eq!(extract_coords(&ann[..1]), None);
        let bad = vec![
            ("hasLatitude".to_string(), "north".to_string()),
            ("hasLongitude".to_string(), "9.8".to_string()),
        ];
        assert_eq!(extract_coords(&bad), None);
    }

    #[test]
    fn annotation_sort_numeric_before_text() {
        assert_eq!(
            cmp_annotation(Some("9"), Some("10")),
            std::cmp::Ordering::Less,
            "numeric comparison, not lexicographic"
        );
        assert_eq!(cmp_annotation(None, Some("x")), std::cmp::Ordering::Greater);
    }
}
