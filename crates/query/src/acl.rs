//! Access control: "the Query Interface module takes user's inputs for
//! queries within their privileges, since a user may not have a full access
//! to the whole metadata."
//!
//! The model matches a wiki deployment: users belong to groups, groups are
//! granted read access per namespace, and an anonymous user gets whatever
//! the `public` group can see.

use std::collections::{BTreeMap, BTreeSet};

/// Access-control registry.
#[derive(Debug, Default, Clone)]
pub struct Acl {
    /// group → namespaces readable (`*` = everything).
    grants: BTreeMap<String, BTreeSet<String>>,
    /// user → groups.
    memberships: BTreeMap<String, BTreeSet<String>>,
}

/// The group every unauthenticated request maps to.
pub const PUBLIC_GROUP: &str = "public";

impl Acl {
    /// Empty ACL: nothing readable by anyone.
    pub fn new() -> Acl {
        Acl::default()
    }

    /// An open ACL where the public group reads everything — the demo
    /// default.
    pub fn open() -> Acl {
        let mut acl = Acl::new();
        acl.grant(PUBLIC_GROUP, "*");
        acl
    }

    /// Grants a group read access to a namespace (`*` for all).
    pub fn grant(&mut self, group: &str, namespace: &str) {
        self.grants
            .entry(group.to_owned())
            .or_default()
            .insert(namespace.to_owned());
    }

    /// Revokes a grant. Returns true if it existed.
    pub fn revoke(&mut self, group: &str, namespace: &str) -> bool {
        self.grants
            .get_mut(group)
            .is_some_and(|s| s.remove(namespace))
    }

    /// Adds a user to a group.
    pub fn add_member(&mut self, user: &str, group: &str) {
        self.memberships
            .entry(user.to_owned())
            .or_default()
            .insert(group.to_owned());
    }

    /// Groups of a user, always including `public`.
    fn groups_of(&self, user: Option<&str>) -> BTreeSet<&str> {
        let mut groups: BTreeSet<&str> = BTreeSet::from([PUBLIC_GROUP]);
        if let Some(u) = user {
            if let Some(gs) = self.memberships.get(u) {
                groups.extend(gs.iter().map(String::as_str));
            }
        }
        groups
    }

    /// Can `user` (None = anonymous) read pages in `namespace`?
    pub fn can_read(&self, user: Option<&str>, namespace: &str) -> bool {
        self.groups_of(user).iter().any(|g| {
            self.grants
                .get(*g)
                .is_some_and(|ns| ns.contains("*") || ns.contains(namespace))
        })
    }

    /// Namespaces a user can read out of `all` (convenience for building
    /// namespace drop-downs limited to the user's privileges).
    pub fn readable<'a>(&self, user: Option<&str>, all: &'a [String]) -> Vec<&'a str> {
        all.iter()
            .map(String::as_str)
            .filter(|ns| self.can_read(user, ns))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acl() -> Acl {
        let mut acl = Acl::new();
        acl.grant(PUBLIC_GROUP, "Fieldsite");
        acl.grant("researchers", "Deployment");
        acl.grant("admins", "*");
        acl.add_member("alice", "researchers");
        acl.add_member("root", "admins");
        acl
    }

    #[test]
    fn anonymous_reads_public_only() {
        let acl = acl();
        assert!(acl.can_read(None, "Fieldsite"));
        assert!(!acl.can_read(None, "Deployment"));
    }

    #[test]
    fn members_inherit_public_plus_group() {
        let acl = acl();
        assert!(acl.can_read(Some("alice"), "Fieldsite"));
        assert!(acl.can_read(Some("alice"), "Deployment"));
        assert!(!acl.can_read(Some("alice"), "Internal"));
    }

    #[test]
    fn wildcard_grants_everything() {
        let acl = acl();
        assert!(acl.can_read(Some("root"), "Internal"));
        assert!(acl.can_read(Some("root"), "Deployment"));
    }

    #[test]
    fn unknown_user_is_anonymous() {
        let acl = acl();
        assert!(!acl.can_read(Some("mallory"), "Deployment"));
        assert!(acl.can_read(Some("mallory"), "Fieldsite"));
    }

    #[test]
    fn revoke_removes_access() {
        let mut acl = acl();
        assert!(acl.revoke(PUBLIC_GROUP, "Fieldsite"));
        assert!(!acl.can_read(None, "Fieldsite"));
        assert!(!acl.revoke(PUBLIC_GROUP, "Fieldsite"));
    }

    #[test]
    fn readable_filters_list() {
        let acl = acl();
        let all = vec![
            "Fieldsite".to_string(),
            "Deployment".to_string(),
            "Internal".to_string(),
        ];
        assert_eq!(acl.readable(None, &all), vec!["Fieldsite"]);
        assert_eq!(
            acl.readable(Some("alice"), &all),
            vec!["Fieldsite", "Deployment"]
        );
        assert_eq!(acl.readable(Some("root"), &all).len(), 3);
    }

    #[test]
    fn open_acl_reads_all() {
        let acl = Acl::open();
        assert!(acl.can_read(None, "Anything"));
    }
}
