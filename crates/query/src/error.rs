//! Query-layer errors.

use std::fmt;

/// Errors from the query engine.
#[derive(Debug)]
pub enum QueryError {
    /// The form expressed no constraint.
    EmptyForm,
    /// Repository error.
    Smr(sensormeta_smr::SmrError),
    /// Internal invariant broken.
    Internal(String),
    /// A negatively cached failure was replayed without recomputing; the
    /// message of the original error.
    Cached(String),
    /// The wait for an identical in-flight query exceeded the configured
    /// deadline (servers map this to `503` + `Retry-After`).
    CacheBusy,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyForm => write!(f, "the search form is empty"),
            QueryError::Smr(e) => write!(f, "repository error: {e}"),
            QueryError::Internal(m) => write!(f, "internal error: {m}"),
            QueryError::Cached(m) => write!(f, "{m} (cached failure)"),
            QueryError::CacheBusy => {
                write!(f, "an identical query is already computing; retry shortly")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Smr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sensormeta_smr::SmrError> for QueryError {
    fn from(e: sensormeta_smr::SmrError) -> Self {
        QueryError::Smr(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
