//! Query-layer errors.

use std::fmt;

/// Errors from the query engine.
#[derive(Debug)]
pub enum QueryError {
    /// The form expressed no constraint.
    EmptyForm,
    /// Repository error.
    Smr(sensormeta_smr::SmrError),
    /// Internal invariant broken.
    Internal(String),
    /// A negatively cached failure was replayed without recomputing; the
    /// message of the original error.
    Cached(String),
    /// The wait for an identical in-flight query exceeded the configured
    /// deadline (servers map this to `503` + `Retry-After`).
    CacheBusy,
    /// The request's end-to-end deadline expired mid-execution (servers map
    /// this to `504`, or serve a labeled stale result when permitted).
    DeadlineExceeded,
    /// A chaos fault was injected at the named site (testing only; treated
    /// like a transient backend failure).
    Injected(&'static str),
}

impl QueryError {
    /// Whether this failure is a property of the query itself and therefore
    /// worth negative-caching. Deadline expiries and injected faults are the
    /// *caller's* circumstance — caching them would poison the key for later
    /// callers with budget to spare.
    pub fn cacheable_failure(&self) -> bool {
        !matches!(
            self,
            QueryError::DeadlineExceeded | QueryError::Injected(_) | QueryError::CacheBusy
        )
    }

    /// Whether serving a stale cached result instead of this error is an
    /// acceptable degradation. Client errors (an empty form) are not: the
    /// request would fail no matter how healthy the backend is.
    pub fn degradable(&self) -> bool {
        !matches!(self, QueryError::EmptyForm)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyForm => write!(f, "the search form is empty"),
            QueryError::Smr(e) => write!(f, "repository error: {e}"),
            QueryError::Internal(m) => write!(f, "internal error: {m}"),
            QueryError::Cached(m) => write!(f, "{m} (cached failure)"),
            QueryError::CacheBusy => {
                write!(f, "an identical query is already computing; retry shortly")
            }
            QueryError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            QueryError::Injected(site) => write!(f, "injected fault at site `{site}`"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Smr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sensormeta_smr::SmrError> for QueryError {
    fn from(e: sensormeta_smr::SmrError) -> Self {
        QueryError::Smr(e)
    }
}

impl From<sensormeta_resil::Interrupt> for QueryError {
    fn from(i: sensormeta_resil::Interrupt) -> Self {
        match i {
            sensormeta_resil::Interrupt::DeadlineExceeded => QueryError::DeadlineExceeded,
            sensormeta_resil::Interrupt::Fault { site } => QueryError::Injected(site),
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
