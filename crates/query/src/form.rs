//! The advanced-search form model.
//!
//! Mirrors the paper's query interface: free keyword search plus structured
//! conditions over semantic attributes, namespace scoping, sort controls
//! ("basic search options (e.g., keyword, sort by, order by)"), and paging.

use serde::{Deserialize, Serialize};

/// Comparison operator of one attribute condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CondOp {
    /// Exact (case-insensitive) value equality.
    Eq,
    /// Value contains the given substring.
    Contains,
    /// Numeric greater-than.
    Gt,
    /// Numeric less-than.
    Lt,
    /// Numeric inclusive range; `value` holds `"lo..hi"`.
    Between,
}

/// One structured condition over a semantic attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Attribute name (e.g. `hasElevation`).
    pub attribute: String,
    /// Operator.
    pub op: CondOp,
    /// Comparison value (numeric ops parse it as f64).
    pub value: String,
}

impl Condition {
    /// Convenience constructor.
    pub fn new(attribute: impl Into<String>, op: CondOp, value: impl Into<String>) -> Condition {
        Condition {
            attribute: attribute.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the condition against one annotation value.
    pub fn matches(&self, value: &str) -> bool {
        match self.op {
            CondOp::Eq => value.eq_ignore_ascii_case(&self.value),
            CondOp::Contains => value.to_lowercase().contains(&self.value.to_lowercase()),
            CondOp::Gt => match (value.parse::<f64>(), self.value.parse::<f64>()) {
                (Ok(a), Ok(b)) => a > b,
                _ => false,
            },
            CondOp::Lt => match (value.parse::<f64>(), self.value.parse::<f64>()) {
                (Ok(a), Ok(b)) => a < b,
                _ => false,
            },
            CondOp::Between => {
                let Some((lo, hi)) = self.value.split_once("..") else {
                    return false;
                };
                match (
                    value.parse::<f64>(),
                    lo.trim().parse::<f64>(),
                    hi.trim().parse::<f64>(),
                ) {
                    (Ok(v), Ok(lo), Ok(hi)) => v >= lo && v <= hi,
                    _ => false,
                }
            }
        }
    }
}

/// Result ordering.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SortBy {
    /// Blended relevance (BM25 × PageRank) — the system's ranking metric.
    #[default]
    Relevance,
    /// Pure PageRank authority.
    PageRank,
    /// Page title.
    Title,
    /// A semantic attribute's value (numeric when parseable).
    Attribute(String),
}

/// The full advanced-search request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchForm {
    /// Free-text keywords (empty = structured-only query).
    #[serde(default)]
    pub keywords: String,
    /// Structured attribute conditions (AND semantics).
    #[serde(default)]
    pub conditions: Vec<Condition>,
    /// Restrict to one namespace (None = all readable).
    #[serde(default)]
    pub namespace: Option<String>,
    /// Sort key.
    #[serde(default)]
    pub sort_by: SortBy,
    /// Descending order?
    #[serde(default)]
    pub descending: bool,
    /// Maximum results (0 = default 50).
    #[serde(default)]
    pub limit: usize,
    /// Require all keywords (conjunctive) instead of any.
    #[serde(default)]
    pub match_all: bool,
    /// Geographic bounding box `(lat_min, lat_max, lon_min, lon_max)`:
    /// map-based browsing restricts results to geolocated pages inside it.
    #[serde(default)]
    pub region: Option<(f64, f64, f64, f64)>,
    /// When true, conditions are soft join predicates: pages matching at
    /// least one are kept and their *degree of matching* (fraction of
    /// conditions satisfied) is reported — the quantity the map view colors
    /// by. When false (default), conditions are a hard AND filter.
    #[serde(default)]
    pub soft_conditions: bool,
}

impl SearchForm {
    /// A keyword-only form.
    pub fn keywords(q: impl Into<String>) -> SearchForm {
        SearchForm {
            keywords: q.into(),
            ..SearchForm::default()
        }
    }

    /// Adds a condition (builder style).
    pub fn condition(mut self, c: Condition) -> SearchForm {
        self.conditions.push(c);
        self
    }

    /// Effective limit.
    pub fn effective_limit(&self) -> usize {
        if self.limit == 0 {
            50
        } else {
            self.limit
        }
    }

    /// True when the form expresses no constraint at all.
    pub fn is_empty(&self) -> bool {
        self.keywords.trim().is_empty()
            && self.conditions.is_empty()
            && self.namespace.is_none()
            && self.region.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_ops() {
        assert!(Condition::new("a", CondOp::Eq, "Temperature").matches("temperature"));
        assert!(Condition::new("a", CondOp::Contains, "emp").matches("Temperature"));
        assert!(Condition::new("a", CondOp::Gt, "2000").matches("2693"));
        assert!(!Condition::new("a", CondOp::Gt, "3000").matches("2693"));
        assert!(Condition::new("a", CondOp::Lt, "3000").matches("2693"));
        assert!(Condition::new("a", CondOp::Between, "1000..3000").matches("2693"));
        assert!(!Condition::new("a", CondOp::Between, "1000..2000").matches("2693"));
    }

    #[test]
    fn non_numeric_comparisons_fail_closed() {
        assert!(!Condition::new("a", CondOp::Gt, "10").matches("abc"));
        assert!(!Condition::new("a", CondOp::Between, "junk").matches("5"));
        assert!(!Condition::new("a", CondOp::Between, "1..x").matches("5"));
    }

    #[test]
    fn form_defaults() {
        let f = SearchForm::keywords("snow");
        assert_eq!(f.effective_limit(), 50);
        assert!(!f.is_empty());
        assert!(SearchForm::default().is_empty());
        assert_eq!(f.sort_by, SortBy::Relevance);
    }

    #[test]
    fn form_serde_roundtrip() {
        let f = SearchForm::keywords("snow").condition(Condition::new(
            "hasElevation",
            CondOp::Gt,
            "2000",
        ));
        let json = serde_json::to_string(&f).unwrap();
        let back: SearchForm = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn form_deserializes_with_missing_fields() {
        let f: SearchForm = serde_json::from_str(r#"{"keywords": "wind"}"#).unwrap();
        assert_eq!(f.keywords, "wind");
        assert!(f.conditions.is_empty());
    }
}
