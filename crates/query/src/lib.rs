//! # sensormeta-query
//!
//! The Query Management module of the paper's architecture (Fig. 1): the
//! advanced-search form model, privilege enforcement, combined SQL, SPARQL
//! and full-text execution over the SMR, PageRank-blended ranking (solved
//! with Gauss-Seidel over the double-link structure), faceting, and the
//! recommendation mechanism.
//!
//! ```
//! use sensormeta_query::{QueryEngine, SearchForm};
//! use sensormeta_smr::{PageDraft, Smr};
//!
//! let mut smr = Smr::new();
//! smr.create_page(PageDraft::new("Deployment:wfj", "Deployment")
//!     .body("temperature sensor")).unwrap();
//! let engine = QueryEngine::open(smr).unwrap();
//! let out = engine.search(&SearchForm::keywords("temperature"), None).unwrap();
//! assert_eq!(out.items[0].title, "Deployment:wfj");
//! ```

#![warn(missing_docs)]

pub mod acl;
pub mod engine;
pub mod error;
pub mod form;
pub mod result;

pub use acl::{Acl, PUBLIC_GROUP};
pub use engine::{QueryEngine, RankBlend, SearchOptions, ShardPartial};
pub use error::{QueryError, Result};
pub use form::{CondOp, Condition, SearchForm, SortBy};
pub use result::{FacetCount, QueryOutput, RecommendedPage, ResultItem};
