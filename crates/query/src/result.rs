//! Typed query results for visualization dispatch.
//!
//! The system "presents search results in various manners, according to the
//! types of query results" — the output carries everything each renderer
//! needs: scores for tables, coordinates for maps, facets for bar/pie
//! diagrams, and recommendations.

use serde::{Deserialize, Serialize};

/// One ranked result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultItem {
    /// Page title.
    pub title: String,
    /// Namespace.
    pub namespace: String,
    /// Final blended score the list is ordered by.
    pub score: f64,
    /// Full-text (BM25) component, normalized to `[0, 1]` within this result
    /// set; 0 when the query had no keywords.
    pub bm25: f64,
    /// PageRank component, normalized to `[0, 1]` over the whole corpus.
    pub pagerank: f64,
    /// Fraction of the form's conditions this page satisfies (1.0 when the
    /// form had none) — drives map match-degree coloring.
    pub match_degree: f64,
    /// Body snippet around the first keyword occurrence.
    pub snippet: String,
    /// WGS84 position when the page carries hasLatitude/hasLongitude.
    pub coords: Option<(f64, f64)>,
}

/// One facet value count (serializable mirror of the search crate's facets).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FacetCount {
    /// Attribute name.
    pub attribute: String,
    /// Attribute value.
    pub value: String,
    /// Number of matching pages carrying it.
    pub count: usize,
}

/// A recommended page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendedPage {
    /// Page title.
    pub title: String,
    /// Recommendation score.
    pub score: f64,
    /// Shared semantic properties that produced the recommendation.
    pub shared_properties: Vec<String>,
}

/// The complete response to an advanced-search request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryOutput {
    /// Ranked results (already truncated to the form's limit).
    pub items: Vec<ResultItem>,
    /// Total matches before truncation.
    pub total_matched: usize,
    /// Facet counts over the *full* match set.
    pub facets: Vec<FacetCount>,
    /// Pages recommended from the top results.
    pub recommendations: Vec<RecommendedPage>,
    /// Spelling correction proposed when the keywords matched nothing
    /// ("did you mean …?").
    #[serde(default)]
    pub did_you_mean: Option<String>,
}

impl QueryOutput {
    /// Items that can be placed on a map.
    pub fn geolocated(&self) -> impl Iterator<Item = &ResultItem> {
        self.items.iter().filter(|i| i.coords.is_some())
    }
}
