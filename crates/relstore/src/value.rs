//! Runtime values and their static types.
//!
//! The engine supports a deliberately small but complete scalar type system:
//! 64-bit integers, 64-bit floats, UTF-8 text, booleans, and NULL. Values are
//! totally ordered (NULL sorts first, cross-type comparisons order by type
//! rank) so they can serve as B-tree keys without panicking on heterogeneous
//! data — the same decision SQLite takes.

use std::cmp::Ordering;
use std::fmt;

/// Static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized away at construction via [`Value::float`].
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Builds a float value, mapping NaN to NULL so that `Value` stays totally
    /// ordered.
    pub fn float(v: f64) -> Value {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }

    /// Builds a text value from anything stringy.
    pub fn text(v: impl Into<String>) -> Value {
        Value::Text(v.into())
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value's dynamic type, or `None` for NULL (which inhabits
    /// every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Boolean),
        }
    }

    /// Checks whether the value may be stored in a column of type `ty`.
    /// NULL is compatible with every type; integers coerce into float columns.
    pub fn compatible_with(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Integer | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Boolean)
        )
    }

    /// Coerces the value for storage in a column of type `ty`
    /// (integer → float promotion only; everything else is identity).
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// Extracts an integer if the value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a float, promoting integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extracts a string slice if the value is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a boolean if the value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types (NULL < Bool < numeric <
    /// Text).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// SQL three-valued equality: NULL = anything → None.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.cmp(other) == Ordering::Equal)
        }
    }

    /// SQL three-valued comparison: NULL compared to anything → None.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.cmp(other))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash through the float bit pattern of the numeric
            // value so that Int(2) and Float(2.0), which compare equal, hash
            // identically.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Text("a".into())];
        vals.sort();
        assert!(vals[0].is_null());
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_normalizes_to_null() {
        assert!(Value::float(f64::NAN).is_null());
    }

    #[test]
    fn sql_three_valued_logic() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn int_float_hash_consistency() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn coercion_int_to_float_column() {
        assert!(Value::Int(3).compatible_with(DataType::Float));
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
        assert!(!Value::Text("x".into()).compatible_with(DataType::Integer));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }
}
