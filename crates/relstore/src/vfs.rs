//! Virtual file system: the seam between the storage engine and the disk.
//!
//! Every byte the engine persists — snapshots and the write-ahead log —
//! flows through the [`Vfs`] trait, so durability code can be exercised
//! against a deterministic in-memory file system ([`MemVfs`]) and a
//! fault-injecting wrapper ([`FaultVfs`]) that fails the Nth I/O operation,
//! tears a write after K bytes, or simulates a hard crash at any syncpoint.
//!
//! The crash model mirrors POSIX semantics closely enough to catch the
//! classic durability bugs:
//!
//! - data written but not `fsync`ed is lost on crash (modulo a configurable
//!   "spill" of unsynced bytes, modeling partial page-cache writeback —
//!   that is what produces torn WAL tails);
//! - a rename is visible immediately but survives a crash only once the
//!   parent directory has been synced;
//! - syncing a file persists its contents but not a pending rename.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open writable file handle.
pub trait VfsFile: fmt::Debug + Send + Sync {
    /// Appends `data` to the file.
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;
    /// Forces written data to durable storage (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// A file system abstraction covering exactly the operations the engine
/// needs: whole-file reads, truncating/appending writes, rename, remove,
/// existence checks, and directory syncs.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for appending.
    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` to `to` (replacing `to` if it exists).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// True if the path names an existing file.
    fn exists(&self, path: &Path) -> bool;
    /// Syncs the directory containing `path`, making renames and creations
    /// in it durable.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// StdVfs — the production implementation over std::fs.
// ---------------------------------------------------------------------------

/// Production [`Vfs`] backed by `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

#[derive(Debug)]
struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(
            std::fs::OpenOptions::new().append(true).open(path)?,
        )))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        // Syncing a directory requires opening it; this is supported on
        // Unix. Elsewhere the call degrades to a no-op rather than failing.
        #[cfg(unix)]
        {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::File::open(parent)?.sync_all()?;
            }
        }
        #[cfg(not(unix))]
        {
            let _ = path;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemVfs — deterministic in-memory file system with crash semantics.
// ---------------------------------------------------------------------------

/// One in-memory file: its current contents plus the contents as of the
/// last `fsync` of the inode.
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    synced: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemState {
    /// The live view: what reads observe right now.
    live: BTreeMap<PathBuf, MemFile>,
    /// The post-crash view: for every durable directory entry, the file
    /// contents guaranteed to survive a crash.
    crash: BTreeMap<PathBuf, Vec<u8>>,
}

/// Locks the shared state, recovering from a poisoned mutex: a panicking
/// test thread must not cascade failures into unrelated assertions, and the
/// state itself is always left consistent (every mutation is a single
/// insert/remove under the lock).
fn lock_state(state: &Mutex<MemState>) -> std::sync::MutexGuard<'_, MemState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic in-memory [`Vfs`] that tracks, alongside the live view,
/// exactly which bytes would survive a crash.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

impl MemVfs {
    /// Creates an empty in-memory file system.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// Builds the file system as it would look after a crash: only durable
    /// directory entries survive, each with its last-synced contents plus at
    /// most `spill` bytes of any unsynced appended tail (modeling partial
    /// page-cache writeback; `usize::MAX` keeps everything written).
    pub fn crash_view(&self, spill: usize) -> MemVfs {
        let state = lock_state(&self.state);
        let mut live = BTreeMap::new();
        for (path, synced) in &state.crash {
            let mut data = synced.clone();
            if spill > 0 {
                if let Some(file) = state.live.get(path) {
                    // Unsynced tail survives only for pure appends, and only
                    // up to `spill` bytes of it.
                    if file.data.len() > data.len() && file.data.starts_with(&data) {
                        let keep = (file.data.len() - data.len()).min(spill);
                        data.extend_from_slice(&file.data[data.len()..data.len() + keep]);
                    }
                }
            }
            live.insert(
                path.clone(),
                MemFile {
                    synced: data.clone(),
                    data,
                },
            );
        }
        let crash = live
            .iter()
            .map(|(p, f)| (p.clone(), f.synced.clone()))
            .collect();
        MemVfs {
            state: Arc::new(Mutex::new(MemState { live, crash })),
        }
    }

    /// Replaces a file's contents wholesale, marking them durable — a test
    /// helper for planting corrupted bytes (bit flips, truncations).
    pub fn install(&self, path: &Path, bytes: Vec<u8>) {
        let mut state = lock_state(&self.state);
        state.crash.insert(path.to_path_buf(), bytes.clone());
        state.live.insert(
            path.to_path_buf(),
            MemFile {
                synced: bytes.clone(),
                data: bytes,
            },
        );
    }

    /// Sorted list of live file paths.
    pub fn paths(&self) -> Vec<PathBuf> {
        let state = lock_state(&self.state);
        state.live.keys().cloned().collect()
    }
}

/// Write handle into a [`MemVfs`] file.
#[derive(Debug)]
struct MemHandle {
    state: Arc<Mutex<MemState>>,
    path: PathBuf,
}

impl VfsFile for MemHandle {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        match state.live.get_mut(&self.path) {
            Some(file) => {
                file.data.extend_from_slice(data);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "file removed while open",
            )),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        let Some(file) = state.live.get_mut(&self.path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "file removed while open",
            ));
        };
        file.synced = file.data.clone();
        let synced = file.synced.clone();
        // fsync persists the inode's data; the directory entry becomes
        // durable only via sync_parent_dir. If the entry is already durable
        // the new contents are now crash-safe.
        if state.crash.contains_key(&self.path) {
            state.crash.insert(self.path.clone(), synced);
        }
        Ok(())
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
}

impl Vfs for MemVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = lock_state(&self.state);
        state
            .live
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| not_found(path))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut state = lock_state(&self.state);
        state.live.insert(path.to_path_buf(), MemFile::default());
        Ok(Box::new(MemHandle {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let state = lock_state(&self.state);
        if !state.live.contains_key(path) {
            return Err(not_found(path));
        }
        Ok(Box::new(MemHandle {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        let file = state.live.remove(from).ok_or_else(|| not_found(from))?;
        state.live.insert(to.to_path_buf(), file);
        // The crash view is untouched: the rename survives only after a
        // sync_parent_dir.
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut state = lock_state(&self.state);
        state
            .live
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        let state = lock_state(&self.state);
        state.live.contains_key(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let parent = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let mut state = lock_state(&self.state);
        // Make the directory's namespace durable: every live entry in this
        // directory is recorded in the crash view with its last-synced
        // contents; entries removed/renamed-away disappear from it.
        let entries: Vec<(PathBuf, Vec<u8>)> = state
            .live
            .iter()
            .filter(|(p, _)| p.parent().map(Path::to_path_buf).unwrap_or_default() == parent)
            .map(|(p, f)| (p.clone(), f.synced.clone()))
            .collect();
        state
            .crash
            .retain(|p, _| p.parent().map(Path::to_path_buf).unwrap_or_default() != parent);
        for (p, synced) in entries {
            state.crash.insert(p, synced);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultVfs — deterministic fault injection.
// ---------------------------------------------------------------------------

/// What faults to inject, and when. Counters are 1-based: `fail_at_op:
/// Some(1)` fails the very first I/O operation.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail the Nth I/O operation (any read/create/append/write/sync/
    /// rename/remove/dir-sync) with an injected error, once. The file
    /// system keeps working afterwards — a transient fault.
    pub fail_at_op: Option<u64>,
    /// Simulate a hard crash at the Nth sync point (file or directory
    /// sync). The sync does **not** take effect and every subsequent
    /// operation fails. Recover with [`FaultVfs::durable_state`].
    pub crash_at_sync: Option<u64>,
    /// Tear the Nth write: only the first K bytes reach the file, then the
    /// system crashes.
    pub torn_write: Option<(u64, usize)>,
    /// How many unsynced appended bytes per file survive the crash (the
    /// page-cache writeback spill). `0` models a strict "only fsynced data
    /// survives" crash; `usize::MAX` models "everything written survives".
    pub crash_spill: usize,
}

#[derive(Debug, Default)]
struct FaultCounters {
    ops: AtomicU64,
    syncs: AtomicU64,
    writes: AtomicU64,
    crashed: AtomicBool,
}

/// A [`Vfs`] wrapping a [`MemVfs`] with deterministic fault injection.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    mem: MemVfs,
    plan: FaultPlan,
    counters: Arc<FaultCounters>,
}

/// The error message carried by every injected fault.
pub const INJECTED_FAULT: &str = "injected i/o fault";
/// The error message carried by operations after a simulated crash.
pub const SIMULATED_CRASH: &str = "simulated crash";

impl FaultVfs {
    /// Wraps `mem` with the given fault plan.
    pub fn new(mem: MemVfs, plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            mem,
            plan,
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// Total I/O operations observed so far.
    pub fn ops(&self) -> u64 {
        self.counters.ops.load(Ordering::SeqCst)
    }

    /// Total sync points (file + directory syncs) observed so far.
    pub fn syncs(&self) -> u64 {
        self.counters.syncs.load(Ordering::SeqCst)
    }

    /// Total write operations observed so far.
    pub fn writes(&self) -> u64 {
        self.counters.writes.load(Ordering::SeqCst)
    }

    /// True once a simulated crash has triggered.
    pub fn crashed(&self) -> bool {
        self.counters.crashed.load(Ordering::SeqCst)
    }

    /// The file system as it would look after the crash — feed this to a
    /// fresh engine instance to exercise recovery.
    pub fn durable_state(&self) -> MemVfs {
        self.mem.crash_view(self.plan.crash_spill)
    }

    /// Checks the crash flag and the per-op fault trigger. Returns an error
    /// if this operation must fail.
    fn gate(&self) -> io::Result<()> {
        if self.counters.crashed.load(Ordering::SeqCst) {
            return Err(io::Error::other(SIMULATED_CRASH));
        }
        let op = self.counters.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.fail_at_op == Some(op) {
            return Err(io::Error::other(INJECTED_FAULT));
        }
        Ok(())
    }

    fn gate_sync(&self) -> io::Result<()> {
        self.gate()?;
        let sync = self.counters.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.crash_at_sync == Some(sync) {
            self.counters.crashed.store(true, Ordering::SeqCst);
            return Err(io::Error::other(SIMULATED_CRASH));
        }
        Ok(())
    }
}

/// File handle that re-checks the fault plan on every write and sync.
#[derive(Debug)]
struct FaultHandle {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    vfs: FaultVfs,
}

impl VfsFile for FaultHandle {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.vfs.gate()?;
        let write = self.vfs.counters.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((at, keep)) = self.vfs.plan.torn_write {
            if at == write {
                // Persist a prefix of the write, then crash.
                let keep = keep.min(data.len());
                let _ = self.inner.write_all(&data[..keep]);
                self.vfs.counters.crashed.store(true, Ordering::SeqCst);
                return Err(io::Error::other(SIMULATED_CRASH));
            }
        }
        let _ = &self.path;
        self.inner.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.vfs.gate_sync()?;
        self.inner.sync()
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate()?;
        self.mem.read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate()?;
        Ok(Box::new(FaultHandle {
            inner: self.mem.create(path)?,
            path: path.to_path_buf(),
            vfs: self.clone(),
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate()?;
        Ok(Box::new(FaultHandle {
            inner: self.mem.append(path)?,
            path: path.to_path_buf(),
            vfs: self.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate()?;
        self.mem.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        self.mem.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.mem.exists(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        self.gate_sync()?;
        self.mem.sync_parent_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_basic_io() {
        let vfs = MemVfs::new();
        let p = Path::new("a/file.bin");
        let mut f = vfs.create(p).unwrap();
        f.write_all(b"hello").unwrap();
        f.write_all(b" world").unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"hello world");
        assert!(vfs.exists(p));
        vfs.rename(p, Path::new("a/other.bin")).unwrap();
        assert!(!vfs.exists(p));
        assert_eq!(vfs.read(Path::new("a/other.bin")).unwrap(), b"hello world");
        vfs.remove(Path::new("a/other.bin")).unwrap();
        assert!(!vfs.exists(Path::new("a/other.bin")));
    }

    #[test]
    fn unsynced_data_lost_on_crash() {
        let vfs = MemVfs::new();
        let p = Path::new("wal");
        let mut f = vfs.create(p).unwrap();
        f.write_all(b"synced").unwrap();
        f.sync().unwrap();
        vfs.sync_parent_dir(p).unwrap();
        f.write_all(b"+tail").unwrap();
        // Strict crash: only the synced prefix survives.
        let after = vfs.crash_view(0);
        assert_eq!(after.read(p).unwrap(), b"synced");
        // Spilled crash: part of the unsynced tail survives (torn tail).
        let after = vfs.crash_view(3);
        assert_eq!(after.read(p).unwrap(), b"synced+ta");
    }

    #[test]
    fn rename_needs_dir_sync_to_survive_crash() {
        let vfs = MemVfs::new();
        let tmp = Path::new("db.tmp");
        let dst = Path::new("db.snap");
        // Establish a durable old snapshot.
        let mut f = vfs.create(dst).unwrap();
        f.write_all(b"old").unwrap();
        f.sync().unwrap();
        vfs.sync_parent_dir(dst).unwrap();
        // Write + sync a new version, rename over, but crash before the
        // directory sync: the old contents must still be there.
        let mut f = vfs.create(tmp).unwrap();
        f.write_all(b"new").unwrap();
        f.sync().unwrap();
        vfs.rename(tmp, dst).unwrap();
        let after = vfs.crash_view(0);
        assert_eq!(after.read(dst).unwrap(), b"old");
        // With the directory sync the rename is durable.
        vfs.sync_parent_dir(dst).unwrap();
        let after = vfs.crash_view(0);
        assert_eq!(after.read(dst).unwrap(), b"new");
    }

    #[test]
    fn file_sync_without_dir_sync_leaves_no_entry() {
        let vfs = MemVfs::new();
        let p = Path::new("fresh");
        let mut f = vfs.create(p).unwrap();
        f.write_all(b"data").unwrap();
        f.sync().unwrap();
        // Entry never made durable: the file vanishes on crash.
        let after = vfs.crash_view(usize::MAX);
        assert!(!after.exists(p));
    }

    #[test]
    fn fault_vfs_fails_nth_op_then_recovers() {
        let vfs = FaultVfs::new(
            MemVfs::new(),
            FaultPlan {
                fail_at_op: Some(2),
                ..FaultPlan::default()
            },
        );
        let p = Path::new("x");
        let mut f = vfs.create(p).unwrap(); // op 1
        let err = f.write_all(b"boom").unwrap_err(); // op 2 — injected
        assert_eq!(err.to_string(), INJECTED_FAULT);
        // Transient: the next operation succeeds.
        f.write_all(b"ok").unwrap();
        assert_eq!(vfs.read(p).unwrap(), b"ok");
    }

    #[test]
    fn fault_vfs_crash_at_sync_freezes_everything() {
        let vfs = FaultVfs::new(
            MemVfs::new(),
            FaultPlan {
                crash_at_sync: Some(2),
                ..FaultPlan::default()
            },
        );
        let p = Path::new("x");
        let mut f = vfs.create(p).unwrap();
        f.write_all(b"one").unwrap();
        f.sync().unwrap(); // sync 1 — ok
        let err = vfs.sync_parent_dir(p).unwrap_err(); // sync 2 — crash
        assert_eq!(err.to_string(), SIMULATED_CRASH);
        assert!(vfs.crashed());
        assert!(vfs.read(p).is_err(), "post-crash ops fail");
        // Durable state: file contents were synced but the entry was not.
        let after = vfs.durable_state();
        assert!(!after.exists(p));
    }

    #[test]
    fn fault_vfs_tears_writes() {
        let vfs = FaultVfs::new(
            MemVfs::new(),
            FaultPlan {
                torn_write: Some((2, 4)),
                crash_spill: usize::MAX,
                ..FaultPlan::default()
            },
        );
        let p = Path::new("wal");
        let mut f = vfs.create(p).unwrap();
        f.write_all(b"head").unwrap();
        f.sync().unwrap();
        vfs.sync_parent_dir(p).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.to_string(), SIMULATED_CRASH);
        let after = vfs.durable_state();
        assert_eq!(after.read(p).unwrap(), b"head0123", "torn after 4 bytes");
    }
}
