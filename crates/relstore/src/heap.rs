//! Heap files: unordered collections of records across slotted pages.
//!
//! Records larger than a page's payload capacity are spilled to an overflow
//! area (wiki page bodies in the SMR routinely exceed 8 KiB). RowIds are
//! stable for the lifetime of a record: updates that still fit rewrite in
//! place semantics-wise (delete + insert under the same external key is the
//! executor's job; the heap itself exposes insert/get/delete/scan).

use crate::error::{RelError, Result};
use crate::page::{Page, PAGE_SIZE};
use std::sync::Arc;

/// Largest record stored inline in a page. Anything bigger goes to overflow.
const MAX_INLINE: usize = PAGE_SIZE / 2;

/// Stable identifier of a record inside one heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page number, or `u32::MAX` for overflow records.
    pub page: u32,
    /// Slot within the page, or overflow index.
    pub slot: u32,
}

impl RowId {
    const OVERFLOW_PAGE: u32 = u32::MAX;

    fn overflow(ix: u32) -> RowId {
        RowId {
            page: Self::OVERFLOW_PAGE,
            slot: ix,
        }
    }

    fn is_overflow(self) -> bool {
        self.page == Self::OVERFLOW_PAGE
    }
}

/// An append-friendly heap of byte records.
///
/// Pages and overflow records are held behind `Arc` so a clone of the heap
/// (an MVCC reader version) shares every page structurally; a writer's
/// first mutation of a shared page copies just that page
/// (`Arc::make_mut`), never the whole heap.
#[derive(Debug, Default, Clone)]
pub struct Heap {
    pages: Vec<Arc<Page>>,
    /// Overflow records; `None` marks a deleted overflow record.
    overflow: Vec<Option<Arc<Vec<u8>>>>,
    /// Count of live (non-deleted) records across pages and overflow.
    live_records: usize,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live_records
    }

    /// True if the heap holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live_records == 0
    }

    /// Inserts a record and returns its stable RowId.
    pub fn insert(&mut self, record: &[u8]) -> Result<RowId> {
        self.live_records += 1;
        if record.len() > MAX_INLINE {
            let ix = self.overflow.len();
            if ix >= u32::MAX as usize {
                self.live_records -= 1;
                return Err(RelError::Exec("overflow area full".into()));
            }
            self.overflow.push(Some(Arc::new(record.to_vec())));
            return Ok(RowId::overflow(ix as u32));
        }
        // Try the last page first (append workloads), then fall back to a new
        // page. A production engine would keep a free-space map; metadata
        // workloads are append-mostly so this stays O(1) amortized.
        if let Some(last) = self.pages.last_mut() {
            if last.fits(record.len()) {
                let slot = Arc::make_mut(last).insert(record)?;
                return Ok(RowId {
                    page: (self.pages.len() - 1) as u32,
                    slot: slot as u32,
                });
            }
        }
        let mut page = Page::new();
        let slot = page.insert(record)?;
        self.pages.push(Arc::new(page));
        Ok(RowId {
            page: (self.pages.len() - 1) as u32,
            slot: slot as u32,
        })
    }

    /// Fetches a record by RowId.
    pub fn get(&self, id: RowId) -> Option<&[u8]> {
        if id.is_overflow() {
            return self
                .overflow
                .get(id.slot as usize)
                .and_then(|r| r.as_deref())
                .map(|v| v.as_slice());
        }
        self.pages.get(id.page as usize)?.get(id.slot as u16)
    }

    /// Deletes a record. Returns true if it was live.
    pub fn delete(&mut self, id: RowId) -> bool {
        let deleted = if id.is_overflow() {
            match self.overflow.get_mut(id.slot as usize) {
                Some(slot @ Some(_)) => {
                    *slot = None;
                    true
                }
                _ => false,
            }
        } else {
            let slot = id.slot as u16;
            self.pages
                .get_mut(id.page as usize)
                // `make_mut` only copies when the page is shared with a
                // live snapshot *and* the slot is actually deleted below.
                .is_some_and(|p| p.get(slot).is_some() && Arc::make_mut(p).delete(slot))
        };
        if deleted {
            self.live_records -= 1;
        }
        deleted
    }

    /// Iterates `(RowId, record)` over all live records in storage order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[u8])> {
        let inline = self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.iter().map(move |(slot, rec)| {
                (
                    RowId {
                        page: pno as u32,
                        slot: slot as u32,
                    },
                    rec,
                )
            })
        });
        let spilled = self.overflow.iter().enumerate().filter_map(|(ix, r)| {
            r.as_deref()
                .map(|r| (RowId::overflow(ix as u32), r.as_slice()))
        });
        inline.chain(spilled)
    }

    /// Compacts every page whose dead space crosses a quarter page.
    pub fn vacuum(&mut self) {
        for page in &mut self.pages {
            if page.dead_space() > PAGE_SIZE / 4 {
                Arc::make_mut(page).compact();
            }
        }
    }

    /// Deep structural check (fsck): every page's slotted layout plus the
    /// heap-level live-record accounting. Returns every violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for (pno, page) in self.pages.iter().enumerate() {
            if let Err(page_problems) = page.check_invariants() {
                problems.extend(
                    page_problems
                        .into_iter()
                        .map(|p| format!("page {pno}: {p}")),
                );
            }
        }
        let counted = self.scan().count();
        if counted != self.live_records {
            problems.push(format!(
                "live-record counter says {} but scan finds {counted}",
                self.live_records
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Serializes the heap for snapshotting.
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::encoding::write_varint;
        let mut out = Vec::new();
        write_varint(&mut out, self.pages.len() as u64);
        for p in &self.pages {
            out.extend_from_slice(p.as_bytes());
        }
        write_varint(&mut out, self.overflow.len() as u64);
        for rec in &self.overflow {
            match rec {
                None => out.push(0),
                Some(r) => {
                    out.push(1);
                    write_varint(&mut out, r.len() as u64);
                    out.extend_from_slice(r);
                }
            }
        }
        out
    }

    /// Restores a heap from snapshot bytes.
    pub fn from_snapshot(buf: &[u8], pos: &mut usize) -> Result<Heap> {
        use crate::encoding::read_varint;
        let npages = read_varint(buf, pos)? as usize;
        let mut pages = Vec::with_capacity(npages.min(1 << 20));
        for _ in 0..npages {
            let end = *pos + PAGE_SIZE;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| RelError::Snapshot("heap page truncated".into()))?;
            *pos = end;
            pages.push(Arc::new(Page::from_bytes(bytes)?));
        }
        let nover = read_varint(buf, pos)? as usize;
        let mut overflow = Vec::with_capacity(nover.min(1 << 20));
        for _ in 0..nover {
            let marker = *buf
                .get(*pos)
                .ok_or_else(|| RelError::Snapshot("overflow truncated".into()))?;
            *pos += 1;
            if marker == 0 {
                overflow.push(None);
            } else {
                let len = read_varint(buf, pos)? as usize;
                let end = *pos + len;
                let bytes = buf
                    .get(*pos..end)
                    .ok_or_else(|| RelError::Snapshot("overflow record truncated".into()))?;
                *pos = end;
                overflow.push(Some(Arc::new(bytes.to_vec())));
            }
        }
        let mut heap = Heap {
            pages,
            overflow,
            live_records: 0,
        };
        heap.live_records = heap.scan().count();
        Ok(heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut h = Heap::new();
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert!(h.delete(a));
        assert!(!h.delete(a));
        assert!(h.get(a).is_none());
        assert_eq!(h.get(b).unwrap(), b"beta");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn large_records_spill_to_overflow() {
        let mut h = Heap::new();
        let big = vec![9u8; PAGE_SIZE * 3];
        let id = h.insert(&big).unwrap();
        assert!(id.is_overflow());
        assert_eq!(h.get(id).unwrap(), &big[..]);
        assert!(h.delete(id));
        assert!(h.get(id).is_none());
    }

    #[test]
    fn scan_visits_inline_and_overflow() {
        let mut h = Heap::new();
        h.insert(b"small").unwrap();
        h.insert(&vec![1u8; PAGE_SIZE]).unwrap();
        h.insert(b"small2").unwrap();
        let recs: Vec<_> = h.scan().map(|(_, r)| r.len()).collect();
        assert_eq!(recs.len(), 3);
        assert!(recs.contains(&PAGE_SIZE));
    }

    #[test]
    fn spans_multiple_pages() {
        let mut h = Heap::new();
        let rec = vec![0u8; 3000];
        let ids: Vec<_> = (0..10).map(|_| h.insert(&rec).unwrap()).collect();
        assert!(ids.iter().any(|id| id.page > 0), "should use several pages");
        for id in ids {
            assert_eq!(h.get(id).unwrap().len(), 3000);
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut h = Heap::new();
        let a = h.insert(b"one").unwrap();
        let b = h.insert(&vec![5u8; PAGE_SIZE]).unwrap();
        let c = h.insert(b"three").unwrap();
        h.delete(a);
        let snap = h.to_snapshot();
        let mut pos = 0;
        let back = Heap::from_snapshot(&snap, &mut pos).unwrap();
        assert_eq!(pos, snap.len());
        assert_eq!(back.len(), 2);
        assert!(back.get(a).is_none());
        assert_eq!(back.get(b).unwrap(), &vec![5u8; PAGE_SIZE][..]);
        assert_eq!(back.get(c).unwrap(), b"three");
    }

    #[test]
    fn fsck_detects_corruption() {
        let mut h = Heap::new();
        h.insert(b"alpha").unwrap();
        h.insert(&vec![3u8; PAGE_SIZE]).unwrap();
        assert_eq!(h.check_invariants(), Ok(()));

        // Drifted live-record counter.
        h.live_records = 42;
        let problems = h.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("live-record counter")),
            "{problems:?}"
        );

        // A corrupt page surfaces with its page number.
        let mut h = Heap::new();
        h.insert(b"alpha").unwrap();
        let raw = {
            let mut bytes = h.pages[0].as_bytes().to_vec();
            bytes[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
            bytes
        };
        h.pages[0] = Arc::new(Page::from_bytes(&raw).unwrap());
        let problems = h.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.starts_with("page 0:")),
            "{problems:?}"
        );
    }

    #[test]
    fn vacuum_preserves_live_rows() {
        let mut h = Heap::new();
        let ids: Vec<_> = (0..20)
            .map(|i| h.insert(&vec![i as u8; 3000]).unwrap())
            .collect();
        for id in ids.iter().step_by(2) {
            h.delete(*id);
        }
        h.vacuum();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(h.get(*id).is_none());
            } else {
                assert_eq!(h.get(*id).unwrap(), &vec![i as u8; 3000][..]);
            }
        }
    }
}
