//! Compact binary row encoding.
//!
//! Rows are serialized with a one-byte type tag per value followed by a
//! fixed- or length-prefixed payload. Integers use zig-zag varint encoding so
//! small ids (the common case for metadata keys) take one byte.

use crate::error::{RelError, Result};
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Appends a varint-encoded u64.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a varint-encoded u64, advancing `pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| RelError::Snapshot("varint truncated".into()))?;
        *pos += 1;
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift >= 64 {
            return Err(RelError::Snapshot("varint overflow".into()));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes one row into `buf`.
pub fn encode_row(row: &[Value], buf: &mut Vec<u8>) {
    write_varint(buf, row.len() as u64);
    for v in row {
        match v {
            Value::Null => buf.push(TAG_NULL),
            Value::Int(i) => {
                buf.push(TAG_INT);
                write_varint(buf, zigzag(*i));
            }
            Value::Float(x) => {
                buf.push(TAG_FLOAT);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                buf.push(TAG_TEXT);
                write_varint(buf, s.len() as u64);
                buf.extend_from_slice(s.as_bytes());
            }
            Value::Bool(false) => buf.push(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.push(TAG_BOOL_TRUE),
        }
    }
}

/// Deserializes one row starting at `pos`, advancing it.
pub fn decode_row(buf: &[u8], pos: &mut usize) -> Result<Vec<Value>> {
    let n = read_varint(buf, pos)? as usize;
    if n > buf.len() {
        // n values each take ≥1 byte; a count above the remaining buffer is
        // definitely corrupt and would make us over-allocate.
        return Err(RelError::Snapshot("row arity exceeds buffer".into()));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| RelError::Snapshot("row truncated".into()))?;
        *pos += 1;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(unzigzag(read_varint(buf, pos)?)),
            TAG_FLOAT => {
                let end = *pos + 8;
                let bytes = buf
                    .get(*pos..end)
                    .ok_or_else(|| RelError::Snapshot("float truncated".into()))?;
                *pos = end;
                Value::Float(f64::from_bits(u64::from_le_bytes(
                    bytes
                        .try_into()
                        .map_err(|_| RelError::Snapshot("float truncated".into()))?,
                )))
            }
            TAG_TEXT => {
                let len = read_varint(buf, pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .ok_or_else(|| RelError::Snapshot("text length overflow".into()))?;
                let bytes = buf
                    .get(*pos..end)
                    .ok_or_else(|| RelError::Snapshot("text truncated".into()))?;
                *pos = end;
                Value::Text(
                    std::str::from_utf8(bytes)
                        .map_err(|_| RelError::Snapshot("invalid utf-8 in text".into()))?
                        .to_owned(),
                )
            }
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            other => {
                return Err(RelError::Snapshot(format!("unknown value tag {other}")));
            }
        };
        row.push(v);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: Vec<Value>) {
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let mut pos = 0;
        let back = decode_row(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(row, back);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::text("héllo wörld"),
            Value::text(""),
            Value::Bool(true),
            Value::Bool(false),
        ]);
    }

    #[test]
    fn roundtrip_empty_row() {
        roundtrip(vec![]);
    }

    #[test]
    fn small_int_takes_two_bytes() {
        let mut buf = Vec::new();
        encode_row(&[Value::Int(5)], &mut buf);
        // arity varint (1) + tag (1) + zigzag(5)=10 varint (1)
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut buf = Vec::new();
        encode_row(&[Value::text("abcdef")], &mut buf);
        buf.truncate(buf.len() - 2);
        let mut pos = 0;
        assert!(decode_row(&buf, &mut pos).is_err());
    }

    #[test]
    fn garbage_tag_rejected() {
        let buf = vec![1u8, 99u8];
        let mut pos = 0;
        assert!(decode_row(&buf, &mut pos).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
    }
}
