//! Checksummed write-ahead log.
//!
//! The WAL is a sequence of CRC32-framed records appended ahead of every
//! mutation. A transaction is `Begin`, one or more `Op` records (each
//! carrying a monotonically increasing operation sequence number), and a
//! `Commit`; all frames of a transaction are written in one buffer and made
//! durable with a single group fsync at commit. Replay applies only
//! committed transactions and discards torn or corrupt tails — a frame
//! whose length or checksum does not verify ends the readable log.
//!
//! On-disk layout:
//!
//! ```text
//! file   := header frame*
//! header := "SMRWAL01"                      (8 bytes)
//! frame  := len:u32le crc:u32le payload     (crc = CRC-32/IEEE of payload)
//! payload:= 0x01 tx:varint                  Begin
//!         | 0x02 tx:varint seq:varint op    Op
//!         | 0x03 tx:varint                  Commit
//! op     := 0x01 sql:str                    SQL statement / script
//!         | 0x02 table:str row:encode_row   logical row insert
//!         | 0x03 schema                     programmatic CREATE TABLE
//! str    := len:varint utf8-bytes
//! ```

use crate::encoding::{encode_row, read_varint, write_varint};
use crate::error::{RelError, Result};
use crate::schema::{Column, TableSchema};
use crate::value::{DataType, Value};
use crate::vfs::{Vfs, VfsFile};
use sensormeta_obs as obs;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"SMRWAL01";

/// Upper bound on a single frame's payload; anything larger in a length
/// field is treated as corruption rather than allocated.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

const KIND_BEGIN: u8 = 1;
const KIND_OP: u8 = 2;
const KIND_COMMIT: u8 = 3;

const OP_SQL: u8 = 1;
const OP_INSERT: u8 = 2;
const OP_CREATE_TABLE: u8 = 3;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, dependency-free.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Logical operations.
// ---------------------------------------------------------------------------

/// A logical mutation recorded in the log. Replaying the same sequence of
/// operations against the same starting state is deterministic, so an
/// operation that fails at runtime (say, a unique-constraint violation)
/// fails identically at replay and leaves the same state behind.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// A SQL statement or semicolon-separated script, replayed through the
    /// normal SQL executor.
    Sql(String),
    /// A direct row insert through the programmatic API.
    Insert {
        /// Target table name.
        table: String,
        /// The row values as supplied by the caller.
        row: Vec<Value>,
    },
    /// A programmatic `create_table` call.
    CreateTable(TableSchema),
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = usize::try_from(read_varint(buf, pos)?)
        .map_err(|_| RelError::Wal("string length overflow".into()))?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| RelError::Wal("string out of bounds".into()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| RelError::Wal("invalid utf-8".into()))?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
    }
}

fn untag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Boolean,
        other => return Err(RelError::Wal(format!("bad type tag {other}"))),
    })
}

impl LogicalOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogicalOp::Sql(sql) => {
                out.push(OP_SQL);
                write_str(out, sql);
            }
            LogicalOp::Insert { table, row } => {
                out.push(OP_INSERT);
                write_str(out, table);
                encode_row(row, out);
            }
            LogicalOp::CreateTable(schema) => {
                out.push(OP_CREATE_TABLE);
                write_str(out, &schema.name);
                write_varint(out, schema.columns.len() as u64);
                for c in &schema.columns {
                    write_str(out, &c.name);
                    out.push(type_tag(c.ty));
                    out.push(
                        u8::from(c.not_null)
                            | (u8::from(c.unique) << 1)
                            | (u8::from(c.primary_key) << 2),
                    );
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<LogicalOp> {
        let tag = next_byte(buf, pos)?;
        match tag {
            OP_SQL => Ok(LogicalOp::Sql(read_str(buf, pos)?)),
            OP_INSERT => {
                let table = read_str(buf, pos)?;
                let row = crate::encoding::decode_row(buf, pos)?;
                Ok(LogicalOp::Insert { table, row })
            }
            OP_CREATE_TABLE => {
                let name = read_str(buf, pos)?;
                let ncols = usize::try_from(read_varint(buf, pos)?)
                    .map_err(|_| RelError::Wal("column count overflow".into()))?;
                let mut cols = Vec::with_capacity(ncols.min(4096));
                for _ in 0..ncols {
                    let cname = read_str(buf, pos)?;
                    let ty = untag_type(next_byte(buf, pos)?)?;
                    let flags = next_byte(buf, pos)?;
                    cols.push(Column {
                        name: cname,
                        ty,
                        not_null: flags & 1 != 0,
                        unique: flags & 2 != 0,
                        primary_key: flags & 4 != 0,
                    });
                }
                Ok(LogicalOp::CreateTable(TableSchema::new(name, cols)?))
            }
            other => Err(RelError::Wal(format!("unknown op tag {other}"))),
        }
    }
}

fn next_byte(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| RelError::Wal("unexpected end of record".into()))?;
    *pos += 1;
    Ok(b)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// When the WAL fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// One group fsync per committed transaction: an acknowledged commit is
    /// durable. The default.
    Always,
    /// Fsync every Nth commit (group commit across transactions): higher
    /// throughput, but up to N-1 acknowledged commits can be lost on crash.
    EveryN(u32),
    /// Never fsync on commit (checkpoints still sync): durability is only
    /// as good as the OS page cache. For bulk loads.
    Never,
}

/// Appending side of the write-ahead log.
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    policy: SyncPolicy,
    unsynced_commits: u32,
    appended_bytes: u64,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("appended_bytes", &self.appended_bytes)
            .finish()
    }
}

fn io_err(context: &str, e: std::io::Error) -> RelError {
    RelError::Io(format!("{context}: {e}"))
}

impl Wal {
    /// Creates a fresh (truncated) WAL at `path`: header written, synced,
    /// and its directory entry made durable.
    pub fn create(vfs: &Arc<dyn Vfs>, path: &Path, policy: SyncPolicy) -> Result<Wal> {
        let mut file = vfs.create(path).map_err(|e| io_err("create wal", e))?;
        file.write_all(WAL_MAGIC)
            .map_err(|e| io_err("write wal header", e))?;
        file.sync().map_err(|e| io_err("sync wal", e))?;
        vfs.sync_parent_dir(path)
            .map_err(|e| io_err("sync wal dir", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced_commits: 0,
            appended_bytes: 0,
        })
    }

    /// Opens an existing WAL (already verified clean) for appending.
    pub fn open_append(
        vfs: &Arc<dyn Vfs>,
        path: &Path,
        policy: SyncPolicy,
        existing_bytes: u64,
    ) -> Result<Wal> {
        let file = vfs.append(path).map_err(|e| io_err("open wal", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced_commits: 0,
            appended_bytes: existing_bytes,
        })
    }

    /// Bytes appended past the header (including pre-existing records).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Appends one whole transaction — begin, ops, commit — as a single
    /// buffered write, then fsyncs according to the policy.
    pub fn commit(&mut self, tx: u64, ops: &[(u64, LogicalOp)]) -> Result<()> {
        let mut buf = Vec::with_capacity(64);
        {
            let mut payload = Vec::with_capacity(16);
            payload.push(KIND_BEGIN);
            write_varint(&mut payload, tx);
            push_frame(&mut buf, &payload)?;
        }
        for (seq, op) in ops {
            let mut payload = Vec::with_capacity(32);
            payload.push(KIND_OP);
            write_varint(&mut payload, tx);
            write_varint(&mut payload, *seq);
            op.encode(&mut payload);
            push_frame(&mut buf, &payload)?;
        }
        {
            let mut payload = Vec::with_capacity(16);
            payload.push(KIND_COMMIT);
            write_varint(&mut payload, tx);
            push_frame(&mut buf, &payload)?;
        }
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append wal", e))?;
        obs::counter("relstore_wal_commits_total").inc();
        obs::counter("relstore_wal_ops_total").add(ops.len() as u64);
        obs::counter("relstore_wal_appended_bytes_total").add(buf.len() as u64);
        self.appended_bytes += buf.len() as u64;
        self.unsynced_commits += 1;
        let should_sync = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.unsynced_commits >= n.max(1),
            SyncPolicy::Never => false,
        };
        if should_sync {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any buffered commits to durable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync().map_err(|e| io_err("sync wal", e))?;
        obs::counter("relstore_wal_fsyncs_total").inc();
        self.unsynced_commits = 0;
        Ok(())
    }
}

fn push_frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n > 0 && n <= MAX_FRAME)
        .ok_or_else(|| {
            RelError::Wal(format!(
                "frame payload of {} bytes is outside the 1..={MAX_FRAME} limit",
                payload.len()
            ))
        })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

// ---------------------------------------------------------------------------
// Scanner / verifier.
// ---------------------------------------------------------------------------

/// A committed transaction recovered from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedTx {
    /// Transaction id.
    pub tx: u64,
    /// The transaction's operations, in log order, with their sequence
    /// numbers.
    pub ops: Vec<(u64, LogicalOp)>,
}

/// Outcome of scanning a WAL byte stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalScan {
    /// Committed transactions, in commit order.
    pub committed: Vec<CommittedTx>,
    /// Frames that parsed and check-summed correctly.
    pub frames: usize,
    /// Transactions begun (or operated on) but never committed before the
    /// readable log ended — discarded at replay.
    pub uncommitted_txs: usize,
    /// Bytes discarded at the tail: a torn frame, a checksum mismatch, or
    /// trailing garbage.
    pub discarded_bytes: usize,
    /// Human-readable findings: missing/corrupt header, checksum failures,
    /// torn tails, uncommitted transactions.
    pub problems: Vec<String>,
}

impl WalScan {
    /// True when the log is pristine: well-formed header, every frame
    /// verified, no torn tail, no uncommitted transactions.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Scans WAL bytes, verifying structure and checksums. Never fails: all
/// damage is reported in [`WalScan::problems`] and the readable committed
/// prefix is returned — this backs both recovery and `fsck`.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        scan.problems
            .push("missing or corrupt WAL header".to_string());
        scan.discarded_bytes = bytes.len();
        return scan;
    }
    let mut pos = WAL_MAGIC.len();
    // tx id -> ops accumulated so far (open transactions).
    let mut open: Vec<(u64, Vec<(u64, LogicalOp)>)> = Vec::new();
    while pos < bytes.len() {
        let start = pos;
        let Some(header) = bytes.get(pos..pos + 8) else {
            scan.discarded_bytes = bytes.len() - start;
            scan.problems
                .push(format!("torn frame header at offset {start}"));
            break;
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len == 0 || len > MAX_FRAME {
            scan.discarded_bytes = bytes.len() - start;
            scan.problems
                .push(format!("implausible frame length {len} at offset {start}"));
            break;
        }
        pos += 8;
        let end = pos + len as usize;
        let Some(payload) = bytes.get(pos..end) else {
            scan.discarded_bytes = bytes.len() - start;
            scan.problems.push(format!(
                "torn frame at offset {start}: {} of {len} payload bytes present",
                bytes.len() - pos
            ));
            break;
        };
        if crc32(payload) != crc {
            scan.discarded_bytes = bytes.len() - start;
            scan.problems
                .push(format!("checksum mismatch at offset {start}"));
            break;
        }
        pos = end;
        match parse_frame(payload) {
            Ok(Frame::Begin(tx)) => {
                open.push((tx, Vec::new()));
            }
            Ok(Frame::Op(tx, seq, op)) => match open.iter_mut().rev().find(|(t, _)| *t == tx) {
                Some((_, ops)) => ops.push((seq, op)),
                None => {
                    // An op without a begin: tolerate by opening implicitly.
                    open.push((tx, vec![(seq, op)]));
                }
            },
            Ok(Frame::Commit(tx)) => {
                if let Some(ix) = open.iter().position(|(t, _)| *t == tx) {
                    let (tx, ops) = open.remove(ix);
                    scan.committed.push(CommittedTx { tx, ops });
                } else {
                    scan.committed.push(CommittedTx {
                        tx,
                        ops: Vec::new(),
                    });
                }
            }
            Err(e) => {
                scan.discarded_bytes = bytes.len() - start;
                scan.problems
                    .push(format!("undecodable frame at offset {start}: {e}"));
                break;
            }
        }
        scan.frames += 1;
    }
    scan.uncommitted_txs = open.len();
    for (tx, ops) in &open {
        scan.problems.push(format!(
            "transaction {tx} with {} op(s) never committed (discarded)",
            ops.len()
        ));
    }
    scan
}

// ---------------------------------------------------------------------------
// Incremental tailing (replication).
// ---------------------------------------------------------------------------

/// Outcome of one [`WalTail::poll`] over the current log bytes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TailPoll {
    /// Transactions whose commit frame became readable since the last poll,
    /// in commit order.
    pub committed: Vec<CommittedTx>,
    /// The log shrank beneath the consumed prefix — the primary checkpointed
    /// and recreated its WAL. The tail has reset itself to the header; the
    /// caller must resync from the snapshot before trusting further polls.
    pub truncated: bool,
    /// A complete-looking frame failed its checksum or did not decode. The
    /// tail does not advance past it; an in-flight buffered write usually
    /// heals on the next poll, persistent stalls mean corruption and the
    /// caller should resync from the snapshot.
    pub stalled: Option<String>,
}

/// Incremental reader over a growing WAL byte stream.
///
/// Unlike [`scan_wal`], which verifies a complete log in one pass, a
/// `WalTail` is polled repeatedly against the current bytes of a log that a
/// primary is still appending to. It remembers the byte offset of the last
/// fully parsed frame and any transactions begun but not yet committed, so
/// each poll surfaces only *newly* committed transactions. Torn frames at
/// the end of the readable bytes are expected (the writer buffers a whole
/// transaction but the reader can race it) and simply end the poll; the
/// offset never advances past an unverified frame.
#[derive(Debug, Default)]
pub struct WalTail {
    offset: usize,
    header_seen: bool,
    open: Vec<(u64, Vec<(u64, LogicalOp)>)>,
}

impl WalTail {
    /// A tail positioned at the start of a (possibly not yet created) log.
    pub fn new() -> WalTail {
        WalTail::default()
    }

    /// Byte offset consumed through the last fully parsed frame.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Transactions begun but not yet committed as of the last poll.
    pub fn pending_txs(&self) -> usize {
        self.open.len()
    }

    /// Consumes newly readable frames from `bytes` (the log's current full
    /// contents) and returns any transactions that committed since the last
    /// poll. See [`TailPoll`] for the truncation and stall signals.
    pub fn poll(&mut self, bytes: &[u8]) -> TailPoll {
        let mut out = TailPoll::default();
        if bytes.len() < self.offset {
            // The file shrank: the primary checkpointed and recreated it.
            *self = WalTail::new();
            out.truncated = true;
            return out;
        }
        if !self.header_seen {
            if bytes.len() < WAL_MAGIC.len() {
                return out; // header not yet written
            }
            if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                out.stalled = Some("missing or corrupt WAL header".to_string());
                return out;
            }
            self.header_seen = true;
            self.offset = WAL_MAGIC.len();
        }
        while self.offset < bytes.len() {
            let start = self.offset;
            let Some(header) = bytes.get(start..start + 8) else {
                break; // torn frame header: wait for more bytes
            };
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if len == 0 || len > MAX_FRAME {
                out.stalled = Some(format!("implausible frame length {len} at offset {start}"));
                break;
            }
            let end = start + 8 + len as usize;
            let Some(payload) = bytes.get(start + 8..end) else {
                break; // torn payload: wait for more bytes
            };
            if crc32(payload) != crc {
                out.stalled = Some(format!("checksum mismatch at offset {start}"));
                break;
            }
            match parse_frame(payload) {
                Ok(Frame::Begin(tx)) => self.open.push((tx, Vec::new())),
                Ok(Frame::Op(tx, seq, op)) => {
                    match self.open.iter_mut().rev().find(|(t, _)| *t == tx) {
                        Some((_, ops)) => ops.push((seq, op)),
                        None => self.open.push((tx, vec![(seq, op)])),
                    }
                }
                Ok(Frame::Commit(tx)) => {
                    let ops = match self.open.iter().position(|(t, _)| *t == tx) {
                        Some(ix) => self.open.remove(ix).1,
                        None => Vec::new(),
                    };
                    out.committed.push(CommittedTx { tx, ops });
                }
                Err(e) => {
                    out.stalled = Some(format!("undecodable frame at offset {start}: {e}"));
                    break;
                }
            }
            self.offset = end;
        }
        if !out.committed.is_empty() {
            obs::counter("relstore_wal_tail_txs_total").add(out.committed.len() as u64);
        }
        out
    }
}

enum Frame {
    Begin(u64),
    Op(u64, u64, LogicalOp),
    Commit(u64),
}

fn parse_frame(payload: &[u8]) -> Result<Frame> {
    let mut pos = 0;
    match next_byte(payload, &mut pos)? {
        KIND_BEGIN => Ok(Frame::Begin(read_varint(payload, &mut pos)?)),
        KIND_OP => {
            let tx = read_varint(payload, &mut pos)?;
            let seq = read_varint(payload, &mut pos)?;
            let op = LogicalOp::decode(payload, &mut pos)?;
            Ok(Frame::Op(tx, seq, op))
        }
        KIND_COMMIT => Ok(Frame::Commit(read_varint(payload, &mut pos)?)),
        other => Err(RelError::Wal(format!("unknown frame kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn build_wal(txs: &[Vec<(u64, LogicalOp)>]) -> Vec<u8> {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let path = Path::new("test.wal");
        let mut wal = Wal::create(&vfs, path, SyncPolicy::Always).unwrap();
        for (i, ops) in txs.iter().enumerate() {
            wal.commit(i as u64 + 1, ops).unwrap();
        }
        vfs.read(path).unwrap()
    }

    fn sql(s: &str) -> LogicalOp {
        LogicalOp::Sql(s.to_string())
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_commit_and_scan() {
        let bytes = build_wal(&[
            vec![(1, sql("CREATE TABLE t (id INTEGER)"))],
            vec![
                (
                    2,
                    LogicalOp::Insert {
                        table: "t".into(),
                        row: vec![Value::Int(7), Value::text("x"), Value::Null],
                    },
                ),
                (3, sql("DELETE FROM t")),
            ],
        ]);
        let scan = scan_wal(&bytes);
        assert!(scan.is_clean(), "{:?}", scan.problems);
        assert_eq!(scan.committed.len(), 2);
        assert_eq!(scan.committed[0].ops.len(), 1);
        assert_eq!(scan.committed[1].ops.len(), 2);
        assert_eq!(scan.committed[1].ops[0].0, 2);
        match &scan.committed[1].ops[0].1 {
            LogicalOp::Insert { table, row } => {
                assert_eq!(table, "t");
                assert_eq!(row[0], Value::Int(7));
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn torn_tail_discarded() {
        let bytes = build_wal(&[vec![(1, sql("A"))], vec![(2, sql("B"))]]);
        // Chop mid-way through the last transaction's frames.
        let cut = bytes.len() - 5;
        let scan = scan_wal(&bytes[..cut]);
        assert!(!scan.is_clean());
        assert_eq!(scan.committed.len(), 1, "only the first tx survives");
        assert!(scan.discarded_bytes > 0);
        assert!(
            scan.problems.iter().any(|p| p.contains("torn")),
            "{:?}",
            scan.problems
        );
    }

    #[test]
    fn bit_flip_detected_by_checksum() {
        let mut bytes = build_wal(&[vec![(1, sql("A"))], vec![(2, sql("B"))]]);
        // Flip one payload byte in the middle of the log.
        let ix = bytes.len() / 2;
        bytes[ix] ^= 0x40;
        let scan = scan_wal(&bytes);
        assert!(!scan.is_clean());
        assert!(
            scan.problems
                .iter()
                .any(|p| p.contains("checksum") || p.contains("torn") || p.contains("implausible")),
            "{:?}",
            scan.problems
        );
        assert!(scan.committed.len() < 2);
    }

    #[test]
    fn uncommitted_tx_reported_and_discarded() {
        let bytes = build_wal(&[vec![(1, sql("A"))]]);
        // Append a begin+op with no commit (simulating a crash mid-tx).
        let mut extra = Vec::new();
        let mut payload = vec![KIND_BEGIN];
        write_varint(&mut payload, 9);
        push_frame(&mut extra, &payload).expect("frame");
        let mut payload = vec![KIND_OP];
        write_varint(&mut payload, 9);
        write_varint(&mut payload, 5);
        sql("LOST").encode(&mut payload);
        push_frame(&mut extra, &payload).expect("frame");
        let mut bytes = bytes;
        bytes.extend_from_slice(&extra);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.committed.len(), 1);
        assert_eq!(scan.uncommitted_txs, 1);
        assert!(
            scan.problems.iter().any(|p| p.contains("never committed")),
            "{:?}",
            scan.problems
        );
    }

    #[test]
    fn missing_header_rejected() {
        let scan = scan_wal(b"not a wal file");
        assert!(!scan.is_clean());
        assert_eq!(scan.committed.len(), 0);
    }

    #[test]
    fn tail_sees_incremental_commits() {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let path = Path::new("tail.wal");
        let mut wal = Wal::create(&vfs, path, SyncPolicy::Always).unwrap();
        let mut tail = WalTail::new();

        // Nothing written past the header yet.
        let poll = tail.poll(&vfs.read(path).unwrap());
        assert!(poll.committed.is_empty() && !poll.truncated && poll.stalled.is_none());

        wal.commit(1, &[(1, sql("A"))]).unwrap();
        let poll = tail.poll(&vfs.read(path).unwrap());
        assert_eq!(poll.committed.len(), 1);
        assert_eq!(poll.committed[0].tx, 1);

        wal.commit(2, &[(2, sql("B")), (3, sql("C"))]).unwrap();
        wal.commit(3, &[(4, sql("D"))]).unwrap();
        let poll = tail.poll(&vfs.read(path).unwrap());
        assert_eq!(poll.committed.len(), 2);
        assert_eq!(poll.committed[1].ops.len(), 1);

        // Re-polling unchanged bytes yields nothing new.
        let poll = tail.poll(&vfs.read(path).unwrap());
        assert!(poll.committed.is_empty());
    }

    #[test]
    fn tail_waits_on_torn_frames_then_completes() {
        let bytes = build_wal(&[vec![(1, sql("A"))], vec![(2, sql("LONGER STATEMENT"))]]);
        let mut tail = WalTail::new();
        let first = tail.poll(&bytes);
        assert_eq!(first.committed.len(), 2);

        // Replay the same log through a fresh tail, feeding it byte by byte:
        // every prefix must either produce nothing or a complete transaction,
        // never an error, and the total must match.
        let mut tail = WalTail::new();
        let mut seen = 0;
        for cut in 0..=bytes.len() {
            let poll = tail.poll(&bytes[..cut]);
            assert!(
                poll.stalled.is_none(),
                "stalled at {cut}: {:?}",
                poll.stalled
            );
            assert!(!poll.truncated);
            seen += poll.committed.len();
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn tail_reports_truncation_and_recovers() {
        let bytes = build_wal(&[vec![(1, sql("A"))], vec![(2, sql("B"))]]);
        let mut tail = WalTail::new();
        assert_eq!(tail.poll(&bytes).committed.len(), 2);

        // The primary checkpointed: the log was recreated, shorter.
        let fresh = build_wal(&[vec![(7, sql("AFTER"))]]);
        let poll = tail.poll(&fresh);
        assert!(poll.truncated);
        assert!(poll.committed.is_empty());

        // The next poll reads the new log from scratch.
        let poll = tail.poll(&fresh);
        assert_eq!(poll.committed.len(), 1);
        assert_eq!(poll.committed[0].ops[0].0, 7, "op seq from the new log");
    }

    #[test]
    fn tail_stalls_on_checksum_damage() {
        let mut bytes = build_wal(&[vec![(1, sql("A"))], vec![(2, sql("B"))]]);
        let ix = bytes.len() - 3;
        bytes[ix] ^= 0x40;
        let mut tail = WalTail::new();
        let poll = tail.poll(&bytes);
        assert!(poll.committed.len() < 2);
        assert!(poll.stalled.is_some());
        let offset = tail.offset();
        // A stall never advances the offset.
        let again = tail.poll(&bytes);
        assert!(again.stalled.is_some());
        assert_eq!(tail.offset(), offset);
    }

    #[test]
    fn create_table_op_roundtrips() {
        let schema = TableSchema::new(
            "s",
            vec![
                Column::new("id", DataType::Integer).primary_key(),
                Column::new("name", DataType::Text).not_null(),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        LogicalOp::CreateTable(schema.clone()).encode(&mut buf);
        let mut pos = 0;
        let back = LogicalOp::decode(&buf, &mut pos).unwrap();
        match back {
            LogicalOp::CreateTable(s) => {
                assert_eq!(s.name, "s");
                assert_eq!(s.columns.len(), 2);
                assert!(s.columns[0].primary_key);
                assert!(s.columns[1].not_null);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }
}
