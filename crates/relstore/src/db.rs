//! The `Database` facade: catalog + SQL entry points + snapshot persistence.
//!
//! A database can run in two modes. In-memory/snapshot mode (the default)
//! behaves as before: mutations apply directly and [`Database::save`]
//! writes whole-database snapshots. Durable mode — entered through
//! [`Database::open_durable`] — appends every mutation to a checksummed
//! write-ahead log *before* applying it, so a crash at any point loses no
//! committed operation (see the [`crate::wal`] and [`crate::recover`]
//! module docs for the format and replay rules).

use crate::encoding::{read_varint, write_varint};
use crate::error::{RelError, Result};
use crate::heap::{Heap, RowId};
use crate::recover::{
    append_seq_trailer, open_impl, write_snapshot_durably, Durability, DurabilityOptions,
    RecoveryReport,
};
use crate::schema::{Column, TableSchema};
use crate::sql::ast::Statement;
use crate::sql::exec::{execute, explain_select, Catalog, ExecOutcome, ResultSet};
use crate::sql::parser::{parse, parse_script};
use crate::table::{IndexDef, IndexKind, Table};
use crate::value::{DataType, Value};
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{LogicalOp, Wal};
use sensormeta_obs as obs;
use std::path::Path;
use std::sync::Arc;

/// An embedded relational database: a catalog of tables with SQL access.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    durability: Option<Durability>,
}

/// Outcome of [`Database::apply_shipped`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Operations applied (successfully replayed).
    pub applied: u64,
    /// Operations that failed deterministically (they failed on the primary
    /// too, so states still converge).
    pub failed: u64,
    /// Operations skipped because their sequence was already applied.
    pub skipped: u64,
    /// Highest operation sequence number seen (or the `after_seq` floor).
    pub last_seq: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Opens (or creates) a durable database at `path` on the standard
    /// filesystem, recovering committed work from the write-ahead log.
    pub fn open_durable(path: &Path) -> Result<(Database, RecoveryReport)> {
        Database::open_durable_with(Arc::new(StdVfs), path, DurabilityOptions::default())
    }

    /// [`Database::open_durable`] with an explicit VFS and options — the
    /// fault-injection entry point.
    pub fn open_durable_with(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        opts: DurabilityOptions,
    ) -> Result<(Database, RecoveryReport)> {
        open_impl(vfs, path, Some(opts))
    }

    /// Opens the database at `path` read-only, replaying the WAL in memory
    /// without touching anything on disk. Errors if neither a snapshot nor
    /// a WAL exists. The returned database has no log attached: mutations
    /// work but are not persisted.
    pub fn open_recovering(vfs: Arc<dyn Vfs>, path: &Path) -> Result<(Database, RecoveryReport)> {
        open_impl(vfs, path, None)
    }

    /// A structural copy-on-write clone for MVCC reader versions: every
    /// table shares its heap pages and index trees (`Arc`) with this
    /// database until either side mutates, so the clone costs refcount
    /// bumps, not data copies. The clone carries no durability — WAL file
    /// handles stay with the writing primary, and published reader
    /// versions are immutable so they never need to log.
    pub fn clone_reader(&self) -> Database {
        Database {
            catalog: self.catalog.clone(),
            durability: None,
        }
    }

    /// True when this database logs mutations to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Highest operation sequence number committed so far (0 when not
    /// durable).
    pub fn committed_seq(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.seq)
    }

    pub(crate) fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    pub(crate) fn attach_durability(&mut self, d: Durability) {
        self.durability = Some(d);
    }

    /// Logs `ops` as one committed transaction, before they are applied.
    /// No-op in non-durable mode. On failure the log is poisoned: the file
    /// may end in a torn frame, so further mutations are refused until the
    /// database is reopened (reads remain available).
    fn wal_commit(&mut self, ops: &[LogicalOp]) -> Result<()> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        if let Some(why) = &d.poisoned {
            return Err(RelError::Wal(format!(
                "log disabled after earlier failure ({why}); reopen to recover"
            )));
        }
        let mut seq_ops = Vec::with_capacity(ops.len());
        for op in ops {
            d.seq += 1;
            seq_ops.push((d.seq, op.clone()));
        }
        d.tx += 1;
        let tx = d.tx;
        if let Err(e) = d.wal.commit(tx, &seq_ops) {
            d.poisoned = Some(e.to_string());
            return Err(e);
        }
        Ok(())
    }

    /// Checkpoints automatically once the WAL outgrows the configured
    /// threshold. Failures poison the log (the committed mutation that
    /// triggered the checkpoint is already durable, so it still succeeds).
    fn maybe_checkpoint(&mut self) {
        let Some(d) = &self.durability else { return };
        if d.poisoned.is_some() || d.wal.appended_bytes() < d.opts.checkpoint_wal_bytes {
            return;
        }
        if let Err(e) = self.checkpoint() {
            if let Some(d) = self.durability.as_mut() {
                d.poisoned = Some(e.to_string());
            }
        }
    }

    /// Folds the log into a fresh durable snapshot and truncates it.
    /// No-op in non-durable mode. Errors leave the database poisoned for
    /// writes; reopening recovers from the last durable state.
    // Checkpointing rewrites durability bookkeeping only; the logical table
    // contents are unchanged. // xlint: allow(epoch-bump-on-mutate)
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let _timing = obs::global().span("relstore_checkpoint");
        obs::counter("relstore_checkpoints_total").inc();
        let seq = d.seq;
        let mut bytes = self.to_snapshot();
        append_seq_trailer(&mut bytes, seq);
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        let res = write_snapshot_durably(d.vfs.as_ref(), &d.snap_path, &bytes)
            .and_then(|()| Wal::create(&d.vfs, &d.wal_path, d.opts.sync));
        match res {
            Ok(wal) => {
                d.wal = wal;
                d.snapshot_seq = seq;
                Ok(())
            }
            Err(e) => {
                d.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Executes one SQL statement. In durable mode the statement text is
    /// logged and made durable before it is applied.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        let mutates = stmt.is_mutation();
        if self.durability.is_some() && mutates {
            self.wal_commit(&[LogicalOp::Sql(sql.to_owned())])?;
        }
        let out = execute(&mut self.catalog, stmt);
        if mutates {
            sensormeta_cache::clock().bump(sensormeta_cache::Domain::Relational);
        }
        self.maybe_checkpoint();
        out
    }

    /// Executes a semicolon-separated script, returning the last outcome.
    /// In durable mode the whole script is logged as one operation; replay
    /// re-runs it with identical stop-at-first-error semantics.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmts = parse_script(sql)?;
        let mutates = stmts.iter().any(Statement::is_mutation);
        if self.durability.is_some() && mutates {
            self.wal_commit(&[LogicalOp::Sql(sql.to_owned())])?;
        }
        let mut last = ExecOutcome::Done;
        for stmt in stmts {
            last = execute(&mut self.catalog, stmt)?;
        }
        if mutates {
            sensormeta_cache::clock().bump(sensormeta_cache::Domain::Relational);
        }
        self.maybe_checkpoint();
        Ok(last)
    }

    /// Runs a SELECT (or EXPLAIN SELECT) without requiring mutable access.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        self.query_with(sql, &crate::sql::planner::PlannerConfig::default())
    }

    /// Runs a SELECT under an explicit planner configuration.
    /// [`PlannerConfig::naive`](crate::sql::planner::PlannerConfig::naive)
    /// forces full scans and written join order — the reference execution the
    /// property suite and benches compare optimized plans against.
    pub fn query_with(
        &self,
        sql: &str,
        cfg: &crate::sql::planner::PlannerConfig,
    ) -> Result<ResultSet> {
        match parse(sql)? {
            Statement::Select(sel) => {
                crate::sql::exec::execute_select_with(&self.catalog, &sel, cfg)
            }
            Statement::Explain(sel) => explain_select(&self.catalog, &sel),
            other => Err(RelError::Exec(format!(
                "query() only accepts SELECT, got {other:?}"
            ))),
        }
    }

    /// Estimated number of rows in `table` whose `column` equals `value`,
    /// without executing a query: an exact B-tree probe when a single-column
    /// index covers the column, otherwise a histogram/distinct-count guess
    /// from table statistics. Used by cross-engine planners to order
    /// condition evaluation by selectivity.
    pub fn estimate_eq(&self, table: &str, column: &str, value: &Value) -> Result<usize> {
        let t = self.table(table)?;
        let col = t
            .schema
            .column_index(column)
            .ok_or_else(|| RelError::NoSuchColumn(column.to_owned()))?;
        if let Some((_, ix)) = t.index_on_column(col) {
            return Ok(ix.get(&vec![value.clone()]).len());
        }
        let rows = t.len();
        let frac = t
            .stats()
            .columns
            .get(col)
            .map_or(1.0, crate::table::ColumnStats::eq_fraction);
        Ok(((rows as f64) * frac).ceil() as usize)
    }

    /// Convenience: runs a SELECT and returns the first value of the first
    /// row, if any.
    pub fn query_scalar(&self, sql: &str) -> Result<Option<Value>> {
        let rs = self.query(sql)?;
        Ok(rs
            .rows
            .into_iter()
            .next()
            .and_then(|r| r.into_iter().next()))
    }

    /// Programmatic table creation (bypasses SQL). Logged in durable mode.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.catalog.contains_key(&key) {
            return Err(RelError::TableExists(schema.name));
        }
        if self.durability.is_some() {
            self.wal_commit(&[LogicalOp::CreateTable(schema.clone())])?;
        }
        self.catalog.insert(key, Table::create(schema)?);
        sensormeta_cache::clock().bump(sensormeta_cache::Domain::Relational);
        self.maybe_checkpoint();
        Ok(())
    }

    /// Inserts a row through the programmatic API. In durable mode the row
    /// is logged and made durable before it is applied — use this instead
    /// of `table_mut(..)?.insert(..)` so the mutation survives a crash.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<RowId> {
        if !self.has_table(table) {
            return Err(RelError::NoSuchTable(table.to_owned()));
        }
        if self.durability.is_some() {
            self.wal_commit(&[LogicalOp::Insert {
                table: table.to_owned(),
                row: row.clone(),
            }])?;
        }
        let id = self.table_mut(table)?.insert(row)?;
        self.maybe_checkpoint();
        Ok(id)
    }

    /// Applies operations shipped from another database's write-ahead log —
    /// the replica side of WAL shipping. Ops at or below `after_seq` are
    /// skipped (already folded into this replica's state); the rest replay
    /// through the same deterministic path recovery uses, so an op that
    /// failed on the primary fails identically here and leaves the same
    /// state. Nothing is logged locally: a replica's durability is the
    /// primary's log. Returns what happened and the highest sequence seen.
    pub fn apply_shipped(&mut self, ops: &[(u64, LogicalOp)], after_seq: u64) -> ShipReport {
        let mut report = ShipReport {
            last_seq: after_seq,
            ..ShipReport::default()
        };
        for (seq, op) in ops {
            if *seq <= after_seq {
                report.skipped += 1;
                continue;
            }
            match crate::recover::apply_logical(&mut self.catalog, op) {
                Ok(()) => report.applied += 1,
                Err(_) => report.failed += 1,
            }
            report.last_seq = report.last_seq.max(*seq);
        }
        if report.applied > 0 {
            sensormeta_cache::clock().bump(sensormeta_cache::Domain::Relational);
            obs::counter("relstore_shipped_ops_total").add(report.applied);
        }
        report
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.catalog
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| RelError::NoSuchTable(name.to_owned()))
    }

    /// Mutable access to a table. Bumps the relational cache epoch — the
    /// caller may mutate through the returned reference.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        sensormeta_cache::clock().bump(sensormeta_cache::Domain::Relational);
        self.catalog
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RelError::NoSuchTable(name.to_owned()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .values()
            .map(|t| t.schema.name.clone())
            .collect()
    }

    /// Deep structural check (fsck) of every table: heap layout, index tree
    /// shape, and heap ↔ index agreement. Returns every violated invariant,
    /// prefixed with the table name.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for name in self.table_names() {
            if let Ok(table) = self.table(&name) {
                if let Err(table_problems) = table.check_invariants() {
                    problems.extend(table_problems.into_iter().map(|p| format!("{name}: {p}")));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// True if a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.contains_key(&name.to_ascii_lowercase())
    }

    // ---------- snapshot persistence ----------

    const MAGIC: &'static [u8; 8] = b"SMRELST1";

    /// Serializes the whole database into a byte buffer.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        write_varint(&mut out, self.catalog.len() as u64);
        for table in self.catalog.values() {
            write_str(&mut out, &table.schema.name);
            write_varint(&mut out, table.schema.columns.len() as u64);
            for c in &table.schema.columns {
                write_str(&mut out, &c.name);
                out.push(type_tag(c.ty));
                out.push(
                    u8::from(c.not_null)
                        | (u8::from(c.unique) << 1)
                        | (u8::from(c.primary_key) << 2),
                );
            }
            let defs: Vec<&IndexDef> = table.index_defs().collect();
            write_varint(&mut out, defs.len() as u64);
            for d in defs {
                write_str(&mut out, &d.name);
                // Kind byte doubles as the historical `unique` flag:
                // 0 = btree, 1 = btree unique, 2 = trigram. Old snapshots
                // (0/1 only) decode unchanged.
                out.push(match d.kind {
                    IndexKind::BTree => u8::from(d.unique),
                    IndexKind::Trigram => 2,
                });
                write_varint(&mut out, d.columns.len() as u64);
                for &c in &d.columns {
                    write_varint(&mut out, c as u64);
                }
            }
            let heap = table.heap().to_snapshot();
            write_varint(&mut out, heap.len() as u64);
            out.extend_from_slice(&heap);
        }
        out
    }

    /// Restores a database from snapshot bytes.
    pub fn from_snapshot(buf: &[u8]) -> Result<Database> {
        if buf.len() < 8 || &buf[..8] != Self::MAGIC {
            return Err(RelError::Snapshot("bad magic".into()));
        }
        let mut pos = 8usize;
        let ntables = read_varint(buf, &mut pos)? as usize;
        let mut catalog = Catalog::new();
        for _ in 0..ntables {
            let name = read_str(buf, &mut pos)?;
            let ncols = read_varint(buf, &mut pos)? as usize;
            let mut cols = Vec::with_capacity(ncols.min(4096));
            for _ in 0..ncols {
                let cname = read_str(buf, &mut pos)?;
                let ty = untag_type(next_byte(buf, &mut pos)?)?;
                let flags = next_byte(buf, &mut pos)?;
                cols.push(Column {
                    name: cname,
                    ty,
                    not_null: flags & 1 != 0,
                    unique: flags & 2 != 0,
                    primary_key: flags & 4 != 0,
                });
            }
            let schema = TableSchema::new(name.clone(), cols)?;
            let ndefs = read_varint(buf, &mut pos)? as usize;
            let mut defs = Vec::with_capacity(ndefs.min(4096));
            for _ in 0..ndefs {
                let dname = read_str(buf, &mut pos)?;
                let (unique, kind) = match next_byte(buf, &mut pos)? {
                    0 => (false, IndexKind::BTree),
                    1 => (true, IndexKind::BTree),
                    2 => (false, IndexKind::Trigram),
                    other => {
                        return Err(RelError::Snapshot(format!(
                            "unknown index kind byte {other}"
                        )))
                    }
                };
                let nc = read_varint(buf, &mut pos)? as usize;
                let mut columns = Vec::with_capacity(nc.min(4096));
                for _ in 0..nc {
                    columns.push(read_varint(buf, &mut pos)? as usize);
                }
                defs.push(IndexDef {
                    name: dname,
                    unique,
                    columns,
                    kind,
                });
            }
            let hlen = read_varint(buf, &mut pos)? as usize;
            let end = pos
                .checked_add(hlen)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| RelError::Snapshot("heap length out of bounds".into()))?;
            let mut hpos = pos;
            let heap = Heap::from_snapshot(buf, &mut hpos)?;
            if hpos != end {
                return Err(RelError::Snapshot("heap length mismatch".into()));
            }
            pos = end;
            let table = Table::restore(schema, heap, defs)?;
            catalog.insert(name.to_ascii_lowercase(), table);
        }
        Ok(Database {
            catalog,
            durability: None,
        })
    }

    /// Writes a snapshot file durably: temp file, fsync, atomic rename,
    /// parent-directory fsync. A crash at any point leaves either the old
    /// or the new snapshot fully intact.
    pub fn save(&self, path: &Path) -> Result<()> {
        self.save_with(&StdVfs, path)
    }

    /// [`Database::save`] through an explicit VFS — the fault-injection
    /// entry point.
    pub fn save_with(&self, vfs: &dyn Vfs, path: &Path) -> Result<()> {
        let mut bytes = self.to_snapshot();
        append_seq_trailer(&mut bytes, self.committed_seq());
        write_snapshot_durably(vfs, path, &bytes)
    }

    /// Loads a snapshot file.
    pub fn load(path: &Path) -> Result<Database> {
        let bytes = std::fs::read(path)
            .map_err(|e| RelError::Snapshot(format!("read {}: {e}", path.display())))?;
        Database::from_snapshot(&bytes)
    }

    /// A canonical logical dump: for each table (sorted by name), its rows
    /// encoded and byte-sorted. Two databases with identical logical
    /// contents produce identical dumps regardless of heap layout or row
    /// order — the equivalence check the crash harness uses against its
    /// in-memory oracle.
    pub fn logical_dump(&self) -> Vec<(String, Vec<Vec<u8>>)> {
        self.catalog
            .iter()
            .map(|(name, table)| (name.clone(), table.sorted_encoded_rows()))
            .collect()
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
    }
}

fn untag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Boolean,
        other => return Err(RelError::Snapshot(format!("bad type tag {other}"))),
    })
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| RelError::Snapshot("string out of bounds".into()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| RelError::Snapshot("invalid utf-8".into()))?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn next_byte(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| RelError::Snapshot("unexpected end of snapshot".into()))?;
    *pos += 1;
    Ok(b)
}
