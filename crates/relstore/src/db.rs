//! The `Database` facade: catalog + SQL entry points + snapshot persistence.

use crate::encoding::{read_varint, write_varint};
use crate::error::{RelError, Result};
use crate::heap::Heap;
use crate::schema::{Column, TableSchema};
use crate::sql::ast::Statement;
use crate::sql::exec::{execute, execute_select, explain_select, Catalog, ExecOutcome, ResultSet};
use crate::sql::parser::{parse, parse_script};
use crate::table::{IndexDef, Table};
use crate::value::{DataType, Value};
use std::path::Path;

/// An embedded relational database: a catalog of tables with SQL access.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        execute(&mut self.catalog, stmt)
    }

    /// Executes a semicolon-separated script, returning the last outcome.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmts = parse_script(sql)?;
        let mut last = ExecOutcome::Done;
        for stmt in stmts {
            last = execute(&mut self.catalog, stmt)?;
        }
        Ok(last)
    }

    /// Runs a SELECT (or EXPLAIN SELECT) without requiring mutable access.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        match parse(sql)? {
            Statement::Select(sel) => execute_select(&self.catalog, &sel),
            Statement::Explain(sel) => explain_select(&self.catalog, &sel),
            other => Err(RelError::Exec(format!(
                "query() only accepts SELECT, got {other:?}"
            ))),
        }
    }

    /// Convenience: runs a SELECT and returns the first value of the first
    /// row, if any.
    pub fn query_scalar(&self, sql: &str) -> Result<Option<Value>> {
        let rs = self.query(sql)?;
        Ok(rs
            .rows
            .into_iter()
            .next()
            .and_then(|r| r.into_iter().next()))
    }

    /// Programmatic table creation (bypasses SQL).
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.catalog.contains_key(&key) {
            return Err(RelError::TableExists(schema.name));
        }
        self.catalog.insert(key, Table::create(schema)?);
        Ok(())
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.catalog
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| RelError::NoSuchTable(name.to_owned()))
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.catalog
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RelError::NoSuchTable(name.to_owned()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .values()
            .map(|t| t.schema.name.clone())
            .collect()
    }

    /// Deep structural check (fsck) of every table: heap layout, index tree
    /// shape, and heap ↔ index agreement. Returns every violated invariant,
    /// prefixed with the table name.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for name in self.table_names() {
            if let Ok(table) = self.table(&name) {
                if let Err(table_problems) = table.check_invariants() {
                    problems.extend(table_problems.into_iter().map(|p| format!("{name}: {p}")));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// True if a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.contains_key(&name.to_ascii_lowercase())
    }

    // ---------- snapshot persistence ----------

    const MAGIC: &'static [u8; 8] = b"SMRELST1";

    /// Serializes the whole database into a byte buffer.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        write_varint(&mut out, self.catalog.len() as u64);
        for table in self.catalog.values() {
            write_str(&mut out, &table.schema.name);
            write_varint(&mut out, table.schema.columns.len() as u64);
            for c in &table.schema.columns {
                write_str(&mut out, &c.name);
                out.push(type_tag(c.ty));
                out.push(
                    u8::from(c.not_null)
                        | (u8::from(c.unique) << 1)
                        | (u8::from(c.primary_key) << 2),
                );
            }
            let defs: Vec<&IndexDef> = table.index_defs().collect();
            write_varint(&mut out, defs.len() as u64);
            for d in defs {
                write_str(&mut out, &d.name);
                out.push(u8::from(d.unique));
                write_varint(&mut out, d.columns.len() as u64);
                for &c in &d.columns {
                    write_varint(&mut out, c as u64);
                }
            }
            let heap = table.heap().to_snapshot();
            write_varint(&mut out, heap.len() as u64);
            out.extend_from_slice(&heap);
        }
        out
    }

    /// Restores a database from snapshot bytes.
    pub fn from_snapshot(buf: &[u8]) -> Result<Database> {
        if buf.len() < 8 || &buf[..8] != Self::MAGIC {
            return Err(RelError::Snapshot("bad magic".into()));
        }
        let mut pos = 8usize;
        let ntables = read_varint(buf, &mut pos)? as usize;
        let mut catalog = Catalog::new();
        for _ in 0..ntables {
            let name = read_str(buf, &mut pos)?;
            let ncols = read_varint(buf, &mut pos)? as usize;
            let mut cols = Vec::with_capacity(ncols.min(4096));
            for _ in 0..ncols {
                let cname = read_str(buf, &mut pos)?;
                let ty = untag_type(next_byte(buf, &mut pos)?)?;
                let flags = next_byte(buf, &mut pos)?;
                cols.push(Column {
                    name: cname,
                    ty,
                    not_null: flags & 1 != 0,
                    unique: flags & 2 != 0,
                    primary_key: flags & 4 != 0,
                });
            }
            let schema = TableSchema::new(name.clone(), cols)?;
            let ndefs = read_varint(buf, &mut pos)? as usize;
            let mut defs = Vec::with_capacity(ndefs.min(4096));
            for _ in 0..ndefs {
                let dname = read_str(buf, &mut pos)?;
                let unique = next_byte(buf, &mut pos)? != 0;
                let nc = read_varint(buf, &mut pos)? as usize;
                let mut columns = Vec::with_capacity(nc.min(4096));
                for _ in 0..nc {
                    columns.push(read_varint(buf, &mut pos)? as usize);
                }
                defs.push(IndexDef {
                    name: dname,
                    unique,
                    columns,
                });
            }
            let hlen = read_varint(buf, &mut pos)? as usize;
            let end = pos
                .checked_add(hlen)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| RelError::Snapshot("heap length out of bounds".into()))?;
            let mut hpos = pos;
            let heap = Heap::from_snapshot(buf, &mut hpos)?;
            if hpos != end {
                return Err(RelError::Snapshot("heap length mismatch".into()));
            }
            pos = end;
            let table = Table::restore(schema, heap, defs)?;
            catalog.insert(name.to_ascii_lowercase(), table);
        }
        Ok(Database { catalog })
    }

    /// Writes a snapshot file atomically (write-to-temp + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        let bytes = self.to_snapshot();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| RelError::Snapshot(format!("write {}: {e}", path.display())))
    }

    /// Loads a snapshot file.
    pub fn load(path: &Path) -> Result<Database> {
        let bytes = std::fs::read(path)
            .map_err(|e| RelError::Snapshot(format!("read {}: {e}", path.display())))?;
        Database::from_snapshot(&bytes)
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
    }
}

fn untag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Boolean,
        other => return Err(RelError::Snapshot(format!("bad type tag {other}"))),
    })
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| RelError::Snapshot("string out of bounds".into()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| RelError::Snapshot("invalid utf-8".into()))?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn next_byte(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| RelError::Snapshot("unexpected end of snapshot".into()))?;
    *pos += 1;
    Ok(b)
}
