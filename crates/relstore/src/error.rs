//! Error types for the relational storage engine.

use std::fmt;

/// All errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table with the given name already exists.
    TableExists(String),
    /// The named table does not exist.
    NoSuchTable(String),
    /// An index with the given name already exists.
    IndexExists(String),
    /// The named index does not exist.
    NoSuchIndex(String),
    /// The named column does not exist in the referenced table.
    NoSuchColumn(String),
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column the value was destined for.
        column: String,
        /// Declared type of the column.
        expected: String,
        /// Actual value encountered.
        found: String,
    },
    /// A NOT NULL column received a NULL value.
    NullViolation(String),
    /// A UNIQUE or PRIMARY KEY constraint was violated.
    UniqueViolation {
        /// The index/constraint that was violated.
        index: String,
        /// Rendered key that collided.
        key: String,
    },
    /// Row arity didn't match the table schema.
    ArityMismatch {
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// SQL lexing failed.
    Lex(String),
    /// SQL parsing failed.
    Parse(String),
    /// Query planning or execution failed.
    Exec(String),
    /// Snapshot (de)serialization failed.
    Snapshot(String),
    /// Underlying file I/O failed (rendered message; kept as a string so
    /// the error stays `Clone + PartialEq`).
    Io(String),
    /// Write-ahead log framing, checksum, or replay failure.
    Wal(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::TableExists(t) => write!(f, "table `{t}` already exists"),
            RelError::NoSuchTable(t) => write!(f, "no such table: `{t}`"),
            RelError::IndexExists(i) => write!(f, "index `{i}` already exists"),
            RelError::NoSuchIndex(i) => write!(f, "no such index: `{i}`"),
            RelError::NoSuchColumn(c) => write!(f, "no such column: `{c}`"),
            RelError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, found {found}"
            ),
            RelError::NullViolation(c) => {
                write!(f, "NULL value in NOT NULL column `{c}`")
            }
            RelError::UniqueViolation { index, key } => {
                write!(f, "unique constraint `{index}` violated by key {key}")
            }
            RelError::ArityMismatch { expected, found } => {
                write!(f, "row has {found} values but table has {expected} columns")
            }
            RelError::Lex(m) => write!(f, "lex error: {m}"),
            RelError::Parse(m) => write!(f, "parse error: {m}"),
            RelError::Exec(m) => write!(f, "execution error: {m}"),
            RelError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            RelError::Io(m) => write!(f, "i/o error: {m}"),
            RelError::Wal(m) => write!(f, "wal error: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelError>;
