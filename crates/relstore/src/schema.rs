//! Table schemas: columns, types, and constraints.

use crate::error::{RelError, Result};
use crate::value::{DataType, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-preserving; lookups are case-insensitive).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// UNIQUE constraint (enforced through an implicit index).
    pub unique: bool,
    /// PRIMARY KEY marker (implies NOT NULL + UNIQUE).
    pub primary_key: bool,
}

impl Column {
    /// Creates a plain nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            not_null: false,
            unique: false,
            primary_key: false,
        }
    }

    /// Marks the column NOT NULL.
    pub fn not_null(mut self) -> Column {
        self.not_null = true;
        self
    }

    /// Marks the column UNIQUE.
    pub fn unique(mut self) -> Column {
        self.unique = true;
        self
    }

    /// Marks the column PRIMARY KEY (implies NOT NULL and UNIQUE).
    pub fn primary_key(mut self) -> Column {
        self.primary_key = true;
        self.not_null = true;
        self.unique = true;
        self
    }
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Creates a schema, validating that column names are distinct
    /// (case-insensitively) and at most one primary key exists.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<TableSchema> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        let mut pk_count = 0usize;
        for c in &columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(RelError::Parse(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
            if c.primary_key {
                pk_count += 1;
            }
        }
        if pk_count > 1 {
            return Err(RelError::Parse(format!(
                "table `{name}` declares {pk_count} primary keys"
            )));
        }
        Ok(TableSchema { name, columns })
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validates a row against this schema and coerces values
    /// (int → float promotion). Returns the coerced row.
    pub fn validate_row(&self, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(RelError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.columns) {
            if v.is_null() {
                if col.not_null {
                    return Err(RelError::NullViolation(col.name.clone()));
                }
                out.push(Value::Null);
                continue;
            }
            if !v.compatible_with(col.ty) {
                return Err(RelError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    found: format!("{v:?}"),
                });
            }
            out.push(v.coerce(col.ty));
        }
        Ok(out)
    }

    /// Columns that need implicit unique indexes (primary key + UNIQUE).
    pub fn unique_columns(&self) -> impl Iterator<Item = (usize, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique || c.primary_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "sensors",
            vec![
                Column::new("id", DataType::Integer).primary_key(),
                Column::new("name", DataType::Text).not_null(),
                Column::new("lat", DataType::Float),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Integer),
                Column::new("A", DataType::Text),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RelError::Parse(_)));
    }

    #[test]
    fn double_primary_key_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Integer).primary_key(),
                Column::new("b", DataType::Integer).primary_key(),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RelError::Parse(_)));
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = schema();
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn validate_coerces_int_into_float() {
        let s = schema();
        let row = s
            .validate_row(vec![Value::Int(1), Value::text("a"), Value::Int(46)])
            .unwrap();
        assert_eq!(row[2], Value::Float(46.0));
    }

    #[test]
    fn validate_rejects_null_pk() {
        let s = schema();
        let err = s
            .validate_row(vec![Value::Null, Value::text("a"), Value::Null])
            .unwrap_err();
        assert!(matches!(err, RelError::NullViolation(_)));
    }

    #[test]
    fn validate_rejects_wrong_arity_and_type() {
        let s = schema();
        assert!(matches!(
            s.validate_row(vec![Value::Int(1)]).unwrap_err(),
            RelError::ArityMismatch { .. }
        ));
        assert!(matches!(
            s.validate_row(vec![Value::text("x"), Value::text("a"), Value::Null])
                .unwrap_err(),
            RelError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn unique_columns_include_pk() {
        let s = schema();
        let uniq: Vec<_> = s.unique_columns().map(|(i, _)| i).collect();
        assert_eq!(uniq, vec![0]);
    }
}
