//! A table: schema + heap storage + maintained indexes.

use crate::btree::BTreeIndex;
use crate::encoding::{decode_row, encode_row};
use crate::error::{RelError, Result};
use crate::heap::{Heap, RowId};
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Definition of one secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (unique across the database).
    pub name: String,
    /// Column positions forming the composite key.
    pub columns: Vec<usize>,
    /// Uniqueness constraint.
    pub unique: bool,
}

/// A table with its storage and indexes.
///
/// Cloning a table is a structural copy-on-write clone: the heap shares
/// its pages and every index tree is shared behind an `Arc` until the
/// clone's owner mutates it. This is what makes MVCC reader versions
/// cheap to publish.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    heap: Heap,
    /// Indexes by name. BTreeMap keeps snapshot output deterministic.
    indexes: BTreeMap<String, (IndexDef, Arc<BTreeIndex>)>,
}

impl Table {
    /// Creates an empty table, materializing implicit unique indexes for
    /// PRIMARY KEY / UNIQUE columns.
    pub fn create(schema: TableSchema) -> Result<Table> {
        let mut table = Table {
            heap: Heap::new(),
            indexes: BTreeMap::new(),
            schema,
        };
        let implicit: Vec<IndexDef> = table
            .schema
            .unique_columns()
            .map(|(ix, col)| IndexDef {
                name: format!(
                    "{}_{}_unique",
                    table.schema.name,
                    col.name.to_ascii_lowercase()
                ),
                columns: vec![ix],
                unique: true,
            })
            .collect();
        for def in implicit {
            table.create_index(def)?;
        }
        Ok(table)
    }

    /// Adds an index, backfilling it from existing rows.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if self.indexes.contains_key(&def.name) {
            return Err(RelError::IndexExists(def.name));
        }
        for &c in &def.columns {
            if c >= self.schema.arity() {
                return Err(RelError::NoSuchColumn(format!("#{c}")));
            }
        }
        let mut index = BTreeIndex::new(def.unique);
        for (rid, rec) in self.heap.scan() {
            let mut pos = 0;
            let row = decode_row(rec, &mut pos)?;
            let key = def.columns.iter().map(|&c| row[c].clone()).collect();
            index
                .insert(key, rid)
                .map_err(|e| named_violation(e, &def.name))?;
        }
        self.indexes
            .insert(def.name.clone(), (def, Arc::new(index)));
        Ok(())
    }

    /// Drops an index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        self.indexes
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RelError::NoSuchIndex(name.to_owned()))
    }

    /// Names of indexes on this table.
    pub fn index_names(&self) -> impl Iterator<Item = &str> {
        self.indexes.keys().map(String::as_str)
    }

    /// Returns an index (definition and tree) by the first matching leading
    /// column, preferring unique indexes — used by the planner.
    pub fn index_on_column(&self, col: usize) -> Option<(&IndexDef, &BTreeIndex)> {
        let mut best: Option<(&IndexDef, &BTreeIndex)> = None;
        for (def, ix) in self.indexes.values() {
            if def.columns.first() == Some(&col) {
                let better = match best {
                    None => true,
                    Some((bdef, _)) => def.unique && !bdef.unique,
                };
                if better {
                    best = Some((def, ix.as_ref()));
                }
            }
        }
        best
    }

    /// Inserts a row (validated + coerced), maintaining all indexes.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId> {
        let row = self.schema.validate_row(row)?;
        // Check unique constraints before touching storage so a violation
        // leaves the table unchanged.
        for (def, index) in self.indexes.values() {
            if def.unique {
                let key: Vec<Value> = def.columns.iter().map(|&c| row[c].clone()).collect();
                if index.get_one(&key).is_some() {
                    return Err(RelError::UniqueViolation {
                        index: def.name.clone(),
                        key: format!("{key:?}"),
                    });
                }
            }
        }
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let rid = self.heap.insert(&buf)?;
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| row[c].clone()).collect();
            Arc::make_mut(index)
                .insert(key, rid)
                .map_err(|e| named_violation(e, &def.name))?;
        }
        Ok(rid)
    }

    /// Fetches and decodes a row.
    pub fn get(&self, rid: RowId) -> Result<Option<Vec<Value>>> {
        match self.heap.get(rid) {
            None => Ok(None),
            Some(rec) => {
                let mut pos = 0;
                Ok(Some(decode_row(rec, &mut pos)?))
            }
        }
    }

    /// Deletes a row, maintaining indexes. Returns true if it was live.
    pub fn delete(&mut self, rid: RowId) -> Result<bool> {
        let Some(row) = self.get(rid)? else {
            return Ok(false);
        };
        self.heap.delete(rid);
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| row[c].clone()).collect();
            Arc::make_mut(index).remove(&key, rid);
        }
        Ok(true)
    }

    /// Replaces a row in place (delete + insert keeping constraints).
    pub fn update(&mut self, rid: RowId, new_row: Vec<Value>) -> Result<RowId> {
        let new_row = self.schema.validate_row(new_row)?;
        let Some(old_row) = self.get(rid)? else {
            return Err(RelError::Exec("update of missing row".into()));
        };
        // Unique pre-check, ignoring our own entry.
        for (def, index) in self.indexes.values() {
            if def.unique {
                let key: Vec<Value> = def.columns.iter().map(|&c| new_row[c].clone()).collect();
                if let Some(existing) = index.get_one(&key) {
                    if existing != rid {
                        return Err(RelError::UniqueViolation {
                            index: def.name.clone(),
                            key: format!("{key:?}"),
                        });
                    }
                }
            }
        }
        self.heap.delete(rid);
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| old_row[c].clone()).collect();
            Arc::make_mut(index).remove(&key, rid);
        }
        let mut buf = Vec::new();
        encode_row(&new_row, &mut buf);
        let new_rid = self.heap.insert(&buf)?;
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| new_row[c].clone()).collect();
            Arc::make_mut(index)
                .insert(key, new_rid)
                .map_err(|e| named_violation(e, &def.name))?;
        }
        Ok(new_rid)
    }

    /// Full scan of decoded rows. Every stored record was produced by
    /// `encode_row`, so decoding normally never fails; a record that does
    /// fail (heap corruption) is skipped rather than panicking the scan —
    /// `fsck` is the tool that reports it.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Vec<Value>)> + '_ {
        self.heap.scan().filter_map(|(rid, rec)| {
            let mut pos = 0;
            let row = decode_row(rec, &mut pos).ok()?;
            Some((rid, row))
        })
    }

    /// Every live row in encoded form, byte-sorted. Canonical for logical
    /// comparison: independent of heap placement and insertion order.
    pub fn sorted_encoded_rows(&self) -> Vec<Vec<u8>> {
        let mut rows: Vec<Vec<u8>> = self.heap.scan().map(|(_, rec)| rec.to_vec()).collect();
        rows.sort_unstable();
        rows
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Deep structural check (fsck): the heap's page layout, every index's
    /// tree shape, and heap ↔ index agreement — each index must hold exactly
    /// one entry per live row, keyed by that row's current column values.
    /// Returns every violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = self.heap.check_invariants().err().unwrap_or_default();
        let mut rows: Vec<(RowId, Vec<Value>)> = Vec::new();
        for (rid, rec) in self.heap.scan() {
            let mut pos = 0;
            match decode_row(rec, &mut pos) {
                Ok(row) => rows.push((rid, row)),
                Err(e) => problems.push(format!("row {rid:?} does not decode: {e}")),
            }
        }
        for (def, index) in self.indexes.values() {
            if let Err(index_problems) = index.check_invariants() {
                problems.extend(
                    index_problems
                        .into_iter()
                        .map(|p| format!("index {}: {p}", def.name)),
                );
            }
            if index.len() != rows.len() {
                problems.push(format!(
                    "index {} holds {} entries for {} live rows",
                    def.name,
                    index.len(),
                    rows.len()
                ));
            }
            for (rid, row) in &rows {
                let key: Vec<Value> = def.columns.iter().map(|&c| row[c].clone()).collect();
                if !index.get(&key).contains(rid) {
                    problems.push(format!(
                        "index {} is missing row {rid:?} under key {key:?}",
                        def.name
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    pub(crate) fn index_defs(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes.values().map(|(d, _)| d)
    }

    pub(crate) fn restore(schema: TableSchema, heap: Heap, defs: Vec<IndexDef>) -> Result<Table> {
        let mut table = Table {
            schema,
            heap,
            indexes: BTreeMap::new(),
        };
        for def in defs {
            table.create_index(def)?;
        }
        Ok(table)
    }
}

fn named_violation(e: RelError, name: &str) -> RelError {
    match e {
        RelError::UniqueViolation { key, .. } => RelError::UniqueViolation {
            index: name.to_owned(),
            key,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn sensors() -> Table {
        Table::create(
            TableSchema::new(
                "sensors",
                vec![
                    Column::new("id", DataType::Integer).primary_key(),
                    Column::new("name", DataType::Text).not_null(),
                    Column::new("station", DataType::Text),
                ],
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn implicit_pk_index_created() {
        let t = sensors();
        let names: Vec<_> = t.index_names().collect();
        assert_eq!(names, vec!["sensors_id_unique"]);
    }

    #[test]
    fn fsck_detects_corruption() {
        let mut t = sensors();
        for i in 0..50 {
            t.insert(vec![
                Value::Int(i),
                Value::text(format!("s{i}")),
                Value::text("wfj"),
            ])
            .unwrap();
        }
        assert_eq!(t.check_invariants(), Ok(()));

        // Delete a row behind the indexes' back: the heap shrinks but the
        // primary-key index still points at the dead row.
        let rid = t.scan().next().unwrap().0;
        t.heap.delete(rid);
        let problems = t.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("49 live rows")),
            "{problems:?}"
        );

        // Index entry keyed by stale column values.
        let mut t = sensors();
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Null])
            .unwrap();
        let rid = t.scan().next().unwrap().0;
        let (_, index) = t.indexes.get_mut("sensors_id_unique").unwrap();
        let index = Arc::make_mut(index);
        index.remove(&vec![Value::Int(1)], rid);
        index.insert(vec![Value::Int(99)], rid).unwrap();
        let problems = t.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("missing row")),
            "{problems:?}"
        );
    }

    #[test]
    fn insert_enforces_pk() {
        let mut t = sensors();
        t.insert(vec![1.into(), "t1".into(), "wfj".into()]).unwrap();
        let err = t
            .insert(vec![1.into(), "t2".into(), "wfj".into()])
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        assert_eq!(t.len(), 1, "failed insert must not leave a row behind");
    }

    #[test]
    fn secondary_index_backfills_and_maintains() {
        let mut t = sensors();
        for i in 0..50 {
            t.insert(vec![
                i.into(),
                format!("sensor{i}").into(),
                format!("station{}", i % 5).into(),
            ])
            .unwrap();
        }
        t.create_index(IndexDef {
            name: "by_station".into(),
            columns: vec![2],
            unique: false,
        })
        .unwrap();
        let (_, ix) = t.index_on_column(2).unwrap();
        assert_eq!(ix.get(&vec!["station0".into()]).len(), 10);
        // Maintained on subsequent inserts.
        t.insert(vec![100.into(), "extra".into(), "station0".into()])
            .unwrap();
        let (_, ix) = t.index_on_column(2).unwrap();
        assert_eq!(ix.get(&vec!["station0".into()]).len(), 11);
    }

    #[test]
    fn delete_cleans_indexes() {
        let mut t = sensors();
        let rid = t.insert(vec![1.into(), "a".into(), Value::Null]).unwrap();
        assert!(t.delete(rid).unwrap());
        assert!(!t.delete(rid).unwrap());
        // Key is free again.
        t.insert(vec![1.into(), "b".into(), Value::Null]).unwrap();
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = sensors();
        let rid = t.insert(vec![1.into(), "a".into(), Value::Null]).unwrap();
        let new_rid = t
            .update(rid, vec![2.into(), "a2".into(), Value::Null])
            .unwrap();
        assert!(t.get(rid).unwrap().is_none() || rid == new_rid);
        let (_, ix) = t.index_on_column(0).unwrap();
        assert!(ix.get(&vec![Value::Int(1)]).is_empty());
        assert_eq!(ix.get_one(&vec![Value::Int(2)]), Some(new_rid));
    }

    #[test]
    fn update_unique_conflict_detected() {
        let mut t = sensors();
        t.insert(vec![1.into(), "a".into(), Value::Null]).unwrap();
        let rid2 = t.insert(vec![2.into(), "b".into(), Value::Null]).unwrap();
        let err = t
            .update(rid2, vec![1.into(), "b".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = sensors();
        let def = IndexDef {
            name: "dup".into(),
            columns: vec![1],
            unique: false,
        };
        t.create_index(def.clone()).unwrap();
        assert!(matches!(
            t.create_index(def).unwrap_err(),
            RelError::IndexExists(_)
        ));
    }

    #[test]
    fn backfill_unique_violation_fails_creation() {
        let mut t = sensors();
        t.insert(vec![1.into(), "same".into(), Value::Null])
            .unwrap();
        t.insert(vec![2.into(), "same".into(), Value::Null])
            .unwrap();
        let err = t
            .create_index(IndexDef {
                name: "name_unique".into(),
                columns: vec![1],
                unique: true,
            })
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        assert!(t.index_on_column(1).is_none());
    }
}
