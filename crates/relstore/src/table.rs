//! A table: schema + heap storage + maintained indexes + statistics.

use crate::btree::BTreeIndex;
use crate::encoding::{decode_row, encode_row};
use crate::error::{RelError, Result};
use crate::heap::{Heap, RowId};
use crate::schema::TableSchema;
use crate::trigram::TrigramIndex;
use crate::value::{DataType, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Kind of secondary index: ordered B-tree over column values, or a trigram
/// posting index over a single text column for substring predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ordered composite-key index (equality + range seeks).
    BTree,
    /// Trigram posting index (LIKE `'%substr%'` / ILIKE candidates).
    Trigram,
}

/// Definition of one secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (unique across the database).
    pub name: String,
    /// Column positions forming the composite key.
    pub columns: Vec<usize>,
    /// Uniqueness constraint.
    pub unique: bool,
    /// Index structure.
    pub kind: IndexKind,
}

impl IndexDef {
    /// A B-tree index definition.
    pub fn btree(name: impl Into<String>, columns: Vec<usize>, unique: bool) -> IndexDef {
        IndexDef {
            name: name.into(),
            columns,
            unique,
            kind: IndexKind::BTree,
        }
    }

    /// A trigram index definition over one text column.
    pub fn trigram(name: impl Into<String>, column: usize) -> IndexDef {
        IndexDef {
            name: name.into(),
            columns: vec![column],
            unique: false,
            kind: IndexKind::Trigram,
        }
    }
}

/// Number of equi-depth histogram boundaries kept per column.
const HISTOGRAM_BUCKETS: usize = 16;

/// Per-column statistics: distinct/null counts plus an equi-depth histogram
/// (sorted bucket boundaries over non-null values).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values at the last rebuild.
    pub distinct: usize,
    /// Number of NULLs at the last rebuild.
    pub nulls: usize,
    /// Sorted equi-depth bucket boundaries (empty for an empty column).
    pub histogram: Vec<Value>,
}

impl ColumnStats {
    /// Estimated fraction of rows matching an equality predicate:
    /// uniform-distribution assumption, `1 / distinct`.
    pub fn eq_fraction(&self) -> f64 {
        if self.distinct == 0 {
            1.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// Estimated fraction of non-null values `< v` (or `<= v` when
    /// `inclusive`), read off the histogram. `0.5` when no histogram exists.
    pub fn fraction_below(&self, v: &Value, inclusive: bool) -> f64 {
        if self.histogram.is_empty() {
            return 0.5;
        }
        let pos = if inclusive {
            self.histogram.partition_point(|b| b <= v)
        } else {
            self.histogram.partition_point(|b| b < v)
        };
        pos as f64 / self.histogram.len() as f64
    }

    /// Estimated fraction of rows inside a (possibly half-open) range.
    /// Bounds are `(value, inclusive)`.
    pub fn range_fraction(&self, lo: Option<(&Value, bool)>, hi: Option<(&Value, bool)>) -> f64 {
        let hi_f = hi.map_or(1.0, |(v, incl)| self.fraction_below(v, incl));
        let lo_f = lo.map_or(0.0, |(v, incl)| self.fraction_below(v, !incl));
        (hi_f - lo_f).clamp(0.0, 1.0)
    }
}

/// Table-level statistics snapshot, rebuilt amortizedly on mutation. Lives
/// inside [`Table`], so MVCC reader versions snapshot it for free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Live row count at the last rebuild (the planner uses the exact live
    /// count from the heap; this anchors histogram fractions).
    pub rows: usize,
    /// Per-column statistics, one entry per schema column.
    pub columns: Vec<ColumnStats>,
}

/// Equi-depth boundaries of a sorted, non-empty value slice.
fn equi_depth_boundaries(sorted: &[Value]) -> Vec<Value> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let buckets = HISTOGRAM_BUCKETS.min(sorted.len());
    let mut out = Vec::with_capacity(buckets + 1);
    for i in 0..=buckets {
        let ix = (i * (sorted.len() - 1)) / buckets;
        out.push(sorted[ix].clone());
    }
    out.dedup();
    out
}

/// A table with its storage and indexes.
///
/// Cloning a table is a structural copy-on-write clone: the heap shares
/// its pages and every index tree is shared behind an `Arc` until the
/// clone's owner mutates it. This is what makes MVCC reader versions
/// cheap to publish.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    heap: Heap,
    /// B-tree indexes by name. BTreeMap keeps snapshot output deterministic.
    indexes: BTreeMap<String, (IndexDef, Arc<BTreeIndex>)>,
    /// Trigram indexes by name, kept apart so B-tree maintenance loops and
    /// unique checks stay untouched.
    trigrams: BTreeMap<String, (IndexDef, Arc<TrigramIndex>)>,
    /// Planner statistics, rebuilt amortizedly (see `record_mutation`).
    stats: TableStats,
    /// Mutations since the last stats rebuild.
    stale_mutations: usize,
}

impl Table {
    /// Creates an empty table, materializing implicit unique indexes for
    /// PRIMARY KEY / UNIQUE columns.
    pub fn create(schema: TableSchema) -> Result<Table> {
        let mut table = Table {
            heap: Heap::new(),
            indexes: BTreeMap::new(),
            trigrams: BTreeMap::new(),
            stats: TableStats::default(),
            stale_mutations: 0,
            schema,
        };
        let implicit: Vec<IndexDef> = table
            .schema
            .unique_columns()
            .map(|(ix, col)| {
                IndexDef::btree(
                    format!(
                        "{}_{}_unique",
                        table.schema.name,
                        col.name.to_ascii_lowercase()
                    ),
                    vec![ix],
                    true,
                )
            })
            .collect();
        for def in implicit {
            table.create_index(def)?;
        }
        table.rebuild_stats();
        Ok(table)
    }

    /// Adds an index, backfilling it from existing rows.
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if self.indexes.contains_key(&def.name) || self.trigrams.contains_key(&def.name) {
            return Err(RelError::IndexExists(def.name));
        }
        for &c in &def.columns {
            if c >= self.schema.arity() {
                return Err(RelError::NoSuchColumn(format!("#{c}")));
            }
        }
        match def.kind {
            IndexKind::BTree => {
                let mut index = BTreeIndex::new(def.unique);
                for (rid, rec) in self.heap.scan() {
                    let mut pos = 0;
                    let row = decode_row(rec, &mut pos)?;
                    let key = def.columns.iter().map(|&c| row[c].clone()).collect();
                    index
                        .insert(key, rid)
                        .map_err(|e| named_violation(e, &def.name))?;
                }
                self.indexes
                    .insert(def.name.clone(), (def, Arc::new(index)));
            }
            IndexKind::Trigram => {
                if def.unique {
                    return Err(RelError::Exec(format!(
                        "trigram index `{}` cannot be UNIQUE",
                        def.name
                    )));
                }
                let [col] = def.columns[..] else {
                    return Err(RelError::Exec(format!(
                        "trigram index `{}` must cover exactly one column",
                        def.name
                    )));
                };
                if self.schema.columns[col].ty != DataType::Text {
                    return Err(RelError::Exec(format!(
                        "trigram index `{}` requires a TEXT column",
                        def.name
                    )));
                }
                let mut index = TrigramIndex::new();
                for (rid, rec) in self.heap.scan() {
                    let mut pos = 0;
                    let row = decode_row(rec, &mut pos)?;
                    if let Value::Text(s) = &row[col] {
                        index.insert(s, rid);
                    }
                }
                self.trigrams
                    .insert(def.name.clone(), (def, Arc::new(index)));
            }
        }
        Ok(())
    }

    /// Drops an index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        if self.indexes.remove(name).is_some() || self.trigrams.remove(name).is_some() {
            Ok(())
        } else {
            Err(RelError::NoSuchIndex(name.to_owned()))
        }
    }

    /// Names of indexes on this table (B-tree first, then trigram).
    pub fn index_names(&self) -> impl Iterator<Item = &str> {
        self.indexes
            .keys()
            .chain(self.trigrams.keys())
            .map(String::as_str)
    }

    /// Returns a single-column index (definition and tree) covering exactly
    /// `col`, preferring unique indexes — used by the planner. Multi-column
    /// indexes are excluded: probing their composite keys with a one-value
    /// key would miss rows rather than over-approximate.
    pub fn index_on_column(&self, col: usize) -> Option<(&IndexDef, &BTreeIndex)> {
        let mut best: Option<(&IndexDef, &BTreeIndex)> = None;
        for (def, ix) in self.indexes.values() {
            if def.columns[..] == [col] {
                let better = match best {
                    None => true,
                    Some((bdef, _)) => def.unique && !bdef.unique,
                };
                if better {
                    best = Some((def, ix.as_ref()));
                }
            }
        }
        best
    }

    /// Returns the trigram index covering `col`, if any — used by the
    /// planner for substring predicates.
    pub fn trigram_on_column(&self, col: usize) -> Option<(&IndexDef, &TrigramIndex)> {
        self.trigrams
            .values()
            .find(|(def, _)| def.columns.first() == Some(&col))
            .map(|(def, ix)| (def, ix.as_ref()))
    }

    /// Planner statistics as of the last rebuild.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Rebuilds per-column statistics with a full scan.
    pub fn rebuild_stats(&mut self) {
        let arity = self.schema.arity();
        let mut cols: Vec<Vec<Value>> = vec![Vec::new(); arity];
        let mut nulls = vec![0usize; arity];
        let mut rows = 0usize;
        for (_, row) in self.scan() {
            rows += 1;
            for (c, v) in row.into_iter().enumerate() {
                if v.is_null() {
                    nulls[c] += 1;
                } else {
                    cols[c].push(v);
                }
            }
        }
        let columns = cols
            .into_iter()
            .zip(nulls)
            .map(|(mut vals, nulls)| {
                vals.sort_unstable();
                let mut distinct = 0usize;
                let mut prev: Option<&Value> = None;
                for v in &vals {
                    if prev != Some(v) {
                        distinct += 1;
                    }
                    prev = Some(v);
                }
                ColumnStats {
                    distinct,
                    nulls,
                    histogram: equi_depth_boundaries(&vals),
                }
            })
            .collect();
        self.stats = TableStats { rows, columns };
        self.stale_mutations = 0;
    }

    /// Amortized stats maintenance: rebuild once enough mutations pile up
    /// relative to table size, so per-mutation cost stays O(1) amortized.
    fn record_mutation(&mut self) {
        self.stale_mutations += 1;
        if self.stale_mutations >= 16.max(self.stats.rows / 4) {
            self.rebuild_stats();
        }
    }

    /// Maintains trigram indexes for one row entering (`add = true`) or
    /// leaving (`add = false`) the table.
    fn maintain_trigrams(&mut self, row: &[Value], rid: RowId, add: bool) {
        for (def, index) in self.trigrams.values_mut() {
            if let Value::Text(s) = &row[def.columns[0]] {
                let index = Arc::make_mut(index);
                if add {
                    index.insert(s, rid);
                } else {
                    index.remove(s, rid);
                }
            }
        }
    }

    /// Inserts a row (validated + coerced), maintaining all indexes.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId> {
        let row = self.schema.validate_row(row)?;
        // Check unique constraints before touching storage so a violation
        // leaves the table unchanged.
        for (def, index) in self.indexes.values() {
            if def.unique {
                let key: Vec<Value> = def.columns.iter().map(|&c| row[c].clone()).collect();
                if index.get_one(&key).is_some() {
                    return Err(RelError::UniqueViolation {
                        index: def.name.clone(),
                        key: format!("{key:?}"),
                    });
                }
            }
        }
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let rid = self.heap.insert(&buf)?;
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| row[c].clone()).collect();
            Arc::make_mut(index)
                .insert(key, rid)
                .map_err(|e| named_violation(e, &def.name))?;
        }
        self.maintain_trigrams(&row, rid, true);
        self.record_mutation();
        Ok(rid)
    }

    /// Fetches and decodes a row.
    pub fn get(&self, rid: RowId) -> Result<Option<Vec<Value>>> {
        match self.heap.get(rid) {
            None => Ok(None),
            Some(rec) => {
                let mut pos = 0;
                Ok(Some(decode_row(rec, &mut pos)?))
            }
        }
    }

    /// Deletes a row, maintaining indexes. Returns true if it was live.
    pub fn delete(&mut self, rid: RowId) -> Result<bool> {
        let Some(row) = self.get(rid)? else {
            return Ok(false);
        };
        self.heap.delete(rid);
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| row[c].clone()).collect();
            Arc::make_mut(index).remove(&key, rid);
        }
        self.maintain_trigrams(&row, rid, false);
        self.record_mutation();
        Ok(true)
    }

    /// Replaces a row in place (delete + insert keeping constraints).
    pub fn update(&mut self, rid: RowId, new_row: Vec<Value>) -> Result<RowId> {
        let new_row = self.schema.validate_row(new_row)?;
        let Some(old_row) = self.get(rid)? else {
            return Err(RelError::Exec("update of missing row".into()));
        };
        // Unique pre-check, ignoring our own entry.
        for (def, index) in self.indexes.values() {
            if def.unique {
                let key: Vec<Value> = def.columns.iter().map(|&c| new_row[c].clone()).collect();
                if let Some(existing) = index.get_one(&key) {
                    if existing != rid {
                        return Err(RelError::UniqueViolation {
                            index: def.name.clone(),
                            key: format!("{key:?}"),
                        });
                    }
                }
            }
        }
        self.heap.delete(rid);
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| old_row[c].clone()).collect();
            Arc::make_mut(index).remove(&key, rid);
        }
        self.maintain_trigrams(&old_row, rid, false);
        let mut buf = Vec::new();
        encode_row(&new_row, &mut buf);
        let new_rid = self.heap.insert(&buf)?;
        for (def, index) in self.indexes.values_mut() {
            let key = def.columns.iter().map(|&c| new_row[c].clone()).collect();
            Arc::make_mut(index)
                .insert(key, new_rid)
                .map_err(|e| named_violation(e, &def.name))?;
        }
        self.maintain_trigrams(&new_row, new_rid, true);
        self.record_mutation();
        Ok(new_rid)
    }

    /// Full scan of decoded rows. Every stored record was produced by
    /// `encode_row`, so decoding normally never fails; a record that does
    /// fail (heap corruption) is skipped rather than panicking the scan —
    /// `fsck` is the tool that reports it.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Vec<Value>)> + '_ {
        self.heap.scan().filter_map(|(rid, rec)| {
            let mut pos = 0;
            let row = decode_row(rec, &mut pos).ok()?;
            Some((rid, row))
        })
    }

    /// Every live row in encoded form, byte-sorted. Canonical for logical
    /// comparison: independent of heap placement and insertion order.
    pub fn sorted_encoded_rows(&self) -> Vec<Vec<u8>> {
        let mut rows: Vec<Vec<u8>> = self.heap.scan().map(|(_, rec)| rec.to_vec()).collect();
        rows.sort_unstable();
        rows
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Deep structural check (fsck): the heap's page layout, every index's
    /// tree shape, and heap ↔ index agreement — each index must hold exactly
    /// one entry per live row, keyed by that row's current column values.
    /// Returns every violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = self.heap.check_invariants().err().unwrap_or_default();
        let mut rows: Vec<(RowId, Vec<Value>)> = Vec::new();
        for (rid, rec) in self.heap.scan() {
            let mut pos = 0;
            match decode_row(rec, &mut pos) {
                Ok(row) => rows.push((rid, row)),
                Err(e) => problems.push(format!("row {rid:?} does not decode: {e}")),
            }
        }
        for (def, index) in self.indexes.values() {
            if let Err(index_problems) = index.check_invariants() {
                problems.extend(
                    index_problems
                        .into_iter()
                        .map(|p| format!("index {}: {p}", def.name)),
                );
            }
            if index.len() != rows.len() {
                problems.push(format!(
                    "index {} holds {} entries for {} live rows",
                    def.name,
                    index.len(),
                    rows.len()
                ));
            }
            for (rid, row) in &rows {
                let key: Vec<Value> = def.columns.iter().map(|&c| row[c].clone()).collect();
                if !index.get(&key).contains(rid) {
                    problems.push(format!(
                        "index {} is missing row {rid:?} under key {key:?}",
                        def.name
                    ));
                }
            }
        }
        for (def, index) in self.trigrams.values() {
            if let Err(index_problems) = index.check_invariants() {
                problems.extend(
                    index_problems
                        .into_iter()
                        .map(|p| format!("trigram index {}: {p}", def.name)),
                );
            }
            for (rid, row) in &rows {
                if let Value::Text(s) = &row[def.columns[0]] {
                    if !index.contains(s, *rid) {
                        problems.push(format!(
                            "trigram index {} is missing row {rid:?} for text {s:?}",
                            def.name
                        ));
                    }
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    pub(crate) fn index_defs(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes
            .values()
            .map(|(d, _)| d)
            .chain(self.trigrams.values().map(|(d, _)| d))
    }

    pub(crate) fn restore(schema: TableSchema, heap: Heap, defs: Vec<IndexDef>) -> Result<Table> {
        let mut table = Table {
            schema,
            heap,
            indexes: BTreeMap::new(),
            trigrams: BTreeMap::new(),
            stats: TableStats::default(),
            stale_mutations: 0,
        };
        for def in defs {
            table.create_index(def)?;
        }
        table.rebuild_stats();
        Ok(table)
    }
}

fn named_violation(e: RelError, name: &str) -> RelError {
    match e {
        RelError::UniqueViolation { key, .. } => RelError::UniqueViolation {
            index: name.to_owned(),
            key,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn sensors() -> Table {
        Table::create(
            TableSchema::new(
                "sensors",
                vec![
                    Column::new("id", DataType::Integer).primary_key(),
                    Column::new("name", DataType::Text).not_null(),
                    Column::new("station", DataType::Text),
                ],
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn implicit_pk_index_created() {
        let t = sensors();
        let names: Vec<_> = t.index_names().collect();
        assert_eq!(names, vec!["sensors_id_unique"]);
    }

    #[test]
    fn fsck_detects_corruption() {
        let mut t = sensors();
        for i in 0..50 {
            t.insert(vec![
                Value::Int(i),
                Value::text(format!("s{i}")),
                Value::text("wfj"),
            ])
            .unwrap();
        }
        assert_eq!(t.check_invariants(), Ok(()));

        // Delete a row behind the indexes' back: the heap shrinks but the
        // primary-key index still points at the dead row.
        let rid = t.scan().next().unwrap().0;
        t.heap.delete(rid);
        let problems = t.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("49 live rows")),
            "{problems:?}"
        );

        // Index entry keyed by stale column values.
        let mut t = sensors();
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Null])
            .unwrap();
        let rid = t.scan().next().unwrap().0;
        let (_, index) = t.indexes.get_mut("sensors_id_unique").unwrap();
        let index = Arc::make_mut(index);
        index.remove(&vec![Value::Int(1)], rid);
        index.insert(vec![Value::Int(99)], rid).unwrap();
        let problems = t.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("missing row")),
            "{problems:?}"
        );
    }

    #[test]
    fn insert_enforces_pk() {
        let mut t = sensors();
        t.insert(vec![1.into(), "t1".into(), "wfj".into()]).unwrap();
        let err = t
            .insert(vec![1.into(), "t2".into(), "wfj".into()])
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        assert_eq!(t.len(), 1, "failed insert must not leave a row behind");
    }

    #[test]
    fn secondary_index_backfills_and_maintains() {
        let mut t = sensors();
        for i in 0..50 {
            t.insert(vec![
                i.into(),
                format!("sensor{i}").into(),
                format!("station{}", i % 5).into(),
            ])
            .unwrap();
        }
        t.create_index(IndexDef::btree("by_station", vec![2], false))
            .unwrap();
        let (_, ix) = t.index_on_column(2).unwrap();
        assert_eq!(ix.get(&vec!["station0".into()]).len(), 10);
        // Maintained on subsequent inserts.
        t.insert(vec![100.into(), "extra".into(), "station0".into()])
            .unwrap();
        let (_, ix) = t.index_on_column(2).unwrap();
        assert_eq!(ix.get(&vec!["station0".into()]).len(), 11);
    }

    #[test]
    fn delete_cleans_indexes() {
        let mut t = sensors();
        let rid = t.insert(vec![1.into(), "a".into(), Value::Null]).unwrap();
        assert!(t.delete(rid).unwrap());
        assert!(!t.delete(rid).unwrap());
        // Key is free again.
        t.insert(vec![1.into(), "b".into(), Value::Null]).unwrap();
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = sensors();
        let rid = t.insert(vec![1.into(), "a".into(), Value::Null]).unwrap();
        let new_rid = t
            .update(rid, vec![2.into(), "a2".into(), Value::Null])
            .unwrap();
        assert!(t.get(rid).unwrap().is_none() || rid == new_rid);
        let (_, ix) = t.index_on_column(0).unwrap();
        assert!(ix.get(&vec![Value::Int(1)]).is_empty());
        assert_eq!(ix.get_one(&vec![Value::Int(2)]), Some(new_rid));
    }

    #[test]
    fn update_unique_conflict_detected() {
        let mut t = sensors();
        t.insert(vec![1.into(), "a".into(), Value::Null]).unwrap();
        let rid2 = t.insert(vec![2.into(), "b".into(), Value::Null]).unwrap();
        let err = t
            .update(rid2, vec![1.into(), "b".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = sensors();
        let def = IndexDef::btree("dup", vec![1], false);
        t.create_index(def.clone()).unwrap();
        assert!(matches!(
            t.create_index(def).unwrap_err(),
            RelError::IndexExists(_)
        ));
    }

    #[test]
    fn backfill_unique_violation_fails_creation() {
        let mut t = sensors();
        t.insert(vec![1.into(), "same".into(), Value::Null])
            .unwrap();
        t.insert(vec![2.into(), "same".into(), Value::Null])
            .unwrap();
        let err = t
            .create_index(IndexDef::btree("name_unique", vec![1], true))
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        assert!(t.index_on_column(1).is_none());
    }

    #[test]
    fn trigram_index_maintained_across_mutations() {
        let mut t = sensors();
        for i in 0..10 {
            t.insert(vec![
                i.into(),
                format!("wind_speed_{i}").into(),
                "wfj".into(),
            ])
            .unwrap();
        }
        t.create_index(IndexDef::trigram("sensors_name_trgm", 1))
            .unwrap();
        let (_, trgm) = t.trigram_on_column(1).unwrap();
        assert_eq!(trgm.candidates("wind").unwrap().len(), 10);
        assert_eq!(t.check_invariants(), Ok(()));

        let rid = t.scan().next().unwrap().0;
        t.update(rid, vec![0.into(), "air_temp_0".into(), "wfj".into()])
            .unwrap();
        let (_, trgm) = t.trigram_on_column(1).unwrap();
        assert_eq!(trgm.candidates("wind").unwrap().len(), 9);
        assert_eq!(trgm.candidates("air_temp").unwrap().len(), 1);

        let rid = t.scan().next().unwrap().0;
        t.delete(rid).unwrap();
        assert_eq!(t.check_invariants(), Ok(()));
    }

    #[test]
    fn trigram_index_rejects_bad_definitions() {
        let mut t = sensors();
        // Non-text column.
        let err = t.create_index(IndexDef::trigram("bad_col", 0)).unwrap_err();
        assert!(matches!(err, RelError::Exec(_)));
        // UNIQUE trigram.
        let mut def = IndexDef::trigram("bad_unique", 1);
        def.unique = true;
        assert!(matches!(
            t.create_index(def).unwrap_err(),
            RelError::Exec(_)
        ));
        // Composite trigram.
        let mut def = IndexDef::trigram("bad_composite", 1);
        def.columns = vec![1, 2];
        assert!(matches!(
            t.create_index(def).unwrap_err(),
            RelError::Exec(_)
        ));
        // Name collisions span both maps.
        t.create_index(IndexDef::trigram("shared_name", 1)).unwrap();
        assert!(matches!(
            t.create_index(IndexDef::btree("shared_name", vec![0], false))
                .unwrap_err(),
            RelError::IndexExists(_)
        ));
        t.drop_index("shared_name").unwrap();
        assert!(t.trigram_on_column(1).is_none());
    }

    #[test]
    fn stats_rebuild_tracks_distribution() {
        let mut t = sensors();
        for i in 0..100 {
            t.insert(vec![
                i.into(),
                format!("s{i}").into(),
                if i % 10 == 0 {
                    Value::Null
                } else {
                    format!("station{}", i % 5).into()
                },
            ])
            .unwrap();
        }
        t.rebuild_stats();
        let stats = t.stats();
        assert_eq!(stats.rows, 100);
        assert_eq!(stats.columns[0].distinct, 100);
        assert_eq!(stats.columns[2].nulls, 10);
        // i=5,15,… yield station0, so all five stations appear.
        assert_eq!(stats.columns[2].distinct, 5);
        // Histogram fractions: id < 50 is about half the table.
        let frac = stats.columns[0].range_fraction(None, Some((&Value::Int(50), false)));
        assert!((0.2..=0.8).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn stats_rebuild_amortized_on_mutation() {
        let mut t = sensors();
        // First 16 mutations trigger a rebuild (threshold for empty table).
        for i in 0..20 {
            t.insert(vec![i.into(), format!("s{i}").into(), Value::Null])
                .unwrap();
        }
        assert!(t.stats().rows >= 16, "rows {}", t.stats().rows);
    }
}
