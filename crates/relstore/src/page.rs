//! Slotted pages.
//!
//! Classic slotted-page layout inside a fixed-size byte array: record payloads
//! grow downward from the end of the page, the slot directory grows upward
//! from the header. Deleting a record tombstones its slot; `compact` reclaims
//! the payload space. This mirrors how on-disk heap pages work in a real DBMS
//! even though our pages currently live in memory and are persisted wholesale
//! by the snapshot module.

use crate::error::{RelError, Result};

/// Page size in bytes. 8 KiB, the PostgreSQL default.
pub const PAGE_SIZE: usize = 8192;

/// Header: u16 slot_count, u16 free_space_offset (start of payload region).
const HEADER: usize = 4;
/// Each slot: u16 offset, u16 length. Offset 0xFFFF marks a tombstone
/// (legitimate offsets are < PAGE_SIZE, and zero-length records are legal).
const SLOT: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// A single slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Page {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // free_space_offset starts at PAGE_SIZE (payload region empty).
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    /// Reconstructs a page from raw bytes (snapshot restore).
    pub fn from_bytes(bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(RelError::Snapshot(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    /// Raw bytes of the page (snapshot store).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots, including tombstones.
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn payload_start(&self) -> usize {
        self.read_u16(2) as usize
    }

    /// Contiguous free bytes available for a new record plus its slot.
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() * SLOT;
        self.payload_start().saturating_sub(dir_end)
    }

    /// True if a record of `len` bytes fits (with its slot entry).
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// Inserts a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > u16::MAX as usize {
            return Err(RelError::Exec("record larger than 64 KiB".into()));
        }
        if !self.fits(record.len()) {
            return Err(RelError::Exec("page full".into()));
        }
        let slot = self.slot_count() as u16;
        let new_start = self.payload_start() - record.len();
        self.data[new_start..new_start + record.len()].copy_from_slice(record);
        let slot_at = HEADER + slot as usize * SLOT;
        self.write_u16(slot_at, new_start as u16);
        self.write_u16(slot_at + 2, record.len() as u16);
        self.write_u16(0, slot + 1);
        self.write_u16(2, new_start as u16);
        Ok(slot)
    }

    /// Reads a record; `None` for tombstoned or out-of-range slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot as usize >= self.slot_count() {
            return None;
        }
        let slot_at = HEADER + slot as usize * SLOT;
        let off = self.read_u16(slot_at);
        if off == TOMBSTONE {
            return None;
        }
        let off = off as usize;
        let len = self.read_u16(slot_at + 2) as usize;
        Some(&self.data[off..off + len])
    }

    /// Tombstones a slot. Returns true if the slot held a live record.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot as usize >= self.slot_count() {
            return false;
        }
        let slot_at = HEADER + slot as usize * SLOT;
        if self.read_u16(slot_at) == TOMBSTONE {
            return false;
        }
        self.write_u16(slot_at, TOMBSTONE);
        true
    }

    /// Iterates `(slot, record)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count() as u16).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Bytes wasted by tombstoned records' payloads.
    pub fn dead_space(&self) -> usize {
        let live: usize = self.iter().map(|(_, r)| r.len()).sum();
        (PAGE_SIZE - self.payload_start()).saturating_sub(live)
    }

    /// Rewrites the page, dropping tombstoned payloads while *preserving slot
    /// numbers* (tombstoned slots stay tombstoned) so that RowIds held by
    /// indexes remain valid.
    pub fn compact(&mut self) {
        let records: Vec<(u16, Vec<u8>)> = self.iter().map(|(s, r)| (s, r.to_vec())).collect();
        let slots = self.slot_count();
        let mut fresh = Page::new();
        fresh.write_u16(0, slots as u16);
        // Every slot starts tombstoned; live records overwrite below.
        for s in 0..slots {
            fresh.write_u16(HEADER + s * SLOT, TOMBSTONE);
        }
        let mut cursor = PAGE_SIZE;
        for (slot, rec) in &records {
            cursor -= rec.len();
            fresh.data[cursor..cursor + rec.len()].copy_from_slice(rec);
            let slot_at = HEADER + *slot as usize * SLOT;
            fresh.write_u16(slot_at, cursor as u16);
            fresh.write_u16(slot_at + 2, rec.len() as u16);
        }
        fresh.write_u16(2, cursor as u16);
        *self = fresh;
        debug_assert!(
            self.check_invariants().is_ok(),
            "compact produced an inconsistent page"
        );
    }

    /// Deep structural check (fsck): header sanity, slot-directory bounds,
    /// and non-overlapping payloads. Returns every violated invariant.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let slots = self.slot_count();
        let payload_start = self.payload_start();
        let dir_end = HEADER + slots * SLOT;
        if payload_start > PAGE_SIZE {
            problems.push(format!(
                "free-space offset {payload_start} beyond page size {PAGE_SIZE}"
            ));
        }
        if dir_end > payload_start {
            problems.push(format!(
                "slot directory (ends {dir_end}) overlaps payload region (starts {payload_start})"
            ));
        }
        let mut extents: Vec<(usize, usize, usize)> = Vec::new();
        for s in 0..slots {
            let slot_at = HEADER + s * SLOT;
            let off = self.read_u16(slot_at);
            if off == TOMBSTONE {
                continue;
            }
            let off = off as usize;
            let len = self.read_u16(slot_at + 2) as usize;
            if off < payload_start || off + len > PAGE_SIZE {
                problems.push(format!(
                    "slot {s}: payload [{off}, {}) outside payload region [{payload_start}, {PAGE_SIZE})",
                    off + len
                ));
            } else if len > 0 {
                extents.push((off, off + len, s));
            }
        }
        extents.sort_unstable();
        for w in extents.windows(2) {
            if w[0].1 > w[1].0 {
                problems.push(format!(
                    "slot {} payload [{}, {}) overlaps slot {} payload [{}, {})",
                    w[0].2, w[0].0, w[0].1, w[1].2, w[1].0, w[1].1
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_tombstones_without_moving_others() {
        let mut p = Page::new();
        let a = p.insert(b"aaa").unwrap();
        let b = p.insert(b"bbb").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete is a no-op");
        assert!(p.get(a).is_none());
        assert_eq!(p.get(b).unwrap(), b"bbb");
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= 8, "8KiB page should hold at least 8 1000-byte records");
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn compact_reclaims_dead_space_and_preserves_slots() {
        let mut p = Page::new();
        let a = p.insert(&vec![1u8; 2000]).unwrap();
        let b = p.insert(&vec![2u8; 2000]).unwrap();
        let c = p.insert(&vec![3u8; 2000]).unwrap();
        p.delete(b);
        assert!(p.dead_space() >= 2000);
        let free_before = p.free_space();
        p.compact();
        assert!(p.free_space() >= free_before + 2000);
        assert_eq!(p.get(a).unwrap(), &vec![1u8; 2000][..]);
        assert!(p.get(b).is_none());
        assert_eq!(p.get(c).unwrap(), &vec![3u8; 2000][..]);
        assert_eq!(p.dead_space(), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let restored = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(restored.get(0).unwrap(), b"persist me");
        assert!(Page::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn get_out_of_range_is_none() {
        let p = Page::new();
        assert!(p.get(0).is_none());
        assert!(p.get(999).is_none());
    }

    #[test]
    fn fsck_detects_corruption() {
        let mut p = Page::new();
        p.insert(b"aaaa").unwrap();
        p.insert(b"bbbb").unwrap();
        assert_eq!(p.check_invariants(), Ok(()));

        // Slot 0's payload pushed outside the payload region.
        let mut bad = p.clone();
        bad.write_u16(HEADER, 1); // offset 1 is inside the header
        let problems = bad.check_invariants().unwrap_err();
        assert!(
            problems
                .iter()
                .any(|m| m.contains("outside payload region")),
            "{problems:?}"
        );

        // Slot 1 re-pointed at slot 0's bytes: overlapping payloads.
        let mut overlap = p.clone();
        let slot0_off = overlap.read_u16(HEADER);
        overlap.write_u16(HEADER + SLOT, slot0_off);
        let problems = overlap.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("overlaps")),
            "{problems:?}"
        );

        // Free-space pointer past the end of the page.
        let mut runaway = p.clone();
        runaway.write_u16(2, u16::MAX);
        assert!(runaway.check_invariants().is_err());

        // Slot directory claiming more slots than fit above the payload.
        let mut too_many = Page::new();
        too_many.write_u16(2, HEADER as u16); // payload starts at the header
        too_many.write_u16(0, 8);
        let problems = too_many.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("slot directory")),
            "{problems:?}"
        );
    }
}
