//! # sensormeta-relstore
//!
//! An embedded relational storage engine: the substrate beneath the Sensor
//! Metadata Repository. It provides slotted-page heap storage, B-tree
//! secondary indexes, a typed schema layer, and a SQL subset (DDL + DML +
//! SELECT with joins, grouping, and ordering), plus snapshot persistence.
//!
//! The engine plays the role MySQL plays under Semantic MediaWiki in the
//! paper's deployment: the system of record for wiki pages, semantic
//! annotations, and link tables, queried through SQL by the query-management
//! layer.
//!
//! ```
//! use sensormeta_relstore::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE sensors (id INTEGER PRIMARY KEY, name TEXT NOT NULL)").unwrap();
//! db.execute("INSERT INTO sensors VALUES (1, 'wfj_temp'), (2, 'wfj_wind')").unwrap();
//! let rs = db.query("SELECT name FROM sensors ORDER BY id DESC").unwrap();
//! assert_eq!(rs.rows[0][0].to_string(), "wfj_wind");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod btree;
pub mod db;
pub mod encoding;
pub mod error;
pub mod heap;
pub mod page;
pub mod recover;
pub mod schema;
pub mod sql;
pub mod table;
pub mod trigram;
pub mod value;
pub mod vfs;
pub mod wal;

pub use db::{Database, ShipReport};
pub use error::{RelError, Result};
pub use heap::RowId;
pub use recover::{wal_path_for, DurabilityOptions, RecoveryReport};
pub use schema::{Column, TableSchema};
pub use sql::exec::{ExecOutcome, ResultSet};
pub use sql::planner::{AccessPath, PlannerConfig, SelectPlan};
pub use table::{ColumnStats, IndexDef, IndexKind, Table, TableStats};
pub use trigram::TrigramIndex;
pub use value::{DataType, Value};
pub use vfs::{FaultPlan, FaultVfs, MemVfs, StdVfs, Vfs, VfsFile};
pub use wal::{scan_wal, CommittedTx, LogicalOp, SyncPolicy, TailPoll, WalScan, WalTail};
