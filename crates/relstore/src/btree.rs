//! In-memory B-tree for secondary indexes.
//!
//! A textbook B-tree keyed by composite [`Value`] keys mapping to sets of
//! [`RowId`]s. Implemented from scratch (rather than wrapping `BTreeMap`) so
//! the engine exercises a real index structure: node splits, ordered range
//! scans, and duplicate-key postings. Fanout is kept small enough that tests
//! routinely exercise multi-level trees.

use crate::error::{RelError, Result};
use crate::heap::RowId;
use crate::value::Value;
use std::ops::Bound;

/// Maximum keys per node before a split. Chosen small so unit tests cover
/// deep trees; performance at this fanout is still fine for in-memory nodes.
const MAX_KEYS: usize = 32;

/// Composite index key.
pub type Key = Vec<Value>;

/// A node split: (median key, median postings, right sibling).
type Split = (Key, Vec<RowId>, Node);

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<Key>,
    /// Per-key postings: RowIds sharing this key (sorted, deduped).
    postings: Vec<Vec<RowId>>,
    /// Children; empty for leaves.
    children: Vec<Node>,
}

impl Node {
    fn leaf() -> Node {
        Node {
            keys: Vec::new(),
            postings: Vec::new(),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A B-tree index from composite keys to RowId postings.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    root: Box<Node>,
    /// Enforce at most one RowId per key.
    unique: bool,
    len: usize,
}

impl BTreeIndex {
    /// Creates an empty index; `unique` enforces one entry per key.
    pub fn new(unique: bool) -> BTreeIndex {
        BTreeIndex {
            root: Box::new(Node::leaf()),
            unique,
            len: 0,
        }
    }

    /// Whether the index enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Number of (key, RowId) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. For unique indexes an existing different RowId under
    /// the same key is a [`RelError::UniqueViolation`].
    pub fn insert(&mut self, key: Key, row: RowId) -> Result<()> {
        if self.unique {
            if let Some(existing) = self.get_one(&key) {
                if existing != row {
                    return Err(RelError::UniqueViolation {
                        index: String::new(),
                        key: format!("{key:?}"),
                    });
                }
                return Ok(());
            }
        }
        if self.insert_rec_root(key, row) {
            self.len += 1;
        }
        debug_assert!(
            self.root.keys.len() <= MAX_KEYS,
            "root over-full after insert"
        );
        Ok(())
    }

    fn insert_rec_root(&mut self, key: Key, row: RowId) -> bool {
        let (inserted, split) = Self::insert_rec(&mut self.root, key, row);
        if let Some((mid_key, mid_post, right)) = split {
            let old_root = std::mem::replace(&mut *self.root, Node::leaf());
            self.root.keys.push(mid_key);
            self.root.postings.push(mid_post);
            self.root.children.push(old_root);
            self.root.children.push(right);
        }
        inserted
    }

    /// Returns (newly-inserted, optional split (median key, postings, right node)).
    fn insert_rec(node: &mut Node, key: Key, row: RowId) -> (bool, Option<Split>) {
        match node.keys.binary_search(&key) {
            Ok(ix) => {
                let posting = &mut node.postings[ix];
                match posting.binary_search(&row) {
                    Ok(_) => (false, None),
                    Err(p) => {
                        posting.insert(p, row);
                        (true, None)
                    }
                }
            }
            Err(ix) => {
                let inserted = if node.is_leaf() {
                    node.keys.insert(ix, key);
                    node.postings.insert(ix, vec![row]);
                    true
                } else {
                    let (ins, split) = Self::insert_rec(&mut node.children[ix], key, row);
                    if let Some((mk, mp, right)) = split {
                        node.keys.insert(ix, mk);
                        node.postings.insert(ix, mp);
                        node.children.insert(ix + 1, right);
                    }
                    ins
                };
                let split = (node.keys.len() > MAX_KEYS)
                    .then(|| Self::split(node))
                    .flatten();
                (inserted, split)
            }
        }
    }

    /// Splits an over-full node, returning (median key, median postings,
    /// right sibling). `None` only for an empty node, which an over-full
    /// node never is; callers treat it as "no split happened".
    fn split(node: &mut Node) -> Option<Split> {
        let mid = node.keys.len() / 2;
        let right_keys = node.keys.split_off(mid + 1);
        let right_postings = node.postings.split_off(mid + 1);
        let (mid_key, mid_post) = node.keys.pop().zip(node.postings.pop())?;
        debug_assert!(
            node.keys.last().is_none_or(|k| *k < mid_key)
                && right_keys.first().is_none_or(|k| mid_key < *k),
            "split median must separate left and right halves"
        );
        let right_children = if node.is_leaf() {
            Vec::new()
        } else {
            node.children.split_off(mid + 1)
        };
        Some((
            mid_key,
            mid_post,
            Node {
                keys: right_keys,
                postings: right_postings,
                children: right_children,
            },
        ))
    }

    /// Removes one (key, RowId) entry. Returns true if it existed.
    /// Underflow rebalancing is intentionally omitted: deletions leave nodes
    /// sparse but correct, and metadata workloads are insert-dominated.
    pub fn remove(&mut self, key: &Key, row: RowId) -> bool {
        fn rec(node: &mut Node, key: &Key, row: RowId) -> bool {
            match node.keys.binary_search(key) {
                Ok(ix) => {
                    let posting = &mut node.postings[ix];
                    match posting.binary_search(&row) {
                        Ok(p) => {
                            posting.remove(p);
                            // An empty posting list stays as a routing key in
                            // interior nodes; lookups skip it.
                            true
                        }
                        Err(_) => false,
                    }
                }
                Err(ix) => {
                    if node.is_leaf() {
                        false
                    } else {
                        rec(&mut node.children[ix], key, row)
                    }
                }
            }
        }
        let removed = rec(&mut self.root, key, row);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// All RowIds for an exact key.
    pub fn get(&self, key: &Key) -> Vec<RowId> {
        fn rec<'a>(node: &'a Node, key: &Key) -> Option<&'a Vec<RowId>> {
            match node.keys.binary_search(key) {
                Ok(ix) => Some(&node.postings[ix]),
                Err(ix) => {
                    if node.is_leaf() {
                        None
                    } else {
                        rec(&node.children[ix], key)
                    }
                }
            }
        }
        rec(&self.root, key).cloned().unwrap_or_default()
    }

    /// First RowId for a key, if any.
    pub fn get_one(&self, key: &Key) -> Option<RowId> {
        self.get(key).into_iter().next()
    }

    /// In-order range scan over `(key, RowId)` pairs.
    pub fn range(&self, lo: Bound<&Key>, hi: Bound<&Key>) -> Vec<(Key, RowId)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, &lo, &hi, &mut out);
        out
    }

    fn key_ge(k: &Key, b: &Bound<&Key>) -> bool {
        match b {
            Bound::Unbounded => true,
            Bound::Included(l) => k >= l,
            Bound::Excluded(l) => k > l,
        }
    }

    fn key_le(k: &Key, b: &Bound<&Key>) -> bool {
        match b {
            Bound::Unbounded => true,
            Bound::Included(h) => k <= h,
            Bound::Excluded(h) => k < h,
        }
    }

    fn range_rec(node: &Node, lo: &Bound<&Key>, hi: &Bound<&Key>, out: &mut Vec<(Key, RowId)>) {
        for (ix, key) in node.keys.iter().enumerate() {
            // Descend into the child left of this key if that subtree may
            // contain in-range keys (all of them are < key).
            if !node.is_leaf() && Self::key_ge(key, lo) {
                Self::range_rec(&node.children[ix], lo, hi, out);
            }
            if Self::key_ge(key, lo) && Self::key_le(key, hi) {
                for row in &node.postings[ix] {
                    out.push((key.clone(), *row));
                }
            }
            if !Self::key_le(key, hi) {
                return; // everything to the right is larger
            }
        }
        if !node.is_leaf() {
            if let Some(last) = node.children.last() {
                Self::range_rec(last, lo, hi, out);
            }
        }
    }

    /// All entries in key order.
    pub fn iter_all(&self) -> Vec<(Key, RowId)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Entries whose key starts with `prefix` (composite-key prefix match).
    pub fn prefix(&self, prefix: &Key) -> Vec<(Key, RowId)> {
        self.iter_all()
            .into_iter()
            .filter(|(k, _)| k.len() >= prefix.len() && k[..prefix.len()] == prefix[..])
            .collect()
    }

    /// Deep structural check (fsck): ordering, separator bounds, node shape,
    /// posting-list discipline, uniqueness, and the entry count. Returns every
    /// violated invariant as a human-readable message.
    pub fn check_invariants(&self) -> std::result::Result<(), Vec<String>> {
        fn rec(
            node: &Node,
            lo: Option<&Key>,
            hi: Option<&Key>,
            depth: usize,
            unique: bool,
            entries: &mut usize,
            problems: &mut Vec<String>,
        ) {
            let at = |msg: String| format!("depth {depth}: {msg}");
            if node.keys.len() != node.postings.len() {
                problems.push(at(format!(
                    "{} keys but {} posting lists",
                    node.keys.len(),
                    node.postings.len()
                )));
            }
            if node.keys.len() > MAX_KEYS {
                problems.push(at(format!(
                    "over-full node: {} keys > {MAX_KEYS}",
                    node.keys.len()
                )));
            }
            for (ix, w) in node.keys.windows(2).enumerate() {
                if w[0] >= w[1] {
                    problems.push(at(format!("keys[{ix}] >= keys[{}]", ix + 1)));
                }
            }
            if let (Some(first), Some(lo)) = (node.keys.first(), lo) {
                if first <= lo {
                    problems.push(at("first key <= left separator".into()));
                }
            }
            if let (Some(last), Some(hi)) = (node.keys.last(), hi) {
                if last >= hi {
                    problems.push(at("last key >= right separator".into()));
                }
            }
            for (ix, posting) in node.postings.iter().enumerate() {
                *entries += posting.len();
                if unique && posting.len() > 1 {
                    problems.push(at(format!(
                        "unique index holds {} rows under keys[{ix}]",
                        posting.len()
                    )));
                }
                if posting.windows(2).any(|w| w[0] >= w[1]) {
                    problems.push(at(format!("postings[{ix}] not sorted/deduped")));
                }
            }
            if node.is_leaf() {
                return;
            }
            if node.children.len() != node.keys.len() + 1 {
                problems.push(at(format!(
                    "interior node has {} keys but {} children",
                    node.keys.len(),
                    node.children.len()
                )));
                return; // child separators below would be meaningless
            }
            for (ix, child) in node.children.iter().enumerate() {
                let clo = if ix == 0 {
                    lo
                } else {
                    Some(&node.keys[ix - 1])
                };
                let chi = if ix == node.keys.len() {
                    hi
                } else {
                    Some(&node.keys[ix])
                };
                rec(child, clo, chi, depth + 1, unique, entries, problems);
            }
        }
        let mut problems = Vec::new();
        let mut entries = 0usize;
        rec(
            &self.root,
            None,
            None,
            0,
            self.unique,
            &mut entries,
            &mut problems,
        );
        if entries != self.len {
            problems.push(format!(
                "len says {} entries but postings hold {entries}",
                self.len
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> RowId {
        RowId { page: 0, slot: n }
    }

    fn key(v: i64) -> Key {
        vec![Value::Int(v)]
    }

    #[test]
    fn insert_and_get() {
        let mut ix = BTreeIndex::new(false);
        ix.insert(key(5), rid(1)).unwrap();
        ix.insert(key(5), rid(2)).unwrap();
        ix.insert(key(7), rid(3)).unwrap();
        assert_eq!(ix.get(&key(5)), vec![rid(1), rid(2)]);
        assert_eq!(ix.get(&key(7)), vec![rid(3)]);
        assert!(ix.get(&key(6)).is_empty());
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn unique_violation() {
        let mut ix = BTreeIndex::new(true);
        ix.insert(key(1), rid(1)).unwrap();
        assert!(ix.insert(key(1), rid(2)).is_err());
        // Same RowId re-insert is idempotent.
        ix.insert(key(1), rid(1)).unwrap();
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn deep_tree_stays_sorted() {
        let mut ix = BTreeIndex::new(false);
        // Insert shuffled keys to force splits in interesting orders.
        let mut keys: Vec<i64> = (0..2000).collect();
        // Deterministic shuffle via multiplication mod prime.
        keys.sort_by_key(|k| (k * 48271) % 2003);
        for (i, k) in keys.iter().enumerate() {
            ix.insert(key(*k), rid(i as u32)).unwrap();
        }
        assert_eq!(ix.check_invariants(), Ok(()));
        let all = ix.iter_all();
        assert_eq!(all.len(), 2000);
        for w in all.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn range_scans() {
        let mut ix = BTreeIndex::new(false);
        for k in 0..100 {
            ix.insert(key(k), rid(k as u32)).unwrap();
        }
        let mid = ix.range(Bound::Included(&key(10)), Bound::Excluded(&key(20)));
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0].0, key(10));
        assert_eq!(mid[9].0, key(19));
        let open = ix.range(Bound::Excluded(&key(97)), Bound::Unbounded);
        assert_eq!(open.len(), 2);
    }

    #[test]
    fn remove_entries() {
        let mut ix = BTreeIndex::new(false);
        for k in 0..200 {
            ix.insert(key(k), rid(k as u32)).unwrap();
        }
        assert!(ix.remove(&key(50), rid(50)));
        assert!(!ix.remove(&key(50), rid(50)));
        assert!(!ix.remove(&key(5000), rid(1)));
        assert!(ix.get(&key(50)).is_empty());
        assert_eq!(ix.len(), 199);
        assert_eq!(ix.check_invariants(), Ok(()));
    }

    #[test]
    fn fsck_detects_corruption() {
        let mut ix = BTreeIndex::new(false);
        for k in 0..500 {
            ix.insert(key(k), rid(k as u32)).unwrap();
        }
        assert_eq!(ix.check_invariants(), Ok(()));

        // Out-of-order keys in the root.
        let mut broken = BTreeIndex::new(false);
        for k in 0..3 {
            broken.insert(key(k), rid(k as u32)).unwrap();
        }
        broken.root.keys.swap(0, 2);
        let problems = broken.check_invariants().unwrap_err();
        assert!(problems.iter().any(|p| p.contains(">=")), "{problems:?}");

        // Entry-count drift.
        let mut drifted = BTreeIndex::new(false);
        drifted.insert(key(1), rid(1)).unwrap();
        drifted.len = 7;
        let problems = drifted.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("len says 7")),
            "{problems:?}"
        );

        // A unique index smuggling two rows under one key.
        let mut dup = BTreeIndex::new(true);
        dup.insert(key(1), rid(1)).unwrap();
        dup.root.postings[0].push(rid(2));
        dup.len += 1;
        let problems = dup.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("unique index holds 2")),
            "{problems:?}"
        );
    }

    #[test]
    fn composite_keys_and_prefix() {
        let mut ix = BTreeIndex::new(false);
        ix.insert(vec![Value::text("temp"), Value::Int(1)], rid(1))
            .unwrap();
        ix.insert(vec![Value::text("temp"), Value::Int(2)], rid(2))
            .unwrap();
        ix.insert(vec![Value::text("wind"), Value::Int(1)], rid(3))
            .unwrap();
        let hits = ix.prefix(&vec![Value::text("temp")]);
        assert_eq!(hits.len(), 2);
    }
}
