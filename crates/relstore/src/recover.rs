//! Crash recovery: durable open, WAL replay, and checkpointing.
//!
//! A durable database lives in two files: the snapshot (`<path>`) and the
//! write-ahead log (`<path>.wal`). Opening recovers deterministically:
//!
//! 1. load the snapshot if present and read its sequence-number trailer
//!    (the highest operation folded into it);
//! 2. scan the WAL, verifying frame checksums — a torn or corrupt tail ends
//!    the readable log;
//! 3. replay every committed transaction's operations with sequence numbers
//!    above the snapshot's, in commit order (uncommitted tails are
//!    discarded);
//! 4. if anything was replayed or the log was damaged, checkpoint: write a
//!    fresh snapshot durably (temp file → fsync → rename → directory fsync)
//!    and truncate the log.
//!
//! Checkpoint crash-safety hinges on the sequence trailer: operations are
//! numbered once, the snapshot records the highest number it contains, and
//! replay skips anything at or below it — so a crash between "snapshot
//! renamed" and "log truncated" merely replays zero operations.

use crate::db::Database;
use crate::error::{RelError, Result};
use crate::sql::exec::{execute, Catalog};
use crate::sql::parser::parse_script;
use crate::table::Table;
use crate::vfs::Vfs;
use crate::wal::{crc32, scan_wal, LogicalOp, SyncPolicy, Wal};
use sensormeta_obs as obs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning knobs for a durable database.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// When the WAL fsyncs (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Checkpoint automatically once the WAL grows past this many bytes.
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            sync: SyncPolicy::Always,
            checkpoint_wal_bytes: 4 * 1024 * 1024,
        }
    }
}

/// What recovery found and did while opening a database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Highest operation sequence number folded into the loaded snapshot.
    pub snapshot_seq: u64,
    /// Highest operation sequence number in the recovered state.
    pub last_seq: u64,
    /// Committed operations re-applied from the WAL.
    pub replayed_ops: u64,
    /// Committed operations whose replay errored (these also failed at
    /// runtime — deterministic replay reproduces the original outcome).
    pub failed_ops: u64,
    /// Committed operations skipped because the snapshot already contained
    /// them (normal after a crash between checkpoint steps).
    pub skipped_ops: u64,
    /// Bytes discarded from the WAL tail (torn frame, checksum mismatch,
    /// or trailing garbage).
    pub discarded_bytes: usize,
    /// Transactions begun but never committed — discarded.
    pub uncommitted_txs: usize,
    /// Findings from the WAL scan (checksum failures, torn tails, …).
    pub wal_problems: Vec<String>,
    /// True when recovery rewrote the snapshot and truncated the log.
    pub checkpointed: bool,
}

/// The durable half of a [`Database`]: its VFS, file paths, open WAL, and
/// sequencing state.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) vfs: Arc<dyn Vfs>,
    pub(crate) snap_path: PathBuf,
    pub(crate) wal_path: PathBuf,
    pub(crate) wal: Wal,
    /// Last operation sequence number assigned.
    pub(crate) seq: u64,
    /// Highest sequence number covered by the on-disk snapshot.
    pub(crate) snapshot_seq: u64,
    /// Last transaction id written.
    pub(crate) tx: u64,
    /// Once set, the log can no longer be trusted: mutations are refused
    /// until the database is reopened (which recovers from disk).
    pub(crate) poisoned: Option<String>,
    pub(crate) opts: DurabilityOptions,
}

/// The WAL path that accompanies a snapshot path: `<snapshot>.wal`.
pub fn wal_path_for(snapshot: &Path) -> PathBuf {
    let mut os = snapshot.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

pub(crate) fn path_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

// ---------------------------------------------------------------------------
// Snapshot sequence trailer.
// ---------------------------------------------------------------------------

const SEQ_TRAILER_MAGIC: &[u8; 8] = b"SMRSEQ01";
const SEQ_TRAILER_LEN: usize = 20;

/// Appends the checksummed sequence trailer to snapshot bytes. Older
/// readers ignore trailing bytes, so trailered snapshots stay loadable by
/// [`Database::from_snapshot`].
pub(crate) fn append_seq_trailer(buf: &mut Vec<u8>, seq: u64) {
    let start = buf.len();
    buf.extend_from_slice(SEQ_TRAILER_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    let crc = crc32(&buf[start..start + 16]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Reads the sequence trailer, if present and checksummed correctly.
pub(crate) fn read_seq_trailer(buf: &[u8]) -> Option<u64> {
    if buf.len() < SEQ_TRAILER_LEN {
        return None;
    }
    let t = &buf[buf.len() - SEQ_TRAILER_LEN..];
    if &t[..8] != SEQ_TRAILER_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(t[16..20].try_into().ok()?);
    if crc32(&t[..16]) != crc {
        return None;
    }
    Some(u64::from_le_bytes(t[8..16].try_into().ok()?))
}

// ---------------------------------------------------------------------------
// Durable snapshot writes.
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` durably: temp file, fsync, atomic rename,
/// directory fsync. A crash at any point leaves either the old or the new
/// snapshot fully intact.
pub(crate) fn write_snapshot_durably(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<()> {
    let io =
        |what: &str, e: std::io::Error| RelError::Io(format!("{what} {}: {e}", path.display()));
    let tmp = path_with_suffix(path, ".tmp");
    let mut file = vfs.create(&tmp).map_err(|e| io("create temp for", e))?;
    file.write_all(bytes).map_err(|e| io("write temp for", e))?;
    file.sync().map_err(|e| io("sync temp for", e))?;
    drop(file);
    vfs.rename(&tmp, path).map_err(|e| io("rename into", e))?;
    vfs.sync_parent_dir(path)
        .map_err(|e| io("sync dir of", e))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Logical replay.
// ---------------------------------------------------------------------------

/// Applies one logical operation to a catalog — the same code path used at
/// runtime, so replay is deterministic.
pub(crate) fn apply_logical(catalog: &mut Catalog, op: &LogicalOp) -> Result<()> {
    match op {
        LogicalOp::Sql(sql) => {
            for stmt in parse_script(sql)? {
                execute(catalog, stmt)?;
            }
            Ok(())
        }
        LogicalOp::Insert { table, row } => {
            let t = catalog
                .get_mut(&table.to_ascii_lowercase())
                .ok_or_else(|| RelError::NoSuchTable(table.clone()))?;
            t.insert(row.clone())?;
            Ok(())
        }
        LogicalOp::CreateTable(schema) => {
            let key = schema.name.to_ascii_lowercase();
            if catalog.contains_key(&key) {
                return Err(RelError::TableExists(schema.name.clone()));
            }
            catalog.insert(key, Table::create(schema.clone())?);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Open + recover.
// ---------------------------------------------------------------------------

/// Opens a database at `path`, replaying the WAL. With `durable: Some`,
/// the returned database keeps logging (creating files as needed and
/// checkpointing if recovery found anything to fold); with `None` the open
/// is read-only — nothing on disk is touched, and the returned database
/// has no log attached.
pub(crate) fn open_impl(
    vfs: Arc<dyn Vfs>,
    path: &Path,
    durable: Option<DurabilityOptions>,
) -> Result<(Database, RecoveryReport)> {
    let wal_path = wal_path_for(path);
    let snap_exists = vfs.exists(path);
    let wal_exists = vfs.exists(&wal_path);
    if !snap_exists && !wal_exists && durable.is_none() {
        return Err(RelError::Io(format!("no database at {}", path.display())));
    }

    let (mut db, snapshot_seq) = if snap_exists {
        let bytes = vfs
            .read(path)
            .map_err(|e| RelError::Io(format!("read {}: {e}", path.display())))?;
        let seq = read_seq_trailer(&bytes).unwrap_or(0);
        (Database::from_snapshot(&bytes)?, seq)
    } else {
        (Database::new(), 0)
    };

    let mut report = RecoveryReport {
        snapshot_seq,
        last_seq: snapshot_seq,
        ..RecoveryReport::default()
    };

    let mut scan_clean = true;
    let mut wal_bytes_len = 0u64;
    let mut max_tx = 0u64;
    if wal_exists {
        let bytes = vfs
            .read(&wal_path)
            .map_err(|e| RelError::Io(format!("read {}: {e}", wal_path.display())))?;
        wal_bytes_len = bytes.len() as u64;
        let scan = scan_wal(&bytes);
        scan_clean = scan.is_clean();
        report.wal_problems = scan.problems;
        report.discarded_bytes = scan.discarded_bytes;
        report.uncommitted_txs = scan.uncommitted_txs;
        for tx in &scan.committed {
            max_tx = max_tx.max(tx.tx);
            for (seq, op) in &tx.ops {
                if *seq <= snapshot_seq {
                    report.skipped_ops += 1;
                    continue;
                }
                match apply_logical(db.catalog_mut(), op) {
                    Ok(()) => report.replayed_ops += 1,
                    Err(_) => report.failed_ops += 1,
                }
                report.last_seq = report.last_seq.max(*seq);
            }
        }
        obs::counter("relstore_wal_replayed_ops_total").add(report.replayed_ops);
        obs::counter("relstore_wal_skipped_ops_total").add(report.skipped_ops);
        obs::counter("relstore_wal_discarded_bytes_total").add(report.discarded_bytes as u64);
    }

    let Some(opts) = durable else {
        return Ok((db, report));
    };

    // Fold recovered work into a fresh snapshot whenever the log held
    // anything beyond the snapshot or was damaged; otherwise keep appending
    // to the existing clean log.
    let replayed_any = report.replayed_ops + report.failed_ops > 0;
    let needs_checkpoint = !snap_exists || !wal_exists || !scan_clean || replayed_any;
    let wal = if needs_checkpoint {
        let mut bytes = db.to_snapshot();
        append_seq_trailer(&mut bytes, report.last_seq);
        write_snapshot_durably(vfs.as_ref(), path, &bytes)?;
        report.checkpointed = true;
        Wal::create(&vfs, &wal_path, opts.sync)?
    } else {
        let existing = wal_bytes_len.saturating_sub(crate::wal::WAL_MAGIC.len() as u64);
        Wal::open_append(&vfs, &wal_path, opts.sync, existing)?
    };

    db.attach_durability(Durability {
        vfs,
        snap_path: path.to_path_buf(),
        wal_path,
        wal,
        seq: report.last_seq,
        snapshot_seq: if report.checkpointed {
            report.last_seq
        } else {
            snapshot_seq
        },
        tx: max_tx,
        poisoned: None,
        opts,
    });
    Ok((db, report))
}
