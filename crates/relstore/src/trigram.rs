//! Trigram secondary index for substring predicates.
//!
//! A trigram index maps every lowercased 3-character window of a text
//! column to the rows containing it. A `LIKE '%needle%'` (or `ILIKE`)
//! predicate is served by intersecting the posting lists of the needle's
//! trigrams: any row whose text contains the needle necessarily contains
//! every trigram of the needle, so the intersection is a superset of the
//! true matches and the executor's residual-predicate invariant keeps the
//! result exact. Lowercasing both sides makes the same index serve the
//! case-insensitive surface.

use crate::heap::RowId;
use std::collections::BTreeMap;

/// Number of characters per gram.
const GRAM_LEN: usize = 3;

/// A trigram posting index over one text column.
///
/// Posting lists are kept sorted so membership checks and intersections
/// run in logarithmic / linear time respectively.
#[derive(Debug, Clone, Default)]
pub struct TrigramIndex {
    postings: BTreeMap<[char; GRAM_LEN], Vec<RowId>>,
    /// Rows currently indexed (rows whose text produced at least one gram).
    indexed_rows: usize,
}

/// Lowercased trigrams of a text, deduplicated.
fn grams(text: &str) -> Vec<[char; GRAM_LEN]> {
    let lower: Vec<char> = text.to_lowercase().chars().collect();
    if lower.len() < GRAM_LEN {
        return Vec::new();
    }
    let mut out: Vec<[char; GRAM_LEN]> = lower
        .windows(GRAM_LEN)
        .map(|w| [w[0], w[1], w[2]])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl TrigramIndex {
    /// Creates an empty index.
    pub fn new() -> TrigramIndex {
        TrigramIndex::default()
    }

    /// Number of rows with at least one indexed gram.
    pub fn len(&self) -> usize {
        self.indexed_rows
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed_rows == 0
    }

    /// Number of distinct grams.
    pub fn gram_count(&self) -> usize {
        self.postings.len()
    }

    /// Indexes a row's text value. Texts shorter than three characters
    /// produce no grams and are not indexed — they can never contain a
    /// three-character needle, so skipping them preserves the superset
    /// guarantee.
    pub fn insert(&mut self, text: &str, rid: RowId) {
        let gs = grams(text);
        if gs.is_empty() {
            return;
        }
        for g in gs {
            let posting = self.postings.entry(g).or_default();
            if let Err(ix) = posting.binary_search(&rid) {
                posting.insert(ix, rid);
            }
        }
        self.indexed_rows += 1;
    }

    /// Removes a row previously indexed under `text`.
    pub fn remove(&mut self, text: &str, rid: RowId) {
        let gs = grams(text);
        if gs.is_empty() {
            return;
        }
        let mut removed_any = false;
        for g in &gs {
            if let Some(posting) = self.postings.get_mut(g) {
                if let Ok(ix) = posting.binary_search(&rid) {
                    posting.remove(ix);
                    removed_any = true;
                }
                if posting.is_empty() {
                    self.postings.remove(g);
                }
            }
        }
        if removed_any {
            self.indexed_rows = self.indexed_rows.saturating_sub(1);
        }
    }

    /// Rows that may contain `needle` (case-insensitively): the sorted
    /// intersection of the needle's gram postings. `None` when the needle is
    /// shorter than a gram — the index cannot bound the candidate set.
    pub fn candidates(&self, needle: &str) -> Option<Vec<RowId>> {
        let gs = grams(needle);
        if gs.is_empty() {
            return None;
        }
        // Intersect starting from the rarest gram.
        let mut lists: Vec<&Vec<RowId>> = Vec::with_capacity(gs.len());
        for g in &gs {
            match self.postings.get(g) {
                Some(p) => lists.push(p),
                None => return Some(Vec::new()),
            }
        }
        lists.sort_by_key(|p| p.len());
        let mut acc: Vec<RowId> = lists[0].clone();
        for list in &lists[1..] {
            acc.retain(|rid| list.binary_search(rid).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        Some(acc)
    }

    /// Upper bound on `candidates(needle).len()` without materializing the
    /// intersection: the shortest posting list among the needle's grams.
    /// `None` when the needle is too short to use the index.
    pub fn estimate(&self, needle: &str) -> Option<usize> {
        let gs = grams(needle);
        if gs.is_empty() {
            return None;
        }
        Some(
            gs.iter()
                .map(|g| self.postings.get(g).map_or(0, Vec::len))
                .min()
                .unwrap_or(0),
        )
    }

    /// True when every gram of `text` holds `rid` — the per-row agreement
    /// check `fsck` runs against live heap rows.
    pub fn contains(&self, text: &str, rid: RowId) -> bool {
        let gs = grams(text);
        if gs.is_empty() {
            return true; // short texts are legitimately unindexed
        }
        gs.iter().all(|g| {
            self.postings
                .get(g)
                .is_some_and(|p| p.binary_search(&rid).is_ok())
        })
    }

    /// Structural invariants: posting lists are sorted, deduplicated, and
    /// non-empty.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for (g, posting) in &self.postings {
            if posting.is_empty() {
                problems.push(format!("gram {g:?}: empty posting list retained"));
            }
            if posting.windows(2).any(|w| w[0] >= w[1]) {
                problems.push(format!("gram {g:?}: posting list unsorted or duplicated"));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> RowId {
        RowId { page: 0, slot: n }
    }

    #[test]
    fn candidates_superset_of_matches() {
        let mut ix = TrigramIndex::new();
        ix.insert("Wind_Speed_WFJ", rid(1));
        ix.insert("air_temperature", rid(2));
        ix.insert("wind_direction", rid(3));
        let c = ix.candidates("wind").expect("usable needle");
        assert!(c.contains(&rid(1)) && c.contains(&rid(3)));
        assert!(!c.contains(&rid(2)));
        // Case-insensitive by construction.
        let c = ix.candidates("WIND").expect("usable needle");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn short_needles_are_unusable() {
        let mut ix = TrigramIndex::new();
        ix.insert("abcdef", rid(1));
        assert!(ix.candidates("ab").is_none());
        assert!(ix.estimate("").is_none());
    }

    #[test]
    fn short_texts_never_match_long_needles() {
        let mut ix = TrigramIndex::new();
        ix.insert("ab", rid(1)); // too short to index
        assert_eq!(ix.len(), 0);
        assert_eq!(ix.candidates("abc"), Some(Vec::new()));
        assert!(ix.contains("ab", rid(1)), "short text counts as agreed");
    }

    #[test]
    fn remove_cleans_postings() {
        let mut ix = TrigramIndex::new();
        ix.insert("sensor", rid(1));
        ix.insert("sensor", rid(2));
        ix.remove("sensor", rid(1));
        assert_eq!(ix.candidates("sensor"), Some(vec![rid(2)]));
        ix.remove("sensor", rid(2));
        assert!(ix.is_empty());
        assert_eq!(ix.gram_count(), 0);
        assert_eq!(ix.check_invariants(), Ok(()));
    }

    #[test]
    fn estimate_bounds_candidates() {
        let mut ix = TrigramIndex::new();
        for i in 0..20 {
            ix.insert(&format!("station_{i}_wind"), rid(i));
        }
        let est = ix.estimate("wind").expect("usable");
        let got = ix.candidates("wind").expect("usable").len();
        assert!(est >= got, "estimate {est} must bound candidates {got}");
    }

    #[test]
    fn unicode_texts_index_cleanly() {
        let mut ix = TrigramIndex::new();
        ix.insert("Zürich_Öst", rid(7));
        let c = ix.candidates("üri").expect("usable");
        assert_eq!(c, vec![rid(7)]);
        assert_eq!(ix.check_invariants(), Ok(()));
    }
}
