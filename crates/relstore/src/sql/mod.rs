//! SQL front-end: lexer, parser, AST, expression evaluation, and execution.

pub mod ast;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod planner;
