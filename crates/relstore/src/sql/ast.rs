//! SQL abstract syntax tree.

use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// IF NOT EXISTS flag.
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS flag.
        if_exists: bool,
    },
    /// CREATE `[UNIQUE|TRIGRAM]` INDEX.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table the index covers.
        table: String,
        /// Indexed column names.
        columns: Vec<String>,
        /// Uniqueness constraint.
        unique: bool,
        /// Trigram (substring) index rather than a B-tree.
        trigram: bool,
    },
    /// INSERT INTO ... VALUES.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Value rows; each inner Vec is one row of expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// UPDATE ... SET ... `[WHERE]`.
    Update {
        /// Target table.
        table: String,
        /// (column, new value expression) assignments.
        sets: Vec<(String, Expr)>,
        /// Optional predicate.
        predicate: Option<Expr>,
    },
    /// DELETE FROM ... `[WHERE]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        predicate: Option<Expr>,
    },
    /// SELECT query.
    Select(SelectStmt),
    /// EXPLAIN SELECT: returns the chosen plan instead of rows.
    Explain(SelectStmt),
}

impl Statement {
    /// True for statements that can change database state (everything but
    /// SELECT / EXPLAIN) — the ones worth write-ahead logging.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Statement::Select(_) | Statement::Explain(_))
    }
}

/// Column definition inside CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// UNIQUE constraint.
    pub unique: bool,
    /// PRIMARY KEY constraint.
    pub primary_key: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// FROM clause (empty for expression-only selects like `SELECT 1+1`).
    pub from: Option<TableRef>,
    /// INNER / LEFT joins, applied in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// OFFSET row count.
    pub offset: Option<usize>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Underlying table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// Effective name used for qualification.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
}

/// One join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join type.
    pub kind: JoinKind,
    /// Right-hand table.
    pub table: TableRef,
    /// ON condition.
    pub on: Expr,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// True for descending order.
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Like,
    /// Case-insensitive LIKE.
    ILike,
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified by table alias.
    Column {
        /// Qualifier (table alias), if written.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for NOT IN.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// True for NOT BETWEEN.
        negated: bool,
    },
    /// Scalar function call (LOWER, UPPER, LENGTH, ABS, COALESCE, ...).
    Func {
        /// Function name, lowercased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated expression; `None` only for COUNT(*).
        arg: Option<Box<Expr>>,
        /// DISTINCT inside the aggregate.
        distinct: bool,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// True if the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
        }
    }
}
