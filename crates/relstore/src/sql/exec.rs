//! Statement execution: evaluation of parsed SQL against the database
//! catalog, driven by the cost-based planner in [`super::planner`].
//!
//! The SELECT pipeline is: plan (access paths, probe joins, join order) →
//! base scan → joins → column-order restoration → WHERE filter → grouping &
//! aggregation → HAVING → projection → DISTINCT → ORDER BY → LIMIT/OFFSET.
//! Every access path yields a *superset* of matching rows and the full
//! WHERE / ON predicates are always re-applied, so plan choices can never
//! change results.

use super::ast::*;
use super::expr::{eval, truthiness, RowSchema};
use super::planner::{plan_select, AccessPath, PlannerConfig, ScanPlan, SelectPlan};
use crate::error::{RelError, Result};
use crate::table::Table;
use crate::value::Value;
use sensormeta_obs as obs;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Renders the result as an aligned ASCII table (the paper's "plain
    /// tabular format" output).
    pub fn to_ascii_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT output.
    Rows(ResultSet),
    /// Number of rows affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// DDL success.
    Done,
}

impl ExecOutcome {
    /// Unwraps a row result.
    pub fn into_rows(self) -> Result<ResultSet> {
        match self {
            ExecOutcome::Rows(rs) => Ok(rs),
            other => Err(RelError::Exec(format!("expected rows, got {other:?}"))),
        }
    }

    /// Unwraps an affected-row count.
    pub fn affected(&self) -> usize {
        match self {
            ExecOutcome::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// The catalog of tables keyed by lowercase name.
pub(crate) type Catalog = BTreeMap<String, Table>;

/// Executes a parsed statement against a catalog.
pub fn execute(catalog: &mut Catalog, stmt: Statement) -> Result<ExecOutcome> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let key = name.to_ascii_lowercase();
            if catalog.contains_key(&key) {
                return if if_not_exists {
                    Ok(ExecOutcome::Done)
                } else {
                    Err(RelError::TableExists(name))
                };
            }
            let cols = columns
                .into_iter()
                .map(|c| crate::schema::Column {
                    name: c.name,
                    ty: c.ty,
                    not_null: c.not_null || c.primary_key,
                    unique: c.unique || c.primary_key,
                    primary_key: c.primary_key,
                })
                .collect();
            let schema = crate::schema::TableSchema::new(name, cols)?;
            let table = Table::create(schema)?;
            catalog.insert(key, table);
            Ok(ExecOutcome::Done)
        }
        Statement::DropTable { name, if_exists } => {
            let key = name.to_ascii_lowercase();
            if catalog.remove(&key).is_none() && !if_exists {
                return Err(RelError::NoSuchTable(name));
            }
            Ok(ExecOutcome::Done)
        }
        Statement::CreateIndex {
            name,
            table,
            columns,
            unique,
            trigram,
        } => {
            let t = catalog
                .get_mut(&table.to_ascii_lowercase())
                .ok_or_else(|| RelError::NoSuchTable(table.clone()))?;
            let cols: Vec<usize> = columns
                .iter()
                .map(|c| {
                    t.schema
                        .column_index(c)
                        .ok_or_else(|| RelError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_>>()?;
            let def = if trigram {
                let [col] = cols[..] else {
                    return Err(RelError::Exec(
                        "TRIGRAM INDEX covers exactly one column".to_owned(),
                    ));
                };
                crate::table::IndexDef::trigram(name, col)
            } else {
                crate::table::IndexDef::btree(name, cols, unique)
            };
            t.create_index(def)?;
            Ok(ExecOutcome::Done)
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let t = catalog
                .get_mut(&table.to_ascii_lowercase())
                .ok_or_else(|| RelError::NoSuchTable(table.clone()))?;
            let arity = t.schema.arity();
            let positions: Vec<usize> = match &columns {
                None => (0..arity).collect(),
                Some(cols) => cols
                    .iter()
                    .map(|c| {
                        t.schema
                            .column_index(c)
                            .ok_or_else(|| RelError::NoSuchColumn(c.clone()))
                    })
                    .collect::<Result<_>>()?,
            };
            let empty_schema = RowSchema::default();
            let mut n = 0usize;
            for row_exprs in rows {
                if row_exprs.len() != positions.len() {
                    return Err(RelError::ArityMismatch {
                        expected: positions.len(),
                        found: row_exprs.len(),
                    });
                }
                let mut row = vec![Value::Null; arity];
                for (expr, &pos) in row_exprs.iter().zip(&positions) {
                    row[pos] = eval(expr, &empty_schema, &[])?;
                }
                t.insert(row)?;
                n += 1;
            }
            Ok(ExecOutcome::Affected(n))
        }
        Statement::Update {
            table,
            sets,
            predicate,
        } => {
            let t = catalog
                .get_mut(&table.to_ascii_lowercase())
                .ok_or_else(|| RelError::NoSuchTable(table.clone()))?;
            let schema = row_schema_for(t, t.schema.name.clone());
            let set_ix: Vec<(usize, &Expr)> = sets
                .iter()
                .map(|(c, e)| {
                    t.schema
                        .column_index(c)
                        .map(|ix| (ix, e))
                        .ok_or_else(|| RelError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_>>()?;
            // Materialize matching rows first: mutating while scanning would
            // alias the heap.
            let mut targets = Vec::new();
            for (rid, row) in t.scan() {
                if predicate_matches(&predicate, &schema, &row)? {
                    targets.push((rid, row));
                }
            }
            let n = targets.len();
            for (rid, old_row) in targets {
                let mut new_row = old_row.clone();
                for (ix, e) in &set_ix {
                    new_row[*ix] = eval(e, &schema, &old_row)?;
                }
                t.update(rid, new_row)?;
            }
            Ok(ExecOutcome::Affected(n))
        }
        Statement::Delete { table, predicate } => {
            let t = catalog
                .get_mut(&table.to_ascii_lowercase())
                .ok_or_else(|| RelError::NoSuchTable(table.clone()))?;
            let schema = row_schema_for(t, t.schema.name.clone());
            let mut targets = Vec::new();
            for (rid, row) in t.scan() {
                if predicate_matches(&predicate, &schema, &row)? {
                    targets.push(rid);
                }
            }
            let n = targets.len();
            for rid in targets {
                t.delete(rid)?;
            }
            Ok(ExecOutcome::Affected(n))
        }
        Statement::Select(sel) => Ok(ExecOutcome::Rows(execute_select(catalog, &sel)?)),
        Statement::Explain(sel) => Ok(ExecOutcome::Rows(explain_select(catalog, &sel)?)),
    }
}

fn predicate_matches(pred: &Option<Expr>, schema: &RowSchema, row: &[Value]) -> Result<bool> {
    match pred {
        None => Ok(true),
        Some(p) => Ok(truthiness(&eval(p, schema, row)?) == Some(true)),
    }
}

fn row_schema_for(t: &Table, alias: String) -> RowSchema {
    RowSchema::new(
        t.schema
            .columns
            .iter()
            .map(|c| (Some(alias.clone()), c.name.clone()))
            .collect(),
    )
}

// ---------- SELECT ----------

/// Executes a SELECT against an immutable catalog with the default planner.
pub fn execute_select(catalog: &Catalog, sel: &SelectStmt) -> Result<ResultSet> {
    execute_select_with(catalog, sel, &PlannerConfig::default())
}

/// Executes a SELECT with an explicit planner configuration.
/// [`PlannerConfig::naive`] is the reference behavior the property suite and
/// the bench compare the optimized plans against.
pub fn execute_select_with(
    catalog: &Catalog,
    sel: &SelectStmt,
    cfg: &PlannerConfig,
) -> Result<ResultSet> {
    let plan = plan_select(catalog, sel, cfg)?;
    if plan.reordered {
        obs::counter("sql_plan_join_reorder_total").inc();
    }

    // 1. FROM + planned access path.
    let (mut schema, mut rows) = match &plan.base {
        None => (RowSchema::default(), vec![Vec::new()]),
        Some(scan) => {
            let t = lookup(catalog, &scan.table_key)?;
            bump_path_counter(&scan.path);
            (row_schema_for(t, scan.alias.clone()), run_scan(t, scan)?)
        }
    };

    // 2. Joins in planned order: index probes where the plan found an
    //    equi-join key, nested loops otherwise; LEFT pads with NULLs.
    for step in &plan.joins {
        let t = lookup(catalog, &step.scan.table_key)?;
        let right_schema = row_schema_for(t, step.scan.alias.clone());
        let joined_schema = schema.concat(&right_schema);
        let mut out = Vec::new();
        if let Some(probe) = &step.probe {
            obs::counter("sql_plan_index_probe_join_total").inc();
            let (_, index) = t.index_on_column(probe.col).ok_or_else(|| {
                RelError::Exec(format!("planned index `{}` disappeared", probe.index))
            })?;
            for left in &rows {
                let mut matched = false;
                let key = eval(&probe.left_expr, &schema, left)?;
                // An equi-join never matches on NULL keys, so skip the probe.
                if !key.is_null() {
                    for rid in index.get(&vec![key]) {
                        let Some(right) = t.get(rid)? else { continue };
                        let mut combined = left.clone();
                        combined.extend(right);
                        if truthiness(&eval(&step.on, &joined_schema, &combined)?) == Some(true) {
                            matched = true;
                            out.push(combined);
                        }
                    }
                }
                if !matched && step.kind == JoinKind::Left {
                    let mut combined = left.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_schema.len()));
                    out.push(combined);
                }
            }
        } else {
            bump_path_counter(&step.scan.path);
            let right_rows = run_scan(t, &step.scan)?;
            for left in &rows {
                let mut matched = false;
                for right in &right_rows {
                    let mut combined = left.clone();
                    combined.extend(right.iter().cloned());
                    if truthiness(&eval(&step.on, &joined_schema, &combined)?) == Some(true) {
                        matched = true;
                        out.push(combined);
                    }
                }
                if !matched && step.kind == JoinKind::Left {
                    let mut combined = left.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_schema.len()));
                    out.push(combined);
                }
            }
        }
        schema = joined_schema;
        rows = out;
    }

    // 2b. Restore written column order after a join reorder, so the rest of
    //     the pipeline (and the user) see the layout the query declared.
    if let Some(slots) = &plan.written_slots {
        schema = RowSchema::new(slots.iter().map(|&s| schema.columns()[s].clone()).collect());
        rows = rows
            .into_iter()
            .map(|r| slots.iter().map(|&s| r[s].clone()).collect())
            .collect();
    }

    // 3. WHERE.
    if let Some(pred) = &sel.predicate {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if truthiness(&eval(pred, &schema, &row)?) == Some(true) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // 4. Grouping / aggregation.
    let has_agg = sel
        .projection
        .iter()
        .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
        || sel.order_by.iter().any(|o| o.expr.contains_aggregate());
    let grouped = !sel.group_by.is_empty() || has_agg;

    let (out_columns, mut out_rows) = if grouped {
        grouped_output(sel, &schema, &rows)?
    } else {
        plain_output(sel, &schema, &rows)?
    };

    // 6. DISTINCT.
    if sel.distinct {
        let mut seen = HashSet::new();
        out_rows.retain(|(out, _)| seen.insert(out.clone()));
    }

    // 7. ORDER BY (keys were precomputed per row by the output builders).
    if !sel.order_by.is_empty() {
        let descs: Vec<bool> = sel.order_by.iter().map(|o| o.desc).collect();
        out_rows.sort_by(|(_, ka), (_, kb)| {
            for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                let ord = a.cmp(b);
                if ord != std::cmp::Ordering::Equal {
                    return if descs[i] { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 8. OFFSET / LIMIT.
    let offset = sel.offset.unwrap_or(0);
    let mut final_rows: Vec<Vec<Value>> = out_rows.into_iter().map(|(r, _)| r).collect();
    if offset > 0 {
        final_rows.drain(..offset.min(final_rows.len()));
    }
    if let Some(limit) = sel.limit {
        final_rows.truncate(limit);
    }

    Ok(ResultSet {
        columns: out_columns,
        rows: final_rows,
    })
}

fn lookup<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table> {
    catalog
        .get(&name.to_ascii_lowercase())
        .ok_or_else(|| RelError::NoSuchTable(name.to_owned()))
}

/// Renders one planned access path for EXPLAIN output.
fn render_access(catalog: &Catalog, scan: &ScanPlan) -> Result<String> {
    let t = lookup(catalog, &scan.table_key)?;
    let col_name = |c: usize| t.schema.columns[c].name.clone();
    Ok(match &scan.path {
        AccessPath::FullScan => format!("FullScan {}", scan.display),
        AccessPath::IndexSeek { index, col, .. } => format!(
            "IndexSeek {} via {index} (eq on {})",
            scan.display,
            col_name(*col)
        ),
        AccessPath::RangeScan { index, col, .. } => format!(
            "RangeScan {} via {index} (range on {})",
            scan.display,
            col_name(*col)
        ),
        AccessPath::TrigramSeek { index, col, needle } => format!(
            "TrigramSeek {} via {index} (substr '{needle}' on {})",
            scan.display,
            col_name(*col)
        ),
    })
}

/// Renders the plan a SELECT would run, one step per row — the
/// observability hook that lets tests (and users) verify an index is
/// actually chosen. Shows the same plan [`execute_select`] runs.
pub fn explain_select(catalog: &Catalog, sel: &SelectStmt) -> Result<ResultSet> {
    let plan = plan_select(catalog, sel, &PlannerConfig::default())?;
    let mut steps: Vec<String> = Vec::new();
    if plan.reordered {
        steps.push("JoinReorder (by estimated cardinality)".to_owned());
    }
    match &plan.base {
        None => steps.push("ConstantRow".to_owned()),
        Some(scan) => steps.push(render_access(catalog, scan)?),
    }
    for step in &plan.joins {
        let kind = match step.kind {
            JoinKind::Inner => "Inner",
            JoinKind::Left => "Left",
        };
        match &step.probe {
            Some(probe) => steps.push(format!(
                "IndexProbe{kind}Join {} via {}",
                step.scan.display, probe.index
            )),
            None => {
                let mut s = format!("NestedLoop{kind}Join {}", step.scan.display);
                if !matches!(step.scan.path, AccessPath::FullScan) {
                    s.push_str(&format!(" ({})", render_access(catalog, &step.scan)?));
                }
                steps.push(s);
            }
        }
    }
    if sel.predicate.is_some() {
        steps.push("Filter".to_owned());
    }
    let has_agg = sel
        .projection
        .iter()
        .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || sel.having.as_ref().is_some_and(Expr::contains_aggregate);
    if !sel.group_by.is_empty() || has_agg {
        steps.push(format!(
            "HashAggregate (group by {} keys)",
            sel.group_by.len()
        ));
    }
    if sel.having.is_some() {
        steps.push("HavingFilter".to_owned());
    }
    steps.push("Project".to_owned());
    if sel.distinct {
        steps.push("Distinct".to_owned());
    }
    if !sel.order_by.is_empty() {
        steps.push(format!("Sort ({} keys)", sel.order_by.len()));
    }
    if sel.offset.is_some() || sel.limit.is_some() {
        steps.push(format!(
            "LimitOffset (limit {:?}, offset {:?})",
            sel.limit, sel.offset
        ));
    }
    Ok(ResultSet {
        columns: vec!["plan".to_owned()],
        rows: steps.into_iter().map(|s| vec![Value::Text(s)]).collect(),
    })
}

/// Increments the per-access-path observability counter. Bumped when a scan
/// actually executes, so metrics reflect real work, not EXPLAIN calls.
fn bump_path_counter(path: &AccessPath) {
    let name = match path {
        AccessPath::FullScan => "sql_plan_full_scan_total",
        AccessPath::IndexSeek { .. } => "sql_plan_index_seek_total",
        AccessPath::RangeScan { .. } => "sql_plan_range_scan_total",
        AccessPath::TrigramSeek { .. } => "sql_plan_trigram_seek_total",
    };
    obs::counter(name).inc();
}

/// Materializes the rows a planned access path produces. Superset semantics:
/// callers re-apply the full predicate afterwards.
fn run_scan(t: &Table, scan: &ScanPlan) -> Result<Vec<Vec<Value>>> {
    let rids: Vec<_> = match &scan.path {
        AccessPath::FullScan => return Ok(t.scan().map(|(_, r)| r).collect()),
        AccessPath::IndexSeek { index, col, key } => {
            let (_, ix) = t
                .index_on_column(*col)
                .ok_or_else(|| RelError::Exec(format!("planned index `{index}` disappeared")))?;
            ix.get(&vec![key.clone()])
        }
        AccessPath::RangeScan { index, col, lo, hi } => {
            let (_, ix) = t
                .index_on_column(*col)
                .ok_or_else(|| RelError::Exec(format!("planned index `{index}` disappeared")))?;
            let lo_key = lo.as_ref().map(|(v, incl)| (vec![v.clone()], *incl));
            let hi_key = hi.as_ref().map(|(v, incl)| (vec![v.clone()], *incl));
            let lo_bound = match &lo_key {
                None => Bound::Unbounded,
                Some((k, true)) => Bound::Included(k),
                Some((k, false)) => Bound::Excluded(k),
            };
            let hi_bound = match &hi_key {
                None => Bound::Unbounded,
                Some((k, true)) => Bound::Included(k),
                Some((k, false)) => Bound::Excluded(k),
            };
            ix.range(lo_bound, hi_bound)
                .into_iter()
                .map(|(_, rid)| rid)
                .collect()
        }
        AccessPath::TrigramSeek { index, col, needle } => {
            let (_, trgm) = t.trigram_on_column(*col).ok_or_else(|| {
                RelError::Exec(format!("planned trigram index `{index}` disappeared"))
            })?;
            match trgm.candidates(needle) {
                Some(rids) => rids,
                // Unusable needle (shorter than a trigram): planner should
                // not have chosen this, but degrade to a full scan safely.
                None => return Ok(t.scan().map(|(_, r)| r).collect()),
            }
        }
    };
    let mut rows = Vec::with_capacity(rids.len());
    for rid in rids {
        if let Some(row) = t.get(rid)? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Plans a SELECT with the default configuration — the entry point EXPLAIN
/// and estimation APIs share with execution.
pub fn plan_default(catalog: &Catalog, sel: &SelectStmt) -> Result<SelectPlan> {
    plan_select(catalog, sel, &PlannerConfig::default())
}

// ---------- projection ----------

type KeyedRows = Vec<(Vec<Value>, Vec<Value>)>; // (output row, sort keys)

/// Output column names for a projection.
fn projection_names(sel: &SelectStmt, schema: &RowSchema) -> Vec<String> {
    let mut names = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => {
                names.extend(schema.columns().iter().map(|(_, n)| n.clone()));
            }
            SelectItem::QualifiedWildcard(alias) => {
                for ix in schema.slots_of(alias) {
                    names.push(schema.columns()[ix].1.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| render_expr_name(expr)));
            }
        }
    }
    names
}

fn render_expr_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Literal(v) => v.to_string(),
        Expr::Agg { func, arg, .. } => {
            let f = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg {
                None => format!("{f}(*)"),
                Some(a) => format!("{f}({})", render_expr_name(a)),
            }
        }
        Expr::Func { name, .. } => format!("{name}(..)"),
        _ => "expr".to_owned(),
    }
}

/// Projects ungrouped rows, also computing ORDER BY sort keys.
fn plain_output(
    sel: &SelectStmt,
    schema: &RowSchema,
    rows: &[Vec<Value>],
) -> Result<(Vec<String>, KeyedRows)> {
    let names = projection_names(sel, schema);
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut orow = Vec::new();
        for item in &sel.projection {
            match item {
                SelectItem::Wildcard => orow.extend(row.iter().cloned()),
                SelectItem::QualifiedWildcard(alias) => {
                    let slots = schema.slots_of(alias);
                    if slots.is_empty() {
                        return Err(RelError::Exec(format!("unknown table alias `{alias}`")));
                    }
                    orow.extend(slots.into_iter().map(|ix| row[ix].clone()));
                }
                SelectItem::Expr { expr, .. } => orow.push(eval(expr, schema, row)?),
            }
        }
        let keys = order_keys(sel, schema, row, &names, &orow, None)?;
        out.push((orow, keys));
    }
    Ok((names, out))
}

/// Projects grouped rows: groups by GROUP BY keys, folds aggregates, applies
/// HAVING, computes sort keys.
fn grouped_output(
    sel: &SelectStmt,
    schema: &RowSchema,
    rows: &[Vec<Value>],
) -> Result<(Vec<String>, KeyedRows)> {
    // Build groups preserving first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
    if sel.group_by.is_empty() {
        // Single global group (possibly empty).
        order.push(Vec::new());
        groups.insert(Vec::new(), rows.to_vec());
    } else {
        for row in rows {
            let key: Vec<Value> = sel
                .group_by
                .iter()
                .map(|e| eval(e, schema, row))
                .collect::<Result<_>>()?;
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    order.push(key.clone());
                    Vec::new()
                })
                .push(row.clone());
        }
    }

    let names = projection_names(sel, schema);
    let null_row = vec![Value::Null; schema.len()];
    let mut out = Vec::new();
    for key in order {
        let group = &groups[&key];
        let rep: &[Value] = group.first().map(|r| r.as_slice()).unwrap_or(&null_row);
        if let Some(having) = &sel.having {
            let folded = fold_aggs(having, schema, group)?;
            if truthiness(&eval(&folded, schema, rep)?) != Some(true) {
                continue;
            }
        }
        let mut orow = Vec::new();
        for item in &sel.projection {
            match item {
                SelectItem::Wildcard => orow.extend(rep.iter().cloned()),
                SelectItem::QualifiedWildcard(alias) => {
                    orow.extend(schema.slots_of(alias).into_iter().map(|ix| rep[ix].clone()));
                }
                SelectItem::Expr { expr, .. } => {
                    let folded = fold_aggs(expr, schema, group)?;
                    orow.push(eval(&folded, schema, rep)?);
                }
            }
        }
        let keys = order_keys(sel, schema, rep, &names, &orow, Some(group))?;
        out.push((orow, keys));
    }
    Ok((names, out))
}

/// Computes ORDER BY sort keys for one output row. An order expression that is
/// a bare column matching an output alias sorts by the output value; a bare
/// positive integer literal is positional; anything else evaluates against the
/// source row (folding aggregates in grouped mode).
fn order_keys(
    sel: &SelectStmt,
    schema: &RowSchema,
    src_row: &[Value],
    out_names: &[String],
    out_row: &[Value],
    group: Option<&Vec<Vec<Value>>>,
) -> Result<Vec<Value>> {
    let mut keys = Vec::with_capacity(sel.order_by.len());
    for item in &sel.order_by {
        // Positional: ORDER BY 2.
        if let Expr::Literal(Value::Int(n)) = &item.expr {
            let ix = *n as usize;
            if ix >= 1 && ix <= out_row.len() {
                keys.push(out_row[ix - 1].clone());
                continue;
            }
        }
        // Output alias.
        if let Expr::Column { table: None, name } = &item.expr {
            if schema.resolve(None, name).is_err() {
                if let Some(pos) = out_names.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                    keys.push(out_row[pos].clone());
                    continue;
                }
            }
        }
        let v = match group {
            Some(g) => {
                let folded = fold_aggs(&item.expr, schema, g)?;
                eval(&folded, schema, src_row)?
            }
            None => eval(&item.expr, schema, src_row)?,
        };
        keys.push(v);
    }
    Ok(keys)
}

/// Replaces every aggregate node in `expr` with the literal computed over the
/// group's rows.
fn fold_aggs(expr: &Expr, schema: &RowSchema, group: &[Vec<Value>]) -> Result<Expr> {
    Ok(match expr {
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Literal(compute_agg(
            *func,
            arg.as_deref(),
            *distinct,
            schema,
            group,
        )?),
        Expr::Literal(_) | Expr::Column { .. } => expr.clone(),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(fold_aggs(lhs, schema, group)?),
            rhs: Box::new(fold_aggs(rhs, schema, group)?),
        },
        Expr::Unary { op, expr: e } => Expr::Unary {
            op: *op,
            expr: Box::new(fold_aggs(e, schema, group)?),
        },
        Expr::IsNull { expr: e, negated } => Expr::IsNull {
            expr: Box::new(fold_aggs(e, schema, group)?),
            negated: *negated,
        },
        Expr::InList {
            expr: e,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(fold_aggs(e, schema, group)?),
            list: list
                .iter()
                .map(|i| fold_aggs(i, schema, group))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr: e,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(fold_aggs(e, schema, group)?),
            lo: Box::new(fold_aggs(lo, schema, group)?),
            hi: Box::new(fold_aggs(hi, schema, group)?),
            negated: *negated,
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| fold_aggs(a, schema, group))
                .collect::<Result<_>>()?,
        },
    })
}

fn compute_agg(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    schema: &RowSchema,
    group: &[Vec<Value>],
) -> Result<Value> {
    // COUNT(*) counts rows including NULLs.
    let Some(arg) = arg else {
        return Ok(Value::Int(group.len() as i64));
    };
    let mut vals = Vec::with_capacity(group.len());
    for row in group {
        let v = eval(arg, schema, row)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        vals.retain(|v| seen.insert(v.clone()));
    }
    Ok(match func {
        AggFunc::Count => Value::Int(vals.len() as i64),
        AggFunc::Min => vals.into_iter().min().unwrap_or(Value::Null),
        AggFunc::Max => vals.into_iter().max().unwrap_or(Value::Null),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
            if all_int && func == AggFunc::Sum {
                let mut acc = 0i64;
                for v in &vals {
                    let i = v
                        .as_int()
                        .ok_or_else(|| RelError::Exec("SUM of non-integer".into()))?;
                    acc = acc
                        .checked_add(i)
                        .ok_or_else(|| RelError::Exec("SUM overflow".into()))?;
                }
                Value::Int(acc)
            } else {
                let mut acc = 0f64;
                let n = vals.len() as f64;
                for v in &vals {
                    acc += v
                        .as_float()
                        .ok_or_else(|| RelError::Exec("SUM/AVG of non-number".into()))?;
                }
                if func == AggFunc::Avg {
                    Value::float(acc / n)
                } else {
                    Value::float(acc)
                }
            }
        }
    })
}
