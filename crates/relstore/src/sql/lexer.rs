//! SQL tokenizer.

use crate::error::{RelError, Result};

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Double-quoted identifier (exact case).
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
    /// String concatenation `||`.
    Concat,
}

/// Tokenizes a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                tokens.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token::Symbol(Sym::Concat));
                i += 2;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol(Sym::Neq));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Symbol(Sym::Neq));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted_ident(input, i)?;
                tokens.push(Token::QuotedIdent(s));
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while let Some(ch) = input[i..].chars().next() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(RelError::Lex(format!(
                    "unexpected character `{other}` at byte {i}"
                )));
            }
        }
    }
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else if let Some(ch) = input[i..].chars().next() {
            out.push(ch);
            i += ch.len_utf8();
        } else {
            break; // i on a non-boundary byte cannot happen; bail to the error
        }
    }
    Err(RelError::Lex("unterminated string literal".into()))
}

fn lex_quoted_ident(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        if bytes[i] == b'"' {
            return Ok((out, i + 1));
        }
        let Some(ch) = input[i..].chars().next() else {
            break; // i on a non-boundary byte cannot happen; bail to the error
        };
        out.push(ch);
        i += ch.len_utf8();
    }
    Err(RelError::Lex("unterminated quoted identifier".into()))
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    let tok = if is_float {
        Token::Float(
            text.parse()
                .map_err(|_| RelError::Lex(format!("bad float literal `{text}`")))?,
        )
    } else {
        Token::Int(
            text.parse()
                .map_err(|_| RelError::Lex(format!("integer literal `{text}` out of range")))?,
        )
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = lex("SELECT a, b FROM t WHERE x >= 10;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Int(10)));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(Sym::Semicolon));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s fine'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's fine".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("3.25").unwrap(), vec![Token::Float(3.25)]);
        assert_eq!(lex("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(lex("2.5e-1").unwrap(), vec![Token::Float(0.25)]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn neq_spellings() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Symbol(Sym::Neq)]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Symbol(Sym::Neq)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unicode_identifiers_and_strings() {
        let toks = lex("SELECT 'Zürich' FROM météo").unwrap();
        assert_eq!(toks[1], Token::Str("Zürich".into()));
        assert_eq!(toks[3], Token::Ident("météo".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = lex("\"Weird Name\"").unwrap();
        assert_eq!(toks, vec![Token::QuotedIdent("Weird Name".into())]);
    }

    #[test]
    fn concat_operator() {
        assert_eq!(lex("||").unwrap(), vec![Token::Symbol(Sym::Concat)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT #").is_err());
    }
}
