//! Cost-based SELECT planning.
//!
//! The planner turns a parsed `SelectStmt` into an explicit [`SelectPlan`]:
//! an access path per relation (full scan, B-tree seek/range, trigram seek),
//! optional index-probe joins, and — for all-inner joins — a join order
//! chosen by estimated cardinality. Cardinalities come from three sources,
//! cheapest-exact first: plan-time B-tree probes for equality keys,
//! histogram fractions from [`TableStats`](crate::table::TableStats) for
//! ranges, and minimum posting length from
//! [`TrigramIndex`](crate::trigram::TrigramIndex) for substrings.
//!
//! Safety invariant (shared with the executor): every access path returns a
//! *superset* of the rows its predicate matches, and the full WHERE / ON
//! predicates are always re-applied, so plan choices can never change
//! results — only how much work it takes to produce them.

use super::ast::*;
use super::exec::Catalog;
use crate::error::{RelError, Result};
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeSet;

/// Which planner features are enabled. [`PlannerConfig::naive`] forces full
/// scans and written join order everywhere — the reference behavior the
/// property suite and the bench compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Use B-tree indexes for equality / range / LIKE-prefix predicates.
    pub use_indexes: bool,
    /// Use trigram indexes for substring (LIKE/ILIKE `%…%`) predicates.
    pub use_trigram: bool,
    /// Reorder all-inner join chains by estimated cardinality.
    pub reorder_joins: bool,
    /// Turn equi-joins on indexed columns into index-probe joins.
    pub probe_joins: bool,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            use_indexes: true,
            use_trigram: true,
            reorder_joins: true,
            probe_joins: true,
        }
    }
}

impl PlannerConfig {
    /// Everything off: full scans, nested loops, written join order.
    pub fn naive() -> PlannerConfig {
        PlannerConfig {
            use_indexes: false,
            use_trigram: false,
            reorder_joins: false,
            probe_joins: false,
        }
    }
}

/// How one relation's rows are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every live row.
    FullScan,
    /// B-tree equality probe.
    IndexSeek {
        /// Index name.
        index: String,
        /// Column position the key applies to.
        col: usize,
        /// Probe key.
        key: Value,
    },
    /// B-tree range scan; bounds are `(value, inclusive)`.
    RangeScan {
        /// Index name.
        index: String,
        /// Column position the bounds apply to.
        col: usize,
        /// Lower bound.
        lo: Option<(Value, bool)>,
        /// Upper bound.
        hi: Option<(Value, bool)>,
    },
    /// Trigram posting intersection for a substring.
    TrigramSeek {
        /// Index name.
        index: String,
        /// Column position the needle applies to.
        col: usize,
        /// Literal substring extracted from the LIKE/ILIKE pattern.
        needle: String,
    },
}

/// Planned access to one relation.
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// Lowercase catalog key of the table.
    pub table_key: String,
    /// Table name as declared (for EXPLAIN).
    pub display: String,
    /// Effective alias in the query.
    pub alias: String,
    /// Chosen access path.
    pub path: AccessPath,
    /// Estimated output rows.
    pub est_rows: f64,
}

/// An index-probe join: for each joined-so-far row, evaluate `left_expr`
/// and probe the right table's B-tree instead of loop-scanning it.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    /// Right-side index name.
    pub index: String,
    /// Right-side column position.
    pub col: usize,
    /// Key expression over the already-joined columns.
    pub left_expr: Expr,
}

/// One planned join step.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// INNER or LEFT.
    pub kind: JoinKind,
    /// ON predicate applied to each combined row (re-attached conjuncts
    /// when the join chain was reordered).
    pub on: Expr,
    /// Loop-scan access for the right side (also carries naming/estimates
    /// when a probe is used).
    pub scan: ScanPlan,
    /// When set, probe instead of loop-scanning.
    pub probe: Option<ProbePlan>,
}

/// A full SELECT plan: base access, join steps, and — if the join chain was
/// reordered — the slot permutation restoring written column order.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Base relation access (`None` for FROM-less selects).
    pub base: Option<ScanPlan>,
    /// Join steps in execution order.
    pub joins: Vec<JoinStep>,
    /// True when execution order differs from written order.
    pub reordered: bool,
    /// For each written-layout slot, its index in the executed layout.
    /// `None` when layouts coincide.
    pub written_slots: Option<Vec<usize>>,
}

/// One relation of the query in written order.
struct Rel<'a> {
    table: &'a Table,
    key: String,
    alias: String,
}

fn lookup<'a>(catalog: &'a Catalog, name: &str) -> Result<&'a Table> {
    catalog
        .get(&name.to_ascii_lowercase())
        .ok_or_else(|| RelError::NoSuchTable(name.to_owned()))
}

fn make_rel<'a>(catalog: &'a Catalog, tref: &TableRef) -> Result<Rel<'a>> {
    let table = lookup(catalog, &tref.table)?;
    Ok(Rel {
        table,
        key: tref.table.to_ascii_lowercase(),
        alias: tref.effective_alias().to_owned(),
    })
}

fn scan_all(rel: &Rel<'_>) -> ScanPlan {
    ScanPlan {
        table_key: rel.key.clone(),
        display: rel.table.schema.name.clone(),
        alias: rel.alias.clone(),
        path: AccessPath::FullScan,
        est_rows: rel.table.len() as f64,
    }
}

/// Splits an expression into its top-level AND conjuncts.
fn split_conjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        lhs,
        rhs,
    } = expr
    {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(expr);
    }
}

/// AND-combines conjuncts back into one predicate (TRUE when empty).
fn combine_conjuncts(conjs: &[&Expr]) -> Expr {
    let mut it = conjs.iter();
    match it.next() {
        None => Expr::lit(true),
        Some(first) => it.fold((*first).clone(), |acc, c| Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(acc),
            rhs: Box::new((*c).clone()),
        }),
    }
}

/// Resolves a column reference against one relation, refusing ambiguity:
/// a qualifier must equal the relation's alias; an unqualified name must
/// exist in this relation and in no other.
fn resolve_for_rel(
    qual: &Option<String>,
    name: &str,
    rel_ix: usize,
    rels: &[Rel<'_>],
) -> Option<usize> {
    match qual {
        Some(q) => {
            if q.eq_ignore_ascii_case(&rels[rel_ix].alias) {
                rels[rel_ix].table.schema.column_index(name)
            } else {
                None
            }
        }
        None => {
            let here = rels[rel_ix].table.schema.column_index(name)?;
            let elsewhere = rels
                .iter()
                .enumerate()
                .any(|(i, r)| i != rel_ix && r.table.schema.column_index(name).is_some());
            (!elsewhere).then_some(here)
        }
    }
}

/// Collects the lowercase aliases a conjunct's column references resolve to.
/// Returns `None` when any reference cannot be scoped unambiguously — the
/// caller then refrains from reordering.
fn conjunct_scope(expr: &Expr, rels: &[Rel<'_>]) -> Option<BTreeSet<String>> {
    let mut scope = BTreeSet::new();
    let mut ok = true;
    visit_columns(expr, &mut |qual, name| {
        if !ok {
            return;
        }
        match scope_of(qual, name, rels) {
            Some(alias) => {
                scope.insert(alias);
            }
            None => ok = false,
        }
    });
    ok.then_some(scope)
}

/// The unique relation alias a single column reference belongs to.
fn scope_of(qual: &Option<String>, name: &str, rels: &[Rel<'_>]) -> Option<String> {
    match qual {
        Some(q) => rels
            .iter()
            .find(|r| r.alias.eq_ignore_ascii_case(q))
            .map(|r| r.alias.to_ascii_lowercase()),
        None => {
            let mut owner = None;
            for r in rels {
                if r.table.schema.column_index(name).is_some() {
                    if owner.is_some() {
                        return None; // ambiguous
                    }
                    owner = Some(r.alias.to_ascii_lowercase());
                }
            }
            owner
        }
    }
}

fn visit_columns(expr: &Expr, f: &mut impl FnMut(&Option<String>, &str)) {
    match expr {
        Expr::Literal(_) => {}
        Expr::Column { table, name } => f(table, name),
        Expr::Binary { lhs, rhs, .. } => {
            visit_columns(lhs, f);
            visit_columns(rhs, f);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => visit_columns(expr, f),
        Expr::InList { expr, list, .. } => {
            visit_columns(expr, f);
            for e in list {
                visit_columns(e, f);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            visit_columns(expr, f);
            visit_columns(lo, f);
            visit_columns(hi, f);
        }
        Expr::Func { args, .. } => {
            for a in args {
                visit_columns(a, f);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                visit_columns(a, f);
            }
        }
    }
}

/// Longest run of literal characters (no `%`/`_`) in a LIKE pattern — the
/// best needle for a trigram probe. Empty when no run reaches three chars.
fn longest_literal_run(pattern: &str) -> String {
    pattern
        .split(['%', '_'])
        .max_by_key(|s| s.chars().count())
        .unwrap_or("")
        .to_owned()
}

/// Smallest string strictly greater than every string with this prefix.
pub(crate) fn like_prefix_upper_bound(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(last) = chars.pop() {
        if let Some(next) = char::from_u32(u32::from(last) + 1) {
            chars.push(next);
            return Some(chars.into_iter().collect());
        }
    }
    None
}

/// Cost estimate for a range over a column, via the stats histogram.
fn range_estimate(
    t: &Table,
    col: usize,
    lo: Option<(&Value, bool)>,
    hi: Option<(&Value, bool)>,
) -> f64 {
    let rows = t.len() as f64;
    let frac = t
        .stats()
        .columns
        .get(col)
        .map_or(0.5, |cs| cs.range_fraction(lo, hi));
    // Never claim a range is free: histogram resolution is finite.
    (rows * frac).max(rows.min(1.0))
}

/// All candidate access paths one conjunct offers for a relation, with
/// estimated row counts.
fn conjunct_paths(
    expr: &Expr,
    rel_ix: usize,
    rels: &[Rel<'_>],
    cfg: &PlannerConfig,
    out: &mut Vec<(AccessPath, f64)>,
) {
    let t = rels[rel_ix].table;
    match expr {
        Expr::Binary {
            op: op @ (BinOp::Like | BinOp::ILike),
            lhs,
            rhs,
        } => {
            let Expr::Column { table, name } = &**lhs else {
                return;
            };
            let Some(col) = resolve_for_rel(table, name, rel_ix, rels) else {
                return;
            };
            let Expr::Literal(Value::Text(pattern)) = &**rhs else {
                return;
            };
            // Case-sensitive prefix → B-tree range over [prefix, next).
            if *op == BinOp::Like && cfg.use_indexes {
                let prefix: String = pattern
                    .chars()
                    .take_while(|c| *c != '%' && *c != '_')
                    .collect();
                if !prefix.is_empty() {
                    if let (Some(upper), Some(_)) =
                        (like_prefix_upper_bound(&prefix), t.index_on_column(col))
                    {
                        let lo = Value::Text(prefix);
                        let hi = Value::Text(upper);
                        let est = range_estimate(t, col, Some((&lo, true)), Some((&hi, false)));
                        if let Some((def, _)) = t.index_on_column(col) {
                            out.push((
                                AccessPath::RangeScan {
                                    index: def.name.clone(),
                                    col,
                                    lo: Some((lo, true)),
                                    hi: Some((hi, false)),
                                },
                                est,
                            ));
                        }
                    }
                }
            }
            // Any literal run ≥ 3 chars → trigram seek (case-insensitive
            // postings serve both LIKE and ILIKE as supersets).
            if cfg.use_trigram {
                let needle = longest_literal_run(pattern);
                if let Some((def, trgm)) = t.trigram_on_column(col) {
                    if let Some(est) = trgm.estimate(&needle) {
                        out.push((
                            AccessPath::TrigramSeek {
                                index: def.name.clone(),
                                col,
                                needle,
                            },
                            est as f64,
                        ));
                    }
                }
            }
        }
        Expr::Binary { op, lhs, rhs } if cfg.use_indexes => {
            let (col, lit, flipped) = match (&**lhs, &**rhs) {
                (Expr::Column { table, name }, Expr::Literal(v)) => {
                    match resolve_for_rel(table, name, rel_ix, rels) {
                        Some(c) => (c, v, false),
                        None => return,
                    }
                }
                (Expr::Literal(v), Expr::Column { table, name }) => {
                    match resolve_for_rel(table, name, rel_ix, rels) {
                        Some(c) => (c, v, true),
                        None => return,
                    }
                }
                _ => return,
            };
            if lit.is_null() {
                return;
            }
            let Some((def, index)) = t.index_on_column(col) else {
                return;
            };
            // One end of a B-tree range: `(key, inclusive)`.
            type RangeEnd = Option<(Value, bool)>;
            let bounds: Option<(RangeEnd, RangeEnd)> = match (op, flipped) {
                (BinOp::Eq, _) => {
                    let est = index.get(&vec![lit.clone()]).len() as f64;
                    out.push((
                        AccessPath::IndexSeek {
                            index: def.name.clone(),
                            col,
                            key: lit.clone(),
                        },
                        est,
                    ));
                    None
                }
                (BinOp::Lt, false) | (BinOp::Gt, true) => Some((None, Some((lit.clone(), false)))),
                (BinOp::Le, false) | (BinOp::Ge, true) => Some((None, Some((lit.clone(), true)))),
                (BinOp::Gt, false) | (BinOp::Lt, true) => Some((Some((lit.clone(), false)), None)),
                (BinOp::Ge, false) | (BinOp::Le, true) => Some((Some((lit.clone(), true)), None)),
                _ => None,
            };
            if let Some((lo, hi)) = bounds {
                let est = range_estimate(
                    t,
                    col,
                    lo.as_ref().map(|(v, i)| (v, *i)),
                    hi.as_ref().map(|(v, i)| (v, *i)),
                );
                out.push((
                    AccessPath::RangeScan {
                        index: def.name.clone(),
                        col,
                        lo,
                        hi,
                    },
                    est,
                ));
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } if cfg.use_indexes => {
            let Expr::Column { table, name } = &**expr else {
                return;
            };
            let Some(col) = resolve_for_rel(table, name, rel_ix, rels) else {
                return;
            };
            let (Expr::Literal(lov), Expr::Literal(hiv)) = (&**lo, &**hi) else {
                return;
            };
            if lov.is_null() || hiv.is_null() {
                return;
            }
            let Some((def, _)) = t.index_on_column(col) else {
                return;
            };
            let est = range_estimate(t, col, Some((lov, true)), Some((hiv, true)));
            out.push((
                AccessPath::RangeScan {
                    index: def.name.clone(),
                    col,
                    lo: Some((lov.clone(), true)),
                    hi: Some((hiv.clone(), true)),
                },
                est,
            ));
        }
        _ => {}
    }
}

/// Picks the cheapest access path for one relation given the conjuncts that
/// may narrow it. Full scan is the fallback; an indexed path must be
/// estimated strictly cheaper to win.
fn best_access(
    rel_ix: usize,
    rels: &[Rel<'_>],
    conjuncts: &[&Expr],
    cfg: &PlannerConfig,
) -> ScanPlan {
    let mut best = scan_all(&rels[rel_ix]);
    let mut candidates = Vec::new();
    for c in conjuncts {
        conjunct_paths(c, rel_ix, rels, cfg, &mut candidates);
    }
    for (path, est) in candidates {
        if est < best.est_rows {
            best.path = path;
            best.est_rows = est;
        }
    }
    best
}

/// Finds an index-probe opportunity among a join step's ON conjuncts:
/// `right.col = expr-over-in-scope-aliases` with a B-tree on `right.col`.
fn find_probe(
    conjuncts: &[&Expr],
    rel_ix: usize,
    rels: &[Rel<'_>],
    in_scope: &BTreeSet<String>,
) -> Option<ProbePlan> {
    for c in conjuncts {
        let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = c
        else {
            continue;
        };
        for (col_side, other) in [(lhs, rhs), (rhs, lhs)] {
            let Expr::Column { table, name } = &**col_side else {
                continue;
            };
            let Some(col) = resolve_for_rel(table, name, rel_ix, rels) else {
                continue;
            };
            let Some(scope) = conjunct_scope(other, rels) else {
                continue;
            };
            if !scope.is_subset(in_scope) {
                continue;
            }
            if let Some((def, _)) = rels[rel_ix].table.index_on_column(col) {
                return Some(ProbePlan {
                    index: def.name.clone(),
                    col,
                    left_expr: (**other).clone(),
                });
            }
        }
    }
    None
}

/// Plans a SELECT. See the module docs for the cost model and the safety
/// invariant that makes every choice result-preserving.
pub fn plan_select(catalog: &Catalog, sel: &SelectStmt, cfg: &PlannerConfig) -> Result<SelectPlan> {
    let Some(base_ref) = &sel.from else {
        return Ok(SelectPlan {
            base: None,
            joins: Vec::new(),
            reordered: false,
            written_slots: None,
        });
    };
    let mut rels = vec![make_rel(catalog, base_ref)?];
    for j in &sel.joins {
        rels.push(make_rel(catalog, &j.table)?);
    }

    // Duplicate aliases make column scoping ambiguous; plan conservatively.
    let mut seen = BTreeSet::new();
    let aliases_distinct = rels
        .iter()
        .all(|r| seen.insert(r.alias.to_ascii_lowercase()));

    let mut where_conjuncts: Vec<&Expr> = Vec::new();
    if let Some(p) = &sel.predicate {
        split_conjuncts(p, &mut where_conjuncts);
    }

    if !aliases_distinct {
        return Ok(SelectPlan {
            base: Some(scan_all(&rels[0])),
            joins: sel
                .joins
                .iter()
                .zip(rels.iter().skip(1))
                .map(|(j, r)| JoinStep {
                    kind: j.kind,
                    on: j.on.clone(),
                    scan: scan_all(r),
                    probe: None,
                })
                .collect(),
            reordered: false,
            written_slots: None,
        });
    }

    let all_inner = sel.joins.iter().all(|j| j.kind == JoinKind::Inner);
    if cfg.reorder_joins && all_inner && !sel.joins.is_empty() {
        if let Some(plan) = plan_reordered(sel, &rels, &where_conjuncts, cfg) {
            return Ok(plan);
        }
    }

    // Written order. The base and INNER right sides may be narrowed by WHERE
    // conjuncts; LEFT right sides only by their own ON conjuncts (narrowing a
    // LEFT right side from WHERE would change NULL-padding semantics).
    let base = best_access(0, &rels, &where_conjuncts, cfg);
    let mut in_scope: BTreeSet<String> = BTreeSet::new();
    in_scope.insert(rels[0].alias.to_ascii_lowercase());
    let mut joins = Vec::with_capacity(sel.joins.len());
    for (jx, j) in sel.joins.iter().enumerate() {
        let rel_ix = jx + 1;
        let mut on_conjuncts: Vec<&Expr> = Vec::new();
        split_conjuncts(&j.on, &mut on_conjuncts);
        let scan = match j.kind {
            JoinKind::Inner => {
                let mut pool = where_conjuncts.clone();
                pool.extend(on_conjuncts.iter().copied());
                best_access(rel_ix, &rels, &pool, cfg)
            }
            JoinKind::Left => best_access(rel_ix, &rels, &on_conjuncts, cfg),
        };
        let probe = cfg
            .probe_joins
            .then(|| find_probe(&on_conjuncts, rel_ix, &rels, &in_scope))
            .flatten();
        in_scope.insert(rels[rel_ix].alias.to_ascii_lowercase());
        joins.push(JoinStep {
            kind: j.kind,
            on: j.on.clone(),
            scan,
            probe,
        });
    }
    Ok(SelectPlan {
        base: Some(base),
        joins,
        reordered: false,
        written_slots: None,
    })
}

/// Attempts a greedy cardinality-ordered plan for an all-inner join chain.
/// Returns `None` when any ON conjunct cannot be scoped unambiguously, in
/// which case the caller falls back to written order.
fn plan_reordered(
    sel: &SelectStmt,
    rels: &[Rel<'_>],
    where_conjuncts: &[&Expr],
    cfg: &PlannerConfig,
) -> Option<SelectPlan> {
    let n = rels.len();
    // Pool of ON conjuncts with their alias scopes.
    let mut pool: Vec<(&Expr, BTreeSet<String>)> = Vec::new();
    for j in &sel.joins {
        let mut cs: Vec<&Expr> = Vec::new();
        split_conjuncts(&j.on, &mut cs);
        for c in cs {
            pool.push((c, conjunct_scope(c, rels)?));
        }
    }

    // Local access per relation: WHERE conjuncts plus single-relation ON
    // conjuncts (all joins are inner, so ON and WHERE narrow identically).
    let locals: Vec<ScanPlan> = (0..n)
        .map(|i| {
            let alias = rels[i].alias.to_ascii_lowercase();
            let mut conjs: Vec<&Expr> = where_conjuncts.to_vec();
            conjs.extend(
                pool.iter()
                    .filter(|(_, s)| s.len() == 1 && s.contains(&alias))
                    .map(|(c, _)| *c),
            );
            best_access(i, rels, &conjs, cfg)
        })
        .collect();

    // Greedy order: cheapest relation first, then the cheapest relation
    // connected to the current scope (falling back to cheapest overall when
    // nothing connects — a cross join either way).
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let cheapest = |set: &[usize]| -> usize {
        let mut best = set[0];
        for &i in set {
            if locals[i].est_rows < locals[best].est_rows {
                best = i;
            }
        }
        best
    };
    let start = cheapest(&remaining.iter().copied().collect::<Vec<_>>());
    order.push(start);
    remaining.remove(&start);
    let mut scope: BTreeSet<String> = BTreeSet::new();
    scope.insert(rels[start].alias.to_ascii_lowercase());
    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let alias = rels[i].alias.to_ascii_lowercase();
                pool.iter().any(|(_, s)| {
                    s.contains(&alias) && s.iter().all(|a| *a == alias || scope.contains(a))
                })
            })
            .collect();
        let pick = if connected.is_empty() {
            cheapest(&remaining.iter().copied().collect::<Vec<_>>())
        } else {
            cheapest(&connected)
        };
        order.push(pick);
        remaining.remove(&pick);
        scope.insert(rels[pick].alias.to_ascii_lowercase());
    }

    let reordered = order.iter().enumerate().any(|(pos, &i)| pos != i);

    // Re-attach each pooled conjunct at the earliest step whose scope covers
    // it (conjuncts scoped within the base attach to the first join step).
    let mut attached = vec![false; pool.len()];
    let mut scope_so_far: BTreeSet<String> = BTreeSet::new();
    scope_so_far.insert(rels[order[0]].alias.to_ascii_lowercase());
    let mut joins = Vec::with_capacity(n - 1);
    for &rel_ix in &order[1..] {
        let in_scope_before = scope_so_far.clone();
        scope_so_far.insert(rels[rel_ix].alias.to_ascii_lowercase());
        let step_conjuncts: Vec<&Expr> = pool
            .iter()
            .zip(attached.iter_mut())
            .filter_map(|((c, s), done)| {
                if !*done && s.is_subset(&scope_so_far) {
                    *done = true;
                    Some(*c)
                } else {
                    None
                }
            })
            .collect();
        let probe = cfg
            .probe_joins
            .then(|| find_probe(&step_conjuncts, rel_ix, rels, &in_scope_before))
            .flatten();
        joins.push(JoinStep {
            kind: JoinKind::Inner,
            on: combine_conjuncts(&step_conjuncts),
            scan: locals[rel_ix].clone(),
            probe,
        });
    }
    debug_assert!(attached.iter().all(|a| *a), "every ON conjunct re-attached");

    // Slot permutation back to written layout.
    let written_slots = if reordered {
        let arities: Vec<usize> = rels.iter().map(|r| r.table.schema.arity()).collect();
        let mut exec_offsets = vec![0usize; n];
        let mut off = 0;
        for &rel_ix in &order {
            exec_offsets[rel_ix] = off;
            off += arities[rel_ix];
        }
        let mut slots = Vec::with_capacity(off);
        for (rel_ix, &a) in arities.iter().enumerate() {
            slots.extend(exec_offsets[rel_ix]..exec_offsets[rel_ix] + a);
        }
        Some(slots)
    } else {
        None
    };

    Some(SelectPlan {
        base: Some(locals[order[0]].clone()),
        joins,
        reordered,
        written_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let stmts = [
            "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL, ns INTEGER)",
            "CREATE TABLE annotations (page_id INTEGER, attribute TEXT, value TEXT)",
            "CREATE INDEX ann_page ON annotations (page_id)",
            "CREATE INDEX ann_attr ON annotations (attribute)",
            "CREATE TRIGRAM INDEX pages_title_trgm ON pages (title)",
        ];
        for s in stmts {
            let stmt = parse(s).unwrap();
            super::super::exec::execute(&mut cat, stmt).unwrap();
        }
        for i in 0..200i64 {
            // A few rows carry a distinctive substring so trigram seeks have
            // something selective to find.
            let site = if i % 20 == 0 { "davos" } else { "wind" };
            let stmt = parse(&format!(
                "INSERT INTO pages VALUES ({i}, 'Sensor_{:02}_{site}', {})",
                i % 50,
                i % 3
            ))
            .unwrap();
            super::super::exec::execute(&mut cat, stmt).unwrap();
        }
        for i in 0..400i64 {
            let stmt = parse(&format!(
                "INSERT INTO annotations VALUES ({}, 'attr{}', 'v{}')",
                i % 200,
                i % 7,
                i
            ))
            .unwrap();
            super::super::exec::execute(&mut cat, stmt).unwrap();
        }
        cat
    }

    fn plan(cat: &Catalog, sql: &str) -> SelectPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!("not a select");
        };
        plan_select(cat, &sel, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn eq_on_indexed_column_seeks() {
        let cat = catalog();
        let p = plan(&cat, "SELECT * FROM pages WHERE id = 7");
        assert!(
            matches!(p.base.as_ref().unwrap().path, AccessPath::IndexSeek { .. }),
            "{p:?}"
        );
        // Exact plan-time probe: one row for a unique key.
        assert!((p.base.unwrap().est_rows - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unindexed_predicate_full_scans() {
        let cat = catalog();
        let p = plan(&cat, "SELECT * FROM pages WHERE ns = 2");
        assert!(matches!(
            p.base.as_ref().unwrap().path,
            AccessPath::FullScan
        ));
    }

    #[test]
    fn substring_pattern_uses_trigram() {
        let cat = catalog();
        let p = plan(&cat, "SELECT * FROM pages WHERE title LIKE '%_07_%'");
        assert!(
            matches!(
                &p.base.as_ref().unwrap().path,
                AccessPath::TrigramSeek { needle, .. } if needle == "07"  // run "_07_" splits to "07"
            ) || matches!(&p.base.as_ref().unwrap().path, AccessPath::FullScan),
            "{p:?}"
        );
        let p = plan(&cat, "SELECT * FROM pages WHERE title ILIKE '%DAVOS%'");
        assert!(
            matches!(
                &p.base.as_ref().unwrap().path,
                AccessPath::TrigramSeek { needle, .. } if needle == "DAVOS"
            ),
            "{p:?}"
        );
    }

    #[test]
    fn naive_config_disables_everything() {
        let cat = catalog();
        let Statement::Select(sel) =
            parse("SELECT * FROM pages p JOIN annotations a ON a.page_id = p.id WHERE p.id = 3")
                .unwrap()
        else {
            panic!()
        };
        let p = plan_select(&cat, &sel, &PlannerConfig::naive()).unwrap();
        assert!(matches!(
            p.base.as_ref().unwrap().path,
            AccessPath::FullScan
        ));
        assert!(!p.reordered);
        assert!(p.joins[0].probe.is_none());
    }

    #[test]
    fn equi_join_on_indexed_column_probes() {
        let cat = catalog();
        let p = plan(
            &cat,
            "SELECT * FROM pages p JOIN annotations a ON a.page_id = p.id",
        );
        let probe_somewhere = p.joins.iter().any(|j| j.probe.is_some());
        assert!(probe_somewhere, "{p:?}");
    }

    #[test]
    fn selective_side_becomes_base() {
        let cat = catalog();
        // pages filtered to one row by PK; annotations unfiltered (400 rows).
        // Reorder should start from pages even when written second.
        let p = plan(
            &cat,
            "SELECT * FROM annotations a JOIN pages p ON a.page_id = p.id WHERE p.id = 3",
        );
        let base = p.base.as_ref().unwrap();
        assert_eq!(base.alias, "p", "{p:?}");
        assert!(p.reordered);
        let perm = p.written_slots.as_ref().unwrap();
        // annotations has 3 columns then pages 3 columns in written layout;
        // executed layout is pages first.
        assert_eq!(perm[..3], [3, 4, 5]);
        assert_eq!(perm[3..], [0, 1, 2]);
    }

    #[test]
    fn left_join_right_side_not_narrowed_by_where() {
        let cat = catalog();
        let p = plan(
            &cat,
            "SELECT * FROM pages p LEFT JOIN annotations a ON a.page_id = p.id \
             WHERE a.attribute = 'attr1'",
        );
        assert!(!p.reordered);
        // The WHERE eq on a.attribute must NOT narrow the LEFT right side's
        // loop scan (probe from ON is fine).
        match &p.joins[0].scan.path {
            AccessPath::IndexSeek { col, .. } => {
                // attribute is column 1 of annotations; page_id col 0.
                assert_ne!(*col, 1, "LEFT right side narrowed by WHERE: {p:?}");
            }
            _ => {}
        }
    }
}
