//! Expression evaluation over named rows.

use super::ast::{BinOp, Expr, UnOp};
use crate::error::{RelError, Result};
use crate::value::Value;

/// Schema of a runtime row: `(table alias, column name)` per slot.
#[derive(Debug, Clone, Default)]
pub struct RowSchema {
    cols: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Creates a schema from `(alias, column)` pairs.
    pub fn new(cols: Vec<(Option<String>, String)>) -> RowSchema {
        RowSchema { cols }
    }

    /// Appends a column; used when building join outputs.
    pub fn push(&mut self, table: Option<String>, name: String) {
        self.cols.push((table, name));
    }

    /// Concatenates two schemas (join output).
    pub fn concat(&self, other: &RowSchema) -> RowSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RowSchema { cols }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the schema has no slots.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// All slots.
    pub fn columns(&self) -> &[(Option<String>, String)] {
        &self.cols
    }

    /// Resolves a column reference to a slot index. Unqualified names must be
    /// unambiguous across all tables in scope.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (ix, (t, n)) in self.cols.iter().enumerate() {
            if !n.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(q) = table {
                if t.as_deref().is_some_and(|ta| ta.eq_ignore_ascii_case(q)) {
                    return Ok(ix);
                }
            } else {
                if found.is_some() {
                    return Err(RelError::Exec(format!("ambiguous column `{name}`")));
                }
                found = Some(ix);
            }
        }
        found.ok_or_else(|| {
            let full = match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_owned(),
            };
            RelError::NoSuchColumn(full)
        })
    }

    /// Indices of all slots belonging to a table alias.
    pub fn slots_of(&self, alias: &str) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| t.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(alias)))
            .map(|(ix, _)| ix)
            .collect()
    }
}

/// Evaluates a scalar expression against one row. Aggregates are rejected —
/// the executor's grouping pass replaces them before calling this.
pub fn eval(expr: &Expr, schema: &RowSchema, row: &[Value]) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let ix = schema.resolve(table.as_deref(), name)?;
            Ok(row[ix].clone())
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, schema, row)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(x) => Ok(Value::float(-x)),
                    other => Err(RelError::Exec(format!("cannot negate {other:?}"))),
                },
                UnOp::Not => match truthiness(&v) {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Bool(!b)),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, schema, row),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, schema, row)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            let lov = eval(lo, schema, row)?;
            let hiv = eval(hi, schema, row)?;
            match (v.sql_cmp(&lov), v.sql_cmp(&hiv)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Func { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, schema, row))
                .collect::<Result<_>>()?;
            eval_function(name, &vals)
        }
        Expr::Agg { .. } => Err(RelError::Exec(
            "aggregate used outside GROUP BY context".into(),
        )),
    }
}

/// SQL truthiness: NULL → None, numbers are truthy when non-zero.
pub fn truthiness(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        Value::Int(i) => Some(*i != 0),
        Value::Float(x) => Some(*x != 0.0),
        Value::Text(s) => Some(!s.is_empty()),
    }
}

fn eval_binary(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    schema: &RowSchema,
    row: &[Value],
) -> Result<Value> {
    // AND/OR need three-valued logic with short-circuit.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = truthiness(&eval(lhs, schema, row)?);
        match (op, l) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = truthiness(&eval(rhs, schema, row)?);
        return Ok(match (op, l, r) {
            (BinOp::And, Some(a), Some(b)) => Value::Bool(a && b),
            (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Value::Bool(false),
            (BinOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
            (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Value::Bool(true),
            _ => Value::Null,
        });
    }
    let l = eval(lhs, schema, row)?;
    let r = eval(rhs, schema, row)?;
    match op {
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(ord) = l.sql_cmp(&r) else {
                return Ok(Value::Null);
            };
            use std::cmp::Ordering::*;
            let b = match op {
                BinOp::Eq => ord == Equal,
                BinOp::Neq => ord != Equal,
                BinOp::Lt => ord == Less,
                BinOp::Le => ord != Greater,
                BinOp::Gt => ord == Greater,
                BinOp::Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &l, &r),
        BinOp::Concat => {
            if l.is_null() || r.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!("{l}{r}")))
            }
        }
        BinOp::Like => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Text(s), Value::Text(p)) => Ok(Value::Bool(like_match(&p, &s))),
            (a, b) => Err(RelError::Exec(format!(
                "LIKE needs text operands, got {a:?} / {b:?}"
            ))),
        },
        BinOp::ILike => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Text(s), Value::Text(p)) => Ok(Value::Bool(like_match(
                &p.to_lowercase(),
                &s.to_lowercase(),
            ))),
            (a, b) => Err(RelError::Exec(format!(
                "ILIKE needs text operands, got {a:?} / {b:?}"
            ))),
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Ok(Value::Null); // SQL-style: x/0 → NULL
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Ok(Value::Null);
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| RelError::Exec("integer overflow".into()))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
                return Err(RelError::Exec(format!(
                    "arithmetic on non-numeric values {l:?} / {r:?}"
                )));
            };
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::float(out))
        }
    }
}

/// SQL LIKE matcher: `%` = any run, `_` = any single char. Case-sensitive.
///
/// Iterative two-pointer algorithm (greedy `%` with backtracking to the last
/// star): O(n·m) worst case, where the former recursive matcher was
/// exponential on adversarial `%a%a%a…` patterns.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Position of the last `%` seen and the text position it is currently
    // assumed to consume up to; on mismatch we re-expand the star by one.
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn eval_function(name: &str, args: &[Value]) -> Result<Value> {
    let need = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(RelError::Exec(format!(
                "function {name} expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "lower" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Text(s) => Value::Text(s.to_lowercase()),
                Value::Null => Value::Null,
                other => Value::Text(other.to_string().to_lowercase()),
            })
        }
        "upper" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Text(s) => Value::Text(s.to_uppercase()),
                Value::Null => Value::Null,
                other => Value::Text(other.to_string().to_uppercase()),
            })
        }
        "length" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Text(s) => Value::Int(s.chars().count() as i64),
                Value::Null => Value::Null,
                other => Value::Int(other.to_string().chars().count() as i64),
            })
        }
        "abs" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Int(i) => Value::Int(i.checked_abs().unwrap_or(i64::MAX)),
                Value::Float(x) => Value::Float(x.abs()),
                Value::Null => Value::Null,
                other => return Err(RelError::Exec(format!("abs of non-number {other:?}"))),
            })
        }
        "round" => {
            if args.len() == 1 {
                return Ok(match &args[0] {
                    Value::Float(x) => Value::float(x.round()),
                    Value::Int(i) => Value::Int(*i),
                    Value::Null => Value::Null,
                    other => return Err(RelError::Exec(format!("round of non-number {other:?}"))),
                });
            }
            need(2)?;
            let digits = args[1]
                .as_int()
                .ok_or_else(|| RelError::Exec("round digits must be integer".into()))?;
            Ok(match &args[0] {
                Value::Float(x) => {
                    let m = 10f64.powi(digits as i32);
                    Value::float((x * m).round() / m)
                }
                Value::Int(i) => Value::Int(*i),
                Value::Null => Value::Null,
                other => return Err(RelError::Exec(format!("round of non-number {other:?}"))),
            })
        }
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "substr" | "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(RelError::Exec("substr expects 2 or 3 arguments".into()));
            }
            let Value::Text(s) = &args[0] else {
                return if args[0].is_null() {
                    Ok(Value::Null)
                } else {
                    Err(RelError::Exec("substr of non-text".into()))
                };
            };
            let start = args[1]
                .as_int()
                .ok_or_else(|| RelError::Exec("substr start must be integer".into()))?;
            let chars: Vec<char> = s.chars().collect();
            // SQL substr is 1-based.
            let begin = (start.max(1) - 1) as usize;
            let len = if args.len() == 3 {
                args[2]
                    .as_int()
                    .ok_or_else(|| RelError::Exec("substr length must be integer".into()))?
                    .max(0) as usize
            } else {
                chars.len().saturating_sub(begin)
            };
            let out: String = chars.iter().skip(begin).take(len).collect();
            Ok(Value::Text(out))
        }
        "trim" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Text(s) => Value::Text(s.trim().to_owned()),
                Value::Null => Value::Null,
                other => Value::Text(other.to_string()),
            })
        }
        "replace" => {
            need(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Text(s), Value::Text(from), Value::Text(to)) => {
                    Ok(Value::Text(s.replace(from.as_str(), to)))
                }
                _ => Err(RelError::Exec("replace expects text arguments".into())),
            }
        }
        "typeof" => {
            need(1)?;
            Ok(Value::Text(
                args[0]
                    .data_type()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "NULL".into()),
            ))
        }
        other => Err(RelError::Exec(format!("unknown function `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::{SelectItem, Statement};
    use crate::sql::parser::parse;

    fn eval_str(sql_expr: &str) -> Value {
        let stmt = parse(&format!("SELECT {sql_expr}")).unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.projection[0] else {
            panic!()
        };
        eval(expr, &RowSchema::default(), &[]).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_str("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval_str("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval_str("7 % 3"), Value::Int(1));
        assert_eq!(eval_str("-5 + 2"), Value::Int(-3));
        assert_eq!(eval_str("1.5 * 2"), Value::Float(3.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert!(eval_str("1 / 0").is_null());
        assert!(eval_str("1.0 / 0.0").is_null());
        assert!(eval_str("1 % 0").is_null());
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_str("NULL AND FALSE"), Value::Bool(false));
        assert!(eval_str("NULL AND TRUE").is_null());
        assert_eq!(eval_str("NULL OR TRUE"), Value::Bool(true));
        assert!(eval_str("NULL OR FALSE").is_null());
        assert!(eval_str("NOT NULL").is_null());
        assert!(eval_str("NULL = NULL").is_null());
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(eval_str("2 IN (1, 2, 3)"), Value::Bool(true));
        assert_eq!(eval_str("5 NOT IN (1, 2)"), Value::Bool(true));
        assert!(eval_str("5 IN (1, NULL)").is_null());
        assert_eq!(eval_str("1 IN (1, NULL)"), Value::Bool(true));
    }

    #[test]
    fn between_and_like() {
        assert_eq!(eval_str("5 BETWEEN 1 AND 10"), Value::Bool(true));
        assert_eq!(eval_str("5 NOT BETWEEN 6 AND 10"), Value::Bool(true));
        assert_eq!(eval_str("'wind_speed' LIKE 'wind%'"), Value::Bool(true));
        assert_eq!(eval_str("'abc' LIKE 'a_c'"), Value::Bool(true));
        assert_eq!(eval_str("'abc' LIKE 'a_d'"), Value::Bool(false));
        assert_eq!(eval_str("'aXbYc' LIKE '%b%c'"), Value::Bool(true));
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_str("LOWER('ÖsterReich')"), Value::text("österreich"));
        assert_eq!(eval_str("LENGTH('héllo')"), Value::Int(5));
        assert_eq!(eval_str("SUBSTR('sensor', 1, 3)"), Value::text("sen"));
        assert_eq!(eval_str("SUBSTR('sensor', 4)"), Value::text("sor"));
        assert_eq!(eval_str("TRIM('  x ')"), Value::text("x"));
        assert_eq!(eval_str("REPLACE('a-b-c', '-', '+')"), Value::text("a+b+c"));
        assert_eq!(eval_str("'a' || 'b' || 1"), Value::text("ab1"));
        assert_eq!(eval_str("COALESCE(NULL, NULL, 3)"), Value::Int(3));
        assert_eq!(eval_str("ROUND(2.567, 2)"), Value::Float(2.57));
        assert_eq!(eval_str("TYPEOF(1)"), Value::text("INTEGER"));
    }

    #[test]
    fn column_resolution() {
        let schema = RowSchema::new(vec![
            (Some("s".into()), "id".into()),
            (Some("t".into()), "id".into()),
            (Some("s".into()), "name".into()),
        ]);
        let row = vec![Value::Int(1), Value::Int(2), Value::text("x")];
        let q = Expr::Column {
            table: Some("t".into()),
            name: "id".into(),
        };
        assert_eq!(eval(&q, &schema, &row).unwrap(), Value::Int(2));
        // Unqualified `id` is ambiguous.
        let amb = Expr::col("id");
        assert!(eval(&amb, &schema, &row).is_err());
        // Unqualified `name` resolves.
        assert_eq!(
            eval(&Expr::col("NAME"), &schema, &row).unwrap(),
            Value::text("x")
        );
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(!like_match("_", ""));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("a%c", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abzc"));
        assert!(like_match("%wind%", "station_wind_speed"));
        assert!(!like_match("%wind%", "station_temp"));
        assert!(like_match("%a%b%", "xaxbx"));
        assert!(!like_match("b%a", "ba_suffix_missing"));
    }

    #[test]
    fn like_adversarial_patterns_terminate_fast() {
        // The old recursive matcher was exponential on these: a run of
        // `%a` units against a text of `a`s with a trailing mismatch.
        let text = "a".repeat(60) + "b";
        let pattern = "%a".repeat(30) + "%c";
        let start = std::time::Instant::now();
        assert!(!like_match(&pattern, &text));
        let pattern_match = "%a".repeat(30).to_string() + "%";
        assert!(like_match(&pattern_match, &text[..60]));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "adversarial LIKE took {:?}",
            start.elapsed()
        );
        // Underscores interleaved with stars.
        assert!(like_match("%_%_%_%", "abc"));
        assert!(!like_match("%_%_%_%_%", "abc"));
    }

    #[test]
    fn ilike_is_case_insensitive() {
        let schema = RowSchema::new(vec![(Some("t".into()), "name".into())]);
        let row = vec![Value::text("Wind_Speed_WFJ")];
        let e = Expr::Binary {
            op: BinOp::ILike,
            lhs: Box::new(Expr::col("name")),
            rhs: Box::new(Expr::lit("%wind%")),
        };
        assert_eq!(eval(&e, &schema, &row).unwrap(), Value::Bool(true));
        let e = Expr::Binary {
            op: BinOp::Like,
            lhs: Box::new(Expr::col("name")),
            rhs: Box::new(Expr::lit("%wind%")),
        };
        assert_eq!(eval(&e, &schema, &row).unwrap(), Value::Bool(false));
        // NULL propagation.
        let e = Expr::Binary {
            op: BinOp::ILike,
            lhs: Box::new(Expr::lit(Value::Null)),
            rhs: Box::new(Expr::lit("%x%")),
        };
        assert_eq!(eval(&e, &schema, &row).unwrap(), Value::Null);
    }
}
