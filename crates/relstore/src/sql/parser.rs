//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{lex, Sym, Token};
use crate::error::{RelError, Result};
use crate::value::{DataType, Value};

/// Parses one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon);
    if !p.at_end() {
        return Err(RelError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Parses a semicolon-separated script into statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat_symbol(Sym::Semicolon) {
            continue;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.eat_symbol(Sym::Semicolon) {
            return Err(RelError::Parse(format!(
                "expected `;` between statements, found {:?}",
                p.peek()
            )));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(RelError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_keyword("UNIQUE");
            let trigram = !unique && self.eat_keyword("TRIGRAM");
            if self.eat_keyword("INDEX") {
                return self.create_index(unique, trigram);
            }
            return Err(RelError::Parse(
                "expected TABLE or [UNIQUE|TRIGRAM] INDEX after CREATE".into(),
            ));
        }
        if self.eat_keyword("DROP") {
            self.expect_keyword("TABLE")?;
            let if_exists = if self.eat_keyword("IF") {
                self.expect_keyword("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_keyword("INSERT") {
            return self.insert();
        }
        if self.eat_keyword("UPDATE") {
            return self.update();
        }
        if self.eat_keyword("DELETE") {
            return self.delete();
        }
        if self.peek_keyword("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_keyword("EXPLAIN") {
            return Ok(Statement::Explain(self.select()?));
        }
        Err(RelError::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let if_not_exists = if self.eat_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.identifier()?;
            let ty = self.data_type()?;
            let mut def = ColumnDef {
                name: col_name,
                ty,
                not_null: false,
                unique: false,
                primary_key: false,
            };
            loop {
                if self.eat_keyword("PRIMARY") {
                    self.expect_keyword("KEY")?;
                    def.primary_key = true;
                } else if self.eat_keyword("NOT") {
                    self.expect_keyword("NULL")?;
                    def.not_null = true;
                } else if self.eat_keyword("UNIQUE") {
                    def.unique = true;
                } else {
                    break;
                }
            }
            columns.push(def);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.identifier()?;
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" => Ok(DataType::Integer),
            "FLOAT" | "REAL" | "DOUBLE" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(DataType::Text),
            "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
            other => Err(RelError::Parse(format!("unknown type `{other}`"))),
        }
    }

    fn create_index(&mut self, unique: bool, trigram: bool) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_keyword("ON")?;
        let table = self.identifier()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = vec![self.identifier()?];
        while self.eat_symbol(Sym::Comma) {
            columns.push(self.identifier()?);
        }
        self.expect_symbol(Sym::RParen)?;
        if trigram && columns.len() != 1 {
            return Err(RelError::Parse(
                "TRIGRAM INDEX covers exactly one column".into(),
            ));
        }
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            unique,
            trigram,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.identifier()?;
        let columns = if self.eat_symbol(Sym::LParen) {
            let mut cols = vec![self.identifier()?];
            while self.eat_symbol(Sym::Comma) {
                cols.push(self.identifier()?);
            }
            self.expect_symbol(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                row.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.identifier()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol(Sym::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projection = vec![self.select_item()?];
        while self.eat_symbol(Sym::Comma) {
            projection.push(self.select_item()?);
        }
        let from = if self.eat_keyword("FROM") {
            Some(self.table_ref()?)
        } else {
            None
        };
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_keyword("JOIN") || {
                if self.eat_keyword("INNER") {
                    self.expect_keyword("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                JoinKind::Inner
            } else if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            Some(self.usize_literal()?)
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            Some(self.usize_literal()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            joins,
            predicate,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn usize_literal(&mut self) -> Result<usize> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(RelError::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (
            Some(Token::Ident(name)),
            Some(Token::Symbol(Sym::Dot)),
            Some(Token::Symbol(Sym::Star)),
        ) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let name = name.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.identifier()?;
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                let a = s.clone();
                self.pos += 1;
                Some(a)
            }
            _ => {
                if self.eat_keyword("AS") {
                    Some(self.identifier()?)
                } else {
                    None
                }
            }
        };
        Ok(TableRef { table, alias })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        let like_op = if self.eat_keyword("LIKE") {
            Some(BinOp::Like)
        } else if self.eat_keyword("ILIKE") {
            Some(BinOp::ILike)
        } else {
            None
        };
        if let Some(op) = like_op {
            let rhs = self.additive()?;
            let like = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return Err(RelError::Parse(
                "NOT must be followed by IN, BETWEEN, LIKE or ILIKE here".into(),
            ));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::Neq)) => Some(BinOp::Neq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                Some(Token::Symbol(Sym::Concat)) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(Token::Float(x)) => Ok(Expr::Literal(Value::float(x))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Symbol(Sym::LParen)) => {
                let inner = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Some(Token::QuotedIdent(name)) => self.column_or_qualified(name),
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                if is_reserved(&upper) {
                    return Err(RelError::Parse(format!(
                        "reserved keyword `{name}` cannot be used as a column; quote it with double quotes"
                    )));
                }
                // aggregate?
                if self.eat_symbol(Sym::LParen) {
                    let agg = match upper.as_str() {
                        "COUNT" => Some(AggFunc::Count),
                        "SUM" => Some(AggFunc::Sum),
                        "AVG" => Some(AggFunc::Avg),
                        "MIN" => Some(AggFunc::Min),
                        "MAX" => Some(AggFunc::Max),
                        _ => None,
                    };
                    if let Some(func) = agg {
                        if self.eat_symbol(Sym::Star) {
                            self.expect_symbol(Sym::RParen)?;
                            if func != AggFunc::Count {
                                return Err(RelError::Parse(format!(
                                    "{upper}(*) is not valid; only COUNT(*)"
                                )));
                            }
                            return Ok(Expr::Agg {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_keyword("DISTINCT");
                        let arg = self.expr()?;
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                    // scalar function
                    let mut args = Vec::new();
                    if !self.eat_symbol(Sym::RParen) {
                        args.push(self.expr()?);
                        while self.eat_symbol(Sym::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect_symbol(Sym::RParen)?;
                    }
                    return Ok(Expr::Func {
                        name: name.to_ascii_lowercase(),
                        args,
                    });
                }
                self.column_or_qualified(name)
            }
            other => Err(RelError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn column_or_qualified(&mut self, first: String) -> Result<Expr> {
        if self.eat_symbol(Sym::Dot) {
            let col = self.identifier()?;
            Ok(Expr::Column {
                table: Some(first),
                name: col,
            })
        } else {
            Ok(Expr::Column {
                table: None,
                name: first,
            })
        }
    }
}

fn is_reserved(upper: &str) -> bool {
    const KWS: &[&str] = &[
        "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "FROM", "WHERE", "GROUP",
        "HAVING", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT", "OUTER", "ON", "AND", "OR",
        "IN", "BETWEEN", "LIKE", "ILIKE", "IS", "AS", "SET", "VALUES", "BY", "DESC", "ASC",
        "DISTINCT", "UNION", "INTO", "TABLE", "INDEX",
    ];
    KWS.contains(&upper)
}

fn is_clause_keyword(s: &str) -> bool {
    const KWS: &[&str] = &[
        "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT", "ON",
        "AS", "SET", "VALUES", "UNION", "OUTER",
    ];
    KWS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_full() {
        let stmt = parse(
            "CREATE TABLE IF NOT EXISTS sensors (\
             id INTEGER PRIMARY KEY, name TEXT NOT NULL UNIQUE, lat FLOAT, ok BOOLEAN)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "sensors");
                assert!(if_not_exists);
                assert_eq!(columns.len(), 4);
                assert!(columns[0].primary_key);
                assert!(columns[1].not_null && columns[1].unique);
                assert_eq!(columns[2].ty, DataType::Float);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn select_kitchen_sink() {
        let stmt = parse(
            "SELECT DISTINCT s.name AS n, COUNT(*) FROM sensors s \
             JOIN stations st ON s.station = st.id \
             LEFT JOIN projects p ON st.project = p.id \
             WHERE s.lat BETWEEN 45.0 AND 48.0 AND s.name LIKE 'temp%' \
             GROUP BY s.name HAVING COUNT(*) > 2 \
             ORDER BY n DESC, 2 LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("not a select")
        };
        assert!(sel.distinct);
        assert_eq!(sel.joins.len(), 2);
        assert_eq!(sel.joins[1].kind, JoinKind::Left);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, Some(5));
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(sel) = parse("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.projection[0] else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        match expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(&**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad tree {other:?}"),
        }
    }

    #[test]
    fn not_in_and_is_null() {
        parse("SELECT * FROM t WHERE a NOT IN (1,2,3)").unwrap();
        parse("SELECT * FROM t WHERE a IS NOT NULL").unwrap();
        parse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)").unwrap();
        parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2").unwrap();
        parse("SELECT * FROM t WHERE name NOT LIKE '%x%'").unwrap();
    }

    #[test]
    fn qualified_wildcard() {
        let Statement::Select(sel) = parse("SELECT s.* FROM sensors s").unwrap() else {
            panic!()
        };
        assert_eq!(sel.projection[0], SelectItem::QualifiedWildcard("s".into()));
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("CREATE VIEW v").is_err());
        assert!(parse("SELECT 1 SELECT 2").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("INSERT INTO t VALUES (1,)").is_err());
    }

    #[test]
    fn update_delete() {
        parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        parse("DELETE FROM t WHERE id IN (1, 2)").unwrap();
        parse("DELETE FROM t").unwrap();
    }

    #[test]
    fn expression_only_select() {
        let Statement::Select(sel) = parse("SELECT 1 + 1 AS two").unwrap() else {
            panic!()
        };
        assert!(sel.from.is_none());
    }

    #[test]
    fn count_distinct() {
        let Statement::Select(sel) = parse("SELECT COUNT(DISTINCT a) FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.projection[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Agg { distinct: true, .. }));
    }

    #[test]
    fn ilike_and_not_ilike() {
        let Statement::Select(sel) = parse("SELECT * FROM t WHERE name ILIKE '%wind%'").unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            sel.predicate,
            Some(Expr::Binary {
                op: BinOp::ILike,
                ..
            })
        ));
        // NOT ILIKE parses as NOT(ILIKE ...).
        let Statement::Select(sel) = parse("SELECT * FROM t WHERE name NOT ILIKE 'a%'").unwrap()
        else {
            panic!()
        };
        let Some(Expr::Unary {
            op: UnOp::Not,
            expr,
        }) = sel.predicate
        else {
            panic!("expected NOT wrapper")
        };
        assert!(matches!(
            *expr,
            Expr::Binary {
                op: BinOp::ILike,
                ..
            }
        ));
        // ILIKE is reserved: not usable as a bare identifier.
        assert!(parse("SELECT ilike FROM t").is_err());
    }

    #[test]
    fn create_trigram_index() {
        let stmt = parse("CREATE TRIGRAM INDEX pages_title_trgm ON pages (title)").unwrap();
        match stmt {
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                trigram,
            } => {
                assert_eq!(name, "pages_title_trgm");
                assert_eq!(table, "pages");
                assert_eq!(columns, vec!["title"]);
                assert!(!unique);
                assert!(trigram);
            }
            other => panic!("wrong stmt {other:?}"),
        }
        // Plain and UNIQUE indexes keep trigram = false.
        let Statement::CreateIndex { trigram, .. } =
            parse("CREATE UNIQUE INDEX i ON t (a)").unwrap()
        else {
            panic!()
        };
        assert!(!trigram);
        // Multi-column trigram definitions are rejected at parse time.
        assert!(parse("CREATE TRIGRAM INDEX i ON t (a, b)").is_err());
        // UNIQUE TRIGRAM is not a thing.
        assert!(parse("CREATE UNIQUE TRIGRAM INDEX i ON t (a)").is_err());
    }
}
