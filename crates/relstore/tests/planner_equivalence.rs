//! Property suite: the cost-based planner must be invisible in results.
//!
//! Every query is executed twice — once with the default planner (index
//! seeks, trigram seeks, probe joins, join reordering) and once with
//! [`PlannerConfig::naive`] (full scans, written join order). The two result
//! sets must be identical as sorted multisets (row order is unspecified
//! without ORDER BY). Schemas, index sets, data, and predicates are all
//! randomized.

use proptest::prelude::*;
use sensormeta_relstore::{Database, PlannerConfig, Value};

/// Name parts that LIKE/ILIKE patterns are built from, so substring
/// predicates actually hit (and miss) rows.
const PARTS: &[&str] = &["wind", "temp", "davos", "wfj", "snow", "radiation"];

fn fragment() -> impl Strategy<Value = String> {
    (0..PARTS.len()).prop_map(|i| PARTS[i].to_owned())
}

fn name_strategy() -> impl Strategy<Value = String> {
    (fragment(), fragment(), 0u8..3).prop_map(|(a, b, styled)| match styled {
        0 => format!("{a}_{b}"),
        1 => format!("Sensor_{a}_{b}"),
        _ => format!("{a}-{b}-site"),
    })
}

/// One WHERE predicate over table alias `a`, as SQL text. Generated shapes
/// cover every access path the planner can choose: equality, ranges,
/// BETWEEN, LIKE prefix, LIKE/ILIKE substring, plus AND-combinations and
/// non-sargable disjunctions.
fn predicate_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (0i64..40).prop_map(|v| format!("a.grp = {v}")),
        (0i64..300).prop_map(|v| format!("a.id < {v}")),
        (0i64..300).prop_map(|v| format!("a.id >= {v}")),
        ((0i64..150), (0i64..150)).prop_map(|(lo, d)| format!("a.id BETWEEN {lo} AND {}", lo + d)),
        fragment().prop_map(|f| format!("a.name LIKE '{f}%'")),
        fragment().prop_map(|f| format!("a.name LIKE '%{f}%'")),
        fragment().prop_map(|f| format!("a.name ILIKE '%{}%'", f.to_uppercase())),
        fragment().prop_map(|f| format!("a.name NOT ILIKE '%{f}%'")),
        Just("a.score > 0.5".to_owned()),
    ];
    prop::collection::vec(atom, 1..3).prop_map(|atoms| atoms.join(" AND "))
}

#[derive(Debug, Clone)]
struct World {
    rows_a: Vec<(i64, String, i64, f64)>,
    rows_b: Vec<(i64, i64, String)>,
    rows_c: Vec<(i64, i64)>,
    /// Bitmask choosing which optional indexes exist.
    idx_mask: u8,
}

fn world_strategy() -> impl Strategy<Value = World> {
    let row_a = (any::<i64>(), name_strategy(), 0i64..40, -1.0f64..2.0);
    let row_b = (any::<i64>(), 0i64..300, fragment());
    let row_c = (any::<i64>(), 0i64..40);
    (
        prop::collection::vec(row_a, 0..60),
        prop::collection::vec(row_b, 0..60),
        prop::collection::vec(row_c, 0..20),
        any::<u8>(),
    )
        .prop_map(|(ra, rb, rc, idx_mask)| World {
            // Re-key ids densely so join predicates connect across tables.
            rows_a: ra
                .into_iter()
                .enumerate()
                .map(|(i, (_, n, g, s))| (i as i64, n, g, s))
                .collect(),
            rows_b: rb
                .into_iter()
                .enumerate()
                .map(|(i, (_, a_id, t))| (i as i64, a_id, t))
                .collect(),
            rows_c: rc
                .into_iter()
                .enumerate()
                .map(|(i, (_, g))| (i as i64, g))
                .collect(),
            idx_mask,
        })
}

fn build(world: &World) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, name TEXT, grp INTEGER, score FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, a_id INTEGER, tag TEXT)")
        .unwrap();
    db.execute("CREATE TABLE c (id INTEGER PRIMARY KEY, grp INTEGER)")
        .unwrap();
    for (bit, ddl) in [
        (1u8, "CREATE INDEX a_grp ON a (grp)"),
        (2, "CREATE TRIGRAM INDEX a_name_trgm ON a (name)"),
        (4, "CREATE INDEX b_aid ON b (a_id)"),
        (8, "CREATE INDEX b_tag ON b (tag)"),
        (16, "CREATE INDEX c_grp ON c (grp)"),
    ] {
        if world.idx_mask & bit != 0 {
            db.execute(ddl).unwrap();
        }
    }
    for (id, name, grp, score) in &world.rows_a {
        db.execute(&format!(
            "INSERT INTO a VALUES ({id}, '{name}', {grp}, {score})"
        ))
        .unwrap();
    }
    for (id, a_id, tag) in &world.rows_b {
        db.execute(&format!("INSERT INTO b VALUES ({id}, {a_id}, '{tag}')"))
            .unwrap();
    }
    for (id, grp) in &world.rows_c {
        db.execute(&format!("INSERT INTO c VALUES ({id}, {grp})"))
            .unwrap();
    }
    db
}

/// Runs one query both ways and asserts multiset equality.
fn assert_equivalent(db: &Database, sql: &str) {
    let planned = db
        .query(sql)
        .unwrap_or_else(|e| panic!("planned execution failed for `{sql}`: {e}"));
    let naive = db
        .query_with(sql, &PlannerConfig::naive())
        .unwrap_or_else(|e| panic!("naive execution failed for `{sql}`: {e}"));
    assert_eq!(planned.columns, naive.columns, "columns differ for `{sql}`");
    let mut p: Vec<Vec<Value>> = planned.rows;
    let mut n: Vec<Vec<Value>> = naive.rows;
    p.sort();
    n.sort();
    assert_eq!(p, n, "row multisets differ for `{sql}`");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-table scans: every access path (seek, range, trigram, full)
    /// returns exactly what the forced full scan returns.
    #[test]
    fn single_table_matches_naive(world in world_strategy(), pred in predicate_strategy()) {
        let db = build(&world);
        assert_equivalent(&db, &format!("SELECT * FROM a WHERE {pred}"));
        assert_equivalent(&db, &format!(
            "SELECT a.name, a.grp FROM a WHERE {pred} AND a.id >= 0"
        ));
    }

    /// Inner joins: probe joins and cardinality-based reordering preserve
    /// the result multiset and the written column order.
    #[test]
    fn inner_joins_match_naive(world in world_strategy(), pred in predicate_strategy()) {
        let db = build(&world);
        assert_equivalent(&db, &format!(
            "SELECT * FROM a JOIN b ON b.a_id = a.id WHERE {pred}"
        ));
        assert_equivalent(&db, &format!(
            "SELECT * FROM b JOIN a ON b.a_id = a.id WHERE {pred}"
        ));
        assert_equivalent(&db, &format!(
            "SELECT * FROM a JOIN b ON b.a_id = a.id JOIN c ON c.grp = a.grp WHERE {pred}"
        ));
        // Aggregates over the join survive reordering too.
        assert_equivalent(&db, &format!(
            "SELECT a.grp, COUNT(*) FROM a JOIN b ON b.a_id = a.id \
             WHERE {pred} GROUP BY a.grp"
        ));
    }

    /// LEFT joins: the planner must not narrow the right side from WHERE
    /// conjuncts, and NULL padding must match the naive nested loop.
    #[test]
    fn left_joins_match_naive(
        world in world_strategy(),
        pred in predicate_strategy(),
        tag in fragment(),
    ) {
        let db = build(&world);
        assert_equivalent(&db, &format!(
            "SELECT * FROM a LEFT JOIN b ON b.a_id = a.id WHERE {pred}"
        ));
        assert_equivalent(&db, &format!(
            "SELECT * FROM a LEFT JOIN b ON b.a_id = a.id AND b.tag = '{tag}' WHERE {pred}"
        ));
        assert_equivalent(&db, &format!(
            "SELECT * FROM a LEFT JOIN b ON b.a_id = a.id WHERE b.tag = '{tag}'"
        ));
    }

    /// Mutations keep planner structures (trigram postings, statistics)
    /// consistent: results still match naive after updates and deletes.
    #[test]
    fn results_match_after_mutations(world in world_strategy(), pred in predicate_strategy()) {
        let mut db = build(&world);
        db.execute("UPDATE a SET name = 'renamed_davos_probe' WHERE grp = 3").unwrap();
        db.execute("DELETE FROM a WHERE id >= 40").unwrap();
        db.execute("DELETE FROM b WHERE a_id >= 35").unwrap();
        let db = db;
        assert_equivalent(&db, &format!("SELECT * FROM a WHERE {pred}"));
        assert_equivalent(&db, "SELECT * FROM a WHERE name ILIKE '%DAVOS%'");
        assert_equivalent(&db, &format!(
            "SELECT * FROM a JOIN b ON b.a_id = a.id WHERE {pred}"
        ));
    }
}
