//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use sensormeta_relstore::btree::BTreeIndex;
use sensormeta_relstore::heap::Heap;
use sensormeta_relstore::{Database, RowId, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN is normalized to Null by construction.
        (-1e12f64..1e12).prop_map(Value::float),
        "[a-zA-Zäöü0-9_ ]{0,24}".prop_map(Value::text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// Row encoding round-trips bit-exactly for every value mix.
    #[test]
    fn row_encoding_roundtrip(row in prop::collection::vec(arb_value(), 0..12)) {
        let mut buf = Vec::new();
        sensormeta_relstore::encoding::encode_row(&row, &mut buf);
        let mut pos = 0;
        let back = sensormeta_relstore::encoding::decode_row(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(row, back);
    }

    /// Decoding arbitrary garbage never panics — it returns Ok or Err.
    #[test]
    fn decode_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        let _ = sensormeta_relstore::encoding::decode_row(&bytes, &mut pos);
    }

    /// The B-tree agrees with a sorted model (BTreeMap) under a random
    /// insert/remove workload, and its structural invariants hold throughout.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec((0i64..60, any::<bool>()), 1..300)) {
        let mut tree = BTreeIndex::new(false);
        let mut model: BTreeMap<i64, Vec<RowId>> = BTreeMap::new();
        for (i, (k, insert)) in ops.iter().enumerate() {
            let key = vec![Value::Int(*k)];
            let rid = RowId { page: 0, slot: i as u32 % 7 };
            if *insert {
                tree.insert(key, rid).unwrap();
                let list = model.entry(*k).or_default();
                if let Err(p) = list.binary_search(&rid) { list.insert(p, rid); }
            } else {
                let removed = tree.remove(&key, rid);
                let model_removed = model.get_mut(k).is_some_and(|l| {
                    l.binary_search(&rid).map(|p| { l.remove(p); true }).unwrap_or(false)
                });
                prop_assert_eq!(removed, model_removed);
            }
        }
        prop_assert_eq!(tree.check_invariants(), Ok(()));
        let got = tree.iter_all();
        let want: Vec<(Vec<Value>, RowId)> = model.iter()
            .flat_map(|(k, rids)| rids.iter().map(move |r| (vec![Value::Int(*k)], *r)))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Range scans agree with filtering the full iteration.
    #[test]
    fn btree_range_equals_filter(keys in prop::collection::vec(0i64..100, 0..120),
                                 lo in 0i64..100, width in 0i64..50) {
        let mut tree = BTreeIndex::new(false);
        for (i, k) in keys.iter().enumerate() {
            tree.insert(vec![Value::Int(*k)], RowId { page: 1, slot: i as u32 }).unwrap();
        }
        let hi = lo + width;
        let lo_key = vec![Value::Int(lo)];
        let hi_key = vec![Value::Int(hi)];
        let ranged = tree.range(Bound::Included(&lo_key), Bound::Excluded(&hi_key));
        let filtered: Vec<_> = tree.iter_all().into_iter()
            .filter(|(k, _)| *k >= lo_key && *k < hi_key)
            .collect();
        prop_assert_eq!(ranged, filtered);
    }

    /// Heap: whatever was inserted and not deleted is retrievable verbatim.
    #[test]
    fn heap_retains_live_records(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..6000), 1..40),
        delete_mask in prop::collection::vec(any::<bool>(), 1..40))
    {
        let mut heap = Heap::new();
        let ids: Vec<RowId> = records.iter().map(|r| heap.insert(r).unwrap()).collect();
        let mut live = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if delete_mask.get(i).copied().unwrap_or(false) {
                heap.delete(*id);
            } else {
                live.push((*id, &records[i]));
            }
        }
        prop_assert_eq!(heap.len(), live.len());
        prop_assert_eq!(heap.check_invariants(), Ok(()));
        for (id, rec) in &live {
            prop_assert_eq!(heap.get(*id), Some(rec.as_slice()));
        }
        // Snapshot round-trip preserves the same state.
        let snap = heap.to_snapshot();
        let mut pos = 0;
        let back = Heap::from_snapshot(&snap, &mut pos).unwrap();
        prop_assert_eq!(back.check_invariants(), Ok(()));
        for (id, rec) in &live {
            prop_assert_eq!(back.get(*id), Some(rec.as_slice()));
        }
    }

    /// A heavy insert/delete/vacuum workload never breaks the heap's
    /// structural invariants.
    #[test]
    fn heap_invariants_survive_vacuum(sizes in prop::collection::vec(1usize..5000, 1..60),
                                      mask in prop::collection::vec(any::<bool>(), 1..60)) {
        let mut heap = Heap::new();
        let ids: Vec<RowId> = sizes.iter()
            .map(|n| heap.insert(&vec![7u8; *n]).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                heap.delete(*id);
            }
        }
        heap.vacuum();
        prop_assert_eq!(heap.check_invariants(), Ok(()));
    }

    /// SQL round-trip: values inserted through SQL literals come back equal
    /// through SELECT.
    #[test]
    fn sql_insert_select_roundtrip(vals in prop::collection::vec((any::<i64>(), "[a-z ]{0,16}"), 1..30)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, s TEXT)").unwrap();
        let mut expected = Vec::new();
        for (i, (n, s)) in vals.iter().enumerate() {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {n}, '{s}')")).unwrap();
            expected.push((*n, s.clone()));
        }
        let rs = db.query("SELECT n, s FROM t ORDER BY id").unwrap();
        prop_assert_eq!(rs.rows.len(), expected.len());
        for (row, (n, s)) in rs.rows.iter().zip(&expected) {
            prop_assert_eq!(&row[0], &Value::Int(*n));
            prop_assert_eq!(&row[1], &Value::text(s.clone()));
        }
    }

    /// ORDER BY produces a non-decreasing sequence under the Value ordering.
    #[test]
    fn order_by_sorts(vals in prop::collection::vec(any::<i64>(), 1..50)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (v INTEGER)").unwrap();
        for v in &vals {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let rs = db.query("SELECT v FROM t ORDER BY v").unwrap();
        let out: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = vals.clone();
        sorted.sort();
        prop_assert_eq!(out, sorted);
    }

    /// Index access path and full scan return identical result sets.
    #[test]
    fn index_plan_equivalence(keys in prop::collection::vec(0i64..40, 1..80), probe in 0i64..40) {
        let mut with_index = Database::new();
        let mut without = Database::new();
        with_index.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)").unwrap();
        without.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)").unwrap();
        with_index.execute("CREATE INDEX t_k ON t (k)").unwrap();
        for (i, k) in keys.iter().enumerate() {
            let sql = format!("INSERT INTO t VALUES ({i}, {k})");
            with_index.execute(&sql).unwrap();
            without.execute(&sql).unwrap();
        }
        for q in [
            format!("SELECT id FROM t WHERE k = {probe} ORDER BY id"),
            format!("SELECT id FROM t WHERE k >= {probe} ORDER BY id"),
            format!("SELECT id FROM t WHERE k BETWEEN {probe} AND {} ORDER BY id", probe + 5),
        ] {
            prop_assert_eq!(with_index.query(&q).unwrap(), without.query(&q).unwrap());
        }
    }

    /// Database snapshots are stable: snapshot(restore(snapshot(db))) is
    /// byte-identical.
    #[test]
    fn snapshot_idempotent(n in 1usize..40) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)").unwrap();
        for i in 0..n {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')")).unwrap();
        }
        let snap1 = db.to_snapshot();
        let restored = Database::from_snapshot(&snap1).unwrap();
        let snap2 = restored.to_snapshot();
        prop_assert_eq!(snap1, snap2);
    }
}
