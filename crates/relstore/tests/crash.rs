//! Crash-recovery harness: runs a seeded random workload against a durable
//! database, re-executes it crashing at every injected syncpoint (and
//! tearing writes, and injecting transient faults), reopens from the
//! post-crash durable state, and asserts structural invariants plus logical
//! equivalence against an in-memory oracle.
//!
//! The correctness criterion per crash: if `acked` operations returned to
//! the caller and the crashing operation was number `attempted`, then the
//! recovered database must contain exactly the first `n` operations for
//! some `n` with `acked <= n <= attempted` — no acknowledged operation is
//! ever lost, and nothing beyond the operation in flight ever appears.

use sensormeta_relstore::vfs::{FaultPlan, FaultVfs, MemVfs};
use sensormeta_relstore::wal::scan_wal;
use sensormeta_relstore::{Database, DurabilityOptions, RelError, SyncPolicy, Value, Vfs};
use std::path::Path;
use std::sync::Arc;

const DB_PATH: &str = "repo.snap";

/// Small deterministic PRNG (xorshift64*) — no external dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One workload operation. Each maps to exactly one logged logical
/// operation (one WAL sequence number), so operation counts and recovered
/// sequence numbers are directly comparable.
#[derive(Debug, Clone)]
enum WorkOp {
    Sql(String),
    Insert(&'static str, Vec<Value>),
}

fn workload(seed: u64, n: usize) -> Vec<WorkOp> {
    let mut rng = Rng::new(seed);
    let mut ops = vec![
        WorkOp::Sql(
            "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL, views INTEGER)"
                .to_string(),
        ),
        WorkOp::Sql("CREATE TABLE tags (page INTEGER NOT NULL, tag TEXT NOT NULL)".to_string()),
        WorkOp::Sql("CREATE UNIQUE INDEX tags_pair ON tags (page, tag)".to_string()),
    ];
    for i in ops.len()..n {
        let op = match rng.below(12) {
            0..=3 => {
                // Programmatic insert; small id space makes primary-key
                // collisions (deterministic logical failures) common.
                let views = if rng.below(4) == 0 {
                    Value::Null
                } else {
                    Value::Int(rng.below(10_000) as i64)
                };
                WorkOp::Insert(
                    "pages",
                    vec![
                        Value::Int(rng.below(150) as i64),
                        Value::text(format!("p{i}")),
                        views,
                    ],
                )
            }
            4..=6 => WorkOp::Insert(
                "tags",
                vec![
                    Value::Int(rng.below(40) as i64),
                    Value::text(format!("t{}", rng.below(6))),
                ],
            ),
            7 => WorkOp::Sql(format!(
                "INSERT INTO pages VALUES ({}, 'sql{i}', {})",
                150 + rng.below(100),
                rng.below(1000)
            )),
            8 => WorkOp::Sql(format!(
                "UPDATE pages SET views = {} WHERE id < {}",
                rng.below(5000),
                rng.below(150)
            )),
            9 => WorkOp::Sql(format!("DELETE FROM tags WHERE page = {}", rng.below(40))),
            10 => WorkOp::Sql(format!("DELETE FROM pages WHERE id = {}", rng.below(150))),
            _ => WorkOp::Sql(format!(
                "UPDATE tags SET tag = 't{}' WHERE page = {}",
                rng.below(6),
                rng.below(40)
            )),
        };
        ops.push(op);
    }
    ops
}

fn apply_op(db: &mut Database, op: &WorkOp) -> Result<(), RelError> {
    match op {
        WorkOp::Sql(sql) => db.execute(sql).map(|_| ()),
        WorkOp::Insert(table, row) => db.insert_row(table, row.clone()).map(|_| ()),
    }
}

fn is_storage_err(e: &RelError) -> bool {
    matches!(e, RelError::Io(_) | RelError::Wal(_))
}

/// Logical dump of the oracle after each workload prefix: `dumps[n]` is the
/// expected state once exactly the first `n` operations have been applied
/// (logical failures and all).
type Dump = Vec<(String, Vec<Vec<u8>>)>;

fn oracle_dumps(ops: &[WorkOp]) -> Vec<Dump> {
    let mut db = Database::new();
    let mut dumps = Vec::with_capacity(ops.len() + 1);
    dumps.push(db.logical_dump());
    for op in ops {
        let _ = apply_op(&mut db, op);
        dumps.push(db.logical_dump());
    }
    dumps
}

fn small_opts() -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::Always,
        // Tiny threshold: the workload checkpoints many times, so crashes
        // land inside checkpoint windows too.
        checkpoint_wal_bytes: 2048,
    }
}

struct Outcome {
    acked: usize,
    attempted: usize,
    crashed: bool,
}

/// Runs the workload until completion or the first storage error. Any
/// non-storage panic or unexpected error kind fails the test.
fn run_workload(vfs: Arc<dyn Vfs>, ops: &[WorkOp]) -> Outcome {
    let mut db = match Database::open_durable_with(vfs, Path::new(DB_PATH), small_opts()) {
        Ok((db, _)) => db,
        Err(e) => {
            assert!(
                is_storage_err(&e),
                "open failed with non-storage error: {e}"
            );
            return Outcome {
                acked: 0,
                attempted: 0,
                crashed: true,
            };
        }
    };
    let mut acked = 0;
    for (i, op) in ops.iter().enumerate() {
        match apply_op(&mut db, op) {
            Ok(()) => acked = i + 1,
            Err(e) if is_storage_err(&e) => {
                return Outcome {
                    acked,
                    attempted: i + 1,
                    crashed: true,
                };
            }
            // Logical failure (unique violation, …): still logged, still
            // one sequence number, deterministically reproduced at replay.
            Err(_) => acked = i + 1,
        }
    }
    Outcome {
        acked,
        attempted: acked,
        crashed: false,
    }
}

/// Reopens from a post-crash durable state and checks invariants plus
/// oracle equivalence. Returns the recovered operation count.
fn check_recovery(durable: MemVfs, out: &Outcome, dumps: &[Dump]) -> (usize, bool) {
    let (rec, report) =
        Database::open_durable_with(Arc::new(durable), Path::new(DB_PATH), small_opts())
            .expect("recovery open must succeed");
    if let Err(problems) = rec.check_invariants() {
        panic!("invariants violated after recovery: {problems:?}");
    }
    let n = rec.committed_seq() as usize;
    assert!(
        out.acked <= n && n <= out.attempted,
        "recovered {n} ops, but {} were acknowledged and {} attempted",
        out.acked,
        out.attempted
    );
    assert_eq!(
        rec.logical_dump(),
        dumps[n],
        "recovered state diverges from oracle after {n} ops"
    );
    (n, !report.wal_problems.is_empty())
}

#[test]
fn crash_at_every_syncpoint_recovers() {
    let ops = workload(0xC0FFEE, 220);
    let dumps = oracle_dumps(&ops);

    // Fault-free probe run: validates the op ↔ sequence-number mapping and
    // counts the syncpoints the workload passes through.
    let probe = FaultVfs::new(MemVfs::new(), FaultPlan::default());
    let out = run_workload(Arc::new(probe.clone()), &ops);
    assert!(!out.crashed, "probe run must not crash");
    assert_eq!(out.acked, ops.len());
    let (n, _) = check_recovery(probe.durable_state(), &out, &dumps);
    assert_eq!(n, ops.len(), "fault-free run recovers everything");
    let total_syncs = probe.syncs();
    assert!(total_syncs as usize > ops.len(), "every commit syncs");

    let mut crashes = 0u64;
    let mut torn_reports = 0u64;
    for k in 1..=total_syncs {
        // Vary how much unsynced tail survives each crash: 0 models strict
        // fsync-only survival, larger values produce torn WAL tails.
        let spill = ((k * 13) % 120) as usize;
        let vfs = FaultVfs::new(
            MemVfs::new(),
            FaultPlan {
                crash_at_sync: Some(k),
                crash_spill: spill,
                ..FaultPlan::default()
            },
        );
        let out = run_workload(Arc::new(vfs.clone()), &ops);
        if out.crashed {
            crashes += 1;
        }
        let (n, torn) = check_recovery(vfs.durable_state(), &out, &dumps);
        if torn {
            torn_reports += 1;
        }
        // Periodically check that recovery is idempotent and the database
        // stays writable after reopening.
        if k % 16 == 0 {
            let durable = vfs.durable_state();
            let (mut again, _) =
                Database::open_durable_with(Arc::new(durable), Path::new(DB_PATH), small_opts())
                    .expect("second recovery open");
            assert_eq!(again.committed_seq() as usize, n);
            again
                .insert_row(
                    "pages",
                    vec![
                        Value::Int(1_000_000 + k as i64),
                        Value::text("post-crash"),
                        Value::Null,
                    ],
                )
                .expect("recovered database accepts writes");
        }
    }
    assert_eq!(crashes, total_syncs, "every syncpoint produced a crash");
    assert!(
        torn_reports > 0,
        "at least some crashes must leave torn WAL tails that recovery reports"
    );
}

#[test]
fn torn_writes_recover() {
    let ops = workload(0xBEEF, 200);
    let dumps = oracle_dumps(&ops);

    let probe = FaultVfs::new(MemVfs::new(), FaultPlan::default());
    let out = run_workload(Arc::new(probe.clone()), &ops);
    assert!(!out.crashed);
    let total_writes = probe.writes();

    let mut torn_reports = 0u64;
    for w in (1..=total_writes).step_by(3) {
        let keep = ((w * 7) % 41) as usize;
        let vfs = FaultVfs::new(
            MemVfs::new(),
            FaultPlan {
                torn_write: Some((w, keep)),
                crash_spill: usize::MAX,
                ..FaultPlan::default()
            },
        );
        let out = run_workload(Arc::new(vfs.clone()), &ops);
        assert!(out.crashed, "torn write {w} must crash the run");
        let (_, torn) = check_recovery(vfs.durable_state(), &out, &dumps);
        if torn {
            torn_reports += 1;
        }
    }
    assert!(
        torn_reports > 0,
        "torn writes must be detected and reported"
    );
}

#[test]
fn transient_faults_never_panic_and_recover() {
    let ops = workload(0xFACADE, 120);
    let dumps = oracle_dumps(&ops);

    let probe = FaultVfs::new(MemVfs::new(), FaultPlan::default());
    let out = run_workload(Arc::new(probe.clone()), &ops);
    assert!(!out.crashed);
    let total_ops = probe.ops();

    for f in (1..=total_ops).step_by(7) {
        let vfs = FaultVfs::new(
            MemVfs::new(),
            FaultPlan {
                fail_at_op: Some(f),
                ..FaultPlan::default()
            },
        );
        let out = run_workload(Arc::new(vfs.clone()), &ops);
        // A transient fault is not a crash of the machine: recovery runs
        // against the live file system, not the crash view.
        let (rec, _) =
            Database::open_durable_with(Arc::new(vfs.clone()), Path::new(DB_PATH), small_opts())
                .expect("reopen after transient fault");
        if let Err(problems) = rec.check_invariants() {
            panic!("invariants violated after transient fault {f}: {problems:?}");
        }
        let n = rec.committed_seq() as usize;
        assert!(
            out.acked <= n && n <= out.attempted.max(out.acked),
            "fault {f}: recovered {n}, acked {}, attempted {}",
            out.acked,
            out.attempted
        );
        assert_eq!(rec.logical_dump(), dumps[n], "fault {f} diverges");
    }
}

#[test]
fn bit_flips_in_wal_detected_and_skipped() {
    let ops = workload(0xDECADE, 150);
    let dumps = oracle_dumps(&ops);

    // Run on a plain MemVfs with a huge checkpoint threshold so the whole
    // workload stays in the WAL.
    let mem = MemVfs::new();
    let opts = DurabilityOptions {
        sync: SyncPolicy::Always,
        checkpoint_wal_bytes: u64::MAX,
    };
    let (mut db, _) =
        Database::open_durable_with(Arc::new(mem.clone()), Path::new(DB_PATH), opts.clone())
            .expect("open");
    for op in &ops {
        let _ = apply_op(&mut db, op);
    }
    drop(db);

    let wal_path = sensormeta_relstore::wal_path_for(Path::new(DB_PATH));
    let clean = mem.read(&wal_path).expect("wal exists");
    let scan = scan_wal(&clean);
    assert!(scan.is_clean());
    assert_eq!(scan.committed.len(), ops.len(), "one tx per op");

    for frac in [3u64, 2, 1] {
        // Flip a bit at 1/3, 1/2, and near the end of the log body.
        let mut corrupt = clean.clone();
        let ix = 8 + (corrupt.len() - 9) / frac as usize;
        corrupt[ix] ^= 0x20;
        let vfs = MemVfs::new();
        vfs.install(&wal_path, corrupt.clone());

        // Read-only recovering open: reports the damage, recovers the
        // committed prefix, and writes nothing.
        let (rec, report) = Database::open_recovering(Arc::new(vfs.clone()), Path::new(DB_PATH))
            .expect("recovering open");
        assert!(
            !report.wal_problems.is_empty(),
            "bit flip at {ix} must be reported"
        );
        assert!(report.discarded_bytes > 0);
        let n = report.last_seq as usize;
        assert!(n < ops.len(), "corruption must cut the log short");
        assert_eq!(rec.logical_dump(), dumps[n]);
        if let Err(problems) = rec.check_invariants() {
            panic!("invariants violated after bit flip: {problems:?}");
        }
        assert_eq!(
            vfs.read(&wal_path).expect("wal still present"),
            corrupt,
            "recovering open must not modify the store"
        );

        // A durable open folds the recovered prefix and truncates the log;
        // a subsequent open is clean.
        let (_, report) =
            Database::open_durable_with(Arc::new(vfs.clone()), Path::new(DB_PATH), opts.clone())
                .expect("durable open after corruption");
        assert!(report.checkpointed);
        let (rec2, report2) =
            Database::open_durable_with(Arc::new(vfs.clone()), Path::new(DB_PATH), opts.clone())
                .expect("clean reopen");
        assert!(report2.wal_problems.is_empty());
        assert_eq!(rec2.committed_seq() as usize, n);
        assert_eq!(rec2.logical_dump(), dumps[n]);
    }
}
