//! End-to-end SQL tests exercising the full parse → plan → execute pipeline.

use sensormeta_relstore::{Database, RelError, Value};

fn fixture() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE stations (id INTEGER PRIMARY KEY, name TEXT NOT NULL, \
         elevation FLOAT, canton TEXT);
         CREATE TABLE sensors (id INTEGER PRIMARY KEY, station INTEGER, \
         kind TEXT NOT NULL, unit TEXT);
         INSERT INTO stations VALUES
           (1, 'Weissfluhjoch', 2693.0, 'GR'),
           (2, 'Davos', 1594.0, 'GR'),
           (3, 'Jungfraujoch', 3571.0, 'BE'),
           (4, 'Payerne', 490.0, 'VD');
         INSERT INTO sensors VALUES
           (10, 1, 'temperature', 'C'),
           (11, 1, 'wind_speed', 'm/s'),
           (12, 1, 'snow_height', 'cm'),
           (13, 2, 'temperature', 'C'),
           (14, 3, 'temperature', 'C'),
           (15, 3, 'radiation', 'W/m2'),
           (16, NULL, 'orphan', NULL);",
    )
    .unwrap();
    db
}

#[test]
fn basic_projection_and_filter() {
    let db = fixture();
    let rs = db
        .query("SELECT name FROM stations WHERE elevation > 1500 ORDER BY name")
        .unwrap();
    let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["Davos", "Jungfraujoch", "Weissfluhjoch"]);
}

#[test]
fn inner_join() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT st.name, s.kind FROM sensors s JOIN stations st ON s.station = st.id \
             WHERE s.kind = 'temperature' ORDER BY st.name",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][0], Value::text("Davos"));
}

#[test]
fn left_join_pads_nulls() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT s.kind, st.name FROM sensors s LEFT JOIN stations st ON s.station = st.id \
             WHERE st.name IS NULL",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::text("orphan"));
    assert!(rs.rows[0][1].is_null());
}

#[test]
fn group_by_having() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT station, COUNT(*) AS n FROM sensors WHERE station IS NOT NULL \
             GROUP BY station HAVING COUNT(*) >= 2 ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(3)]);
    assert_eq!(rs.rows[1], vec![Value::Int(3), Value::Int(2)]);
}

#[test]
fn global_aggregates_over_empty_and_nonempty() {
    let db = fixture();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM sensors").unwrap(),
        Some(Value::Int(7))
    );
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM sensors WHERE kind = 'nothing'")
            .unwrap(),
        Some(Value::Int(0))
    );
    // SUM over empty set is NULL per SQL semantics.
    assert_eq!(
        db.query_scalar("SELECT SUM(station) FROM sensors WHERE kind = 'nothing'")
            .unwrap(),
        Some(Value::Null)
    );
    let avg = db
        .query_scalar("SELECT AVG(elevation) FROM stations")
        .unwrap()
        .unwrap();
    assert_eq!(avg, Value::Float((2693.0 + 1594.0 + 3571.0 + 490.0) / 4.0));
}

#[test]
fn count_distinct() {
    let db = fixture();
    assert_eq!(
        db.query_scalar("SELECT COUNT(DISTINCT kind) FROM sensors")
            .unwrap(),
        Some(Value::Int(5))
    );
}

#[test]
fn distinct_order_limit_offset() {
    let db = fixture();
    let rs = db
        .query("SELECT DISTINCT canton FROM stations ORDER BY canton LIMIT 2 OFFSET 1")
        .unwrap();
    let cantons: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(cantons, vec!["GR", "VD"]);
}

#[test]
fn order_by_positional_and_alias() {
    let db = fixture();
    let rs = db
        .query("SELECT name AS n, elevation FROM stations ORDER BY 2 DESC LIMIT 1")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Jungfraujoch"));
    let rs = db
        .query("SELECT UPPER(name) AS shouty FROM stations ORDER BY shouty LIMIT 1")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("DAVOS"));
}

#[test]
fn update_and_delete() {
    let mut db = fixture();
    let n = db
        .execute("UPDATE sensors SET unit = 'K' WHERE kind = 'temperature'")
        .unwrap()
        .affected();
    assert_eq!(n, 3);
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM sensors WHERE unit = 'K'")
            .unwrap(),
        Some(Value::Int(3))
    );
    let n = db
        .execute("DELETE FROM sensors WHERE station IS NULL")
        .unwrap()
        .affected();
    assert_eq!(n, 1);
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM sensors").unwrap(),
        Some(Value::Int(6))
    );
}

#[test]
fn update_expression_uses_old_row() {
    let mut db = fixture();
    db.execute("UPDATE stations SET elevation = elevation + 10 WHERE id = 1")
        .unwrap();
    assert_eq!(
        db.query_scalar("SELECT elevation FROM stations WHERE id = 1")
            .unwrap(),
        Some(Value::Float(2703.0))
    );
}

#[test]
fn index_scan_matches_full_scan() {
    let mut db = fixture();
    // Query before creating the index…
    let full = db
        .query("SELECT id FROM sensors WHERE kind = 'temperature' ORDER BY id")
        .unwrap();
    db.execute("CREATE INDEX sensors_kind ON sensors (kind)")
        .unwrap();
    // …and after: the access path changes, results must not.
    let indexed = db
        .query("SELECT id FROM sensors WHERE kind = 'temperature' ORDER BY id")
        .unwrap();
    assert_eq!(full, indexed);
    // Range predicate through the PK index.
    let rs = db
        .query("SELECT id FROM sensors WHERE id BETWEEN 11 AND 13 ORDER BY id")
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn unique_violation_through_sql() {
    let mut db = fixture();
    let err = db
        .execute("INSERT INTO stations VALUES (1, 'Dup', 0.0, 'ZH')")
        .unwrap_err();
    assert!(matches!(err, RelError::UniqueViolation { .. }));
}

#[test]
fn like_and_functions_in_where() {
    let db = fixture();
    let rs = db
        .query("SELECT name FROM stations WHERE LOWER(name) LIKE '%joch' ORDER BY name")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn expression_only_select() {
    let db = Database::new();
    assert_eq!(
        db.query_scalar("SELECT 2 + 2 * 10").unwrap(),
        Some(Value::Int(22))
    );
}

#[test]
fn snapshot_roundtrip_preserves_everything() {
    let mut db = fixture();
    db.execute("CREATE INDEX sensors_kind ON sensors (kind)")
        .unwrap();
    let snap = db.to_snapshot();
    let restored = Database::from_snapshot(&snap).unwrap();
    assert_eq!(restored.table_names(), db.table_names());
    let q = "SELECT st.name, COUNT(*) FROM sensors s JOIN stations st ON s.station = st.id \
             GROUP BY st.name ORDER BY st.name";
    assert_eq!(db.query(q).unwrap(), restored.query(q).unwrap());
    // Indexes restored: unique constraint still enforced.
    let mut restored = restored;
    assert!(restored
        .execute("INSERT INTO stations VALUES (1, 'Dup', 0.0, 'ZH')")
        .is_err());
}

#[test]
fn snapshot_rejects_corruption() {
    let db = fixture();
    let mut snap = db.to_snapshot();
    snap[3] = b'X';
    assert!(Database::from_snapshot(&snap).is_err());
    assert!(Database::from_snapshot(&[]).is_err());
}

#[test]
fn ascii_table_rendering() {
    let db = fixture();
    let rs = db
        .query("SELECT name, canton FROM stations WHERE id <= 2 ORDER BY id")
        .unwrap();
    let table = rs.to_ascii_table();
    assert!(table.contains("| Weissfluhjoch |"));
    assert!(table.contains("| name"));
}

#[test]
fn multi_join_three_tables() {
    let mut db = fixture();
    db.execute_script(
        "CREATE TABLE cantons (code TEXT PRIMARY KEY, fullname TEXT);
         INSERT INTO cantons VALUES ('GR', 'Graubuenden'), ('BE', 'Bern'), ('VD', 'Vaud');",
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT c.fullname, COUNT(*) AS n FROM sensors s \
             JOIN stations st ON s.station = st.id \
             JOIN cantons c ON st.canton = c.code \
             GROUP BY c.fullname ORDER BY n DESC, c.fullname",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Graubuenden"));
    assert_eq!(rs.rows[0][1], Value::Int(4));
}

#[test]
fn qualified_wildcard_projection() {
    let db = fixture();
    let rs = db
        .query("SELECT st.* FROM sensors s JOIN stations st ON s.station = st.id WHERE s.id = 10")
        .unwrap();
    assert_eq!(rs.columns, vec!["id", "name", "elevation", "canton"]);
    assert_eq!(rs.rows[0][1], Value::text("Weissfluhjoch"));
}

#[test]
fn drop_table_and_if_exists() {
    let mut db = fixture();
    db.execute("DROP TABLE sensors").unwrap();
    assert!(!db.has_table("sensors"));
    assert!(db.execute("DROP TABLE sensors").is_err());
    db.execute("DROP TABLE IF EXISTS sensors").unwrap();
}

#[test]
fn insert_with_column_list_fills_nulls() {
    let mut db = fixture();
    db.execute("INSERT INTO sensors (id, kind) VALUES (99, 'humidity')")
        .unwrap();
    let rs = db
        .query("SELECT station, unit FROM sensors WHERE id = 99")
        .unwrap();
    assert!(rs.rows[0][0].is_null());
    assert!(rs.rows[0][1].is_null());
}

#[test]
fn explain_shows_access_path() {
    let mut db = fixture();
    // Without an index on `kind`: sequential scan.
    let plan = db
        .execute("EXPLAIN SELECT id FROM sensors WHERE kind = 'temperature'")
        .unwrap()
        .into_rows()
        .unwrap();
    let steps: Vec<String> = plan.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(steps[0].starts_with("FullScan sensors"), "{steps:?}");
    // With the index: the planner must pick it.
    db.execute("CREATE INDEX sensors_kind ON sensors (kind)")
        .unwrap();
    let plan = db
        .execute("EXPLAIN SELECT id FROM sensors WHERE kind = 'temperature'")
        .unwrap()
        .into_rows()
        .unwrap();
    let steps: Vec<String> = plan.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(
        steps[0].contains("IndexSeek sensors via sensors_kind (eq on kind)"),
        "{steps:?}"
    );
    // Range predicates use the PK index.
    let plan = db
        .execute("EXPLAIN SELECT id FROM sensors WHERE id BETWEEN 10 AND 12")
        .unwrap()
        .into_rows()
        .unwrap();
    assert!(plan.rows[0][0].to_string().contains("(range on id)"));
}

#[test]
fn explain_lists_pipeline_steps() {
    let mut db = fixture();
    let plan = db
        .execute(
            "EXPLAIN SELECT kind, COUNT(*) FROM sensors s JOIN stations st              ON s.station = st.id WHERE st.elevation > 1000 GROUP BY kind              HAVING COUNT(*) > 1 ORDER BY kind LIMIT 3",
        )
        .unwrap()
        .into_rows()
        .unwrap();
    let steps: Vec<String> = plan.rows.iter().map(|r| r[0].to_string()).collect();
    let text = steps.join(" | ");
    for needle in [
        "InnerJoin",
        "Filter",
        "HashAggregate",
        "HavingFilter",
        "Project",
        "Sort (1 keys)",
        "LimitOffset",
    ] {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }
}

#[test]
fn like_prefix_uses_index_and_matches_full_scan() {
    let mut db = fixture();
    let q = "SELECT id FROM sensors WHERE kind LIKE 'wind%' ORDER BY id";
    let full = db.query(q).unwrap();
    db.execute("CREATE INDEX sensors_kind ON sensors (kind)")
        .unwrap();
    let indexed = db.query(q).unwrap();
    assert_eq!(full, indexed);
    assert_eq!(indexed.rows.len(), 1);
    // The planner shows the range scan.
    let plan = db
        .query("EXPLAIN SELECT id FROM sensors WHERE kind LIKE 'wind%'")
        .unwrap();
    assert!(
        plan.rows[0][0]
            .to_string()
            .contains("RangeScan sensors via sensors_kind (range on kind)"),
        "{:?}",
        plan.rows
    );
    // Leading-wildcard patterns cannot use the index.
    let plan = db
        .query("EXPLAIN SELECT id FROM sensors WHERE kind LIKE '%speed'")
        .unwrap();
    assert!(plan.rows[0][0].to_string().starts_with("FullScan"));
    // Mid-pattern wildcards still filter correctly through the range.
    let rs = db
        .query("SELECT kind FROM sensors WHERE kind LIKE 'w%_speed' ORDER BY kind")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}
