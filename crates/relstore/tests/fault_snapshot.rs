//! Snapshot round-trips under fault injection: every injected I/O error
//! must surface as a `RelError` (never a panic), and a failed save must
//! leave a readable snapshot behind — either the old one or the new one,
//! never a torn hybrid.

use sensormeta_relstore::vfs::{FaultPlan, FaultVfs, MemVfs};
use sensormeta_relstore::{Database, RelError, Value, Vfs};
use std::path::Path;
use std::sync::Arc;

const SNAP: &str = "db.snap";

fn sample_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE sensors (id INTEGER PRIMARY KEY, name TEXT NOT NULL)")
        .expect("create");
    for i in 0..rows {
        db.insert_row("sensors", vec![Value::Int(i), Value::text(format!("s{i}"))])
            .expect("insert");
    }
    db
}

#[test]
fn save_roundtrips_through_vfs() {
    let db = sample_db(25);
    let vfs = MemVfs::new();
    db.save_with(&vfs, Path::new(SNAP)).expect("save");
    let bytes = vfs.read(Path::new(SNAP)).expect("read back");
    let back = Database::from_snapshot(&bytes).expect("parse");
    assert_eq!(back.logical_dump(), db.logical_dump());
    // The write is durable: it survives a strict fsync-only crash.
    let after = vfs.crash_view(0);
    let bytes = after
        .read(Path::new(SNAP))
        .expect("snapshot survives crash");
    let back = Database::from_snapshot(&bytes).expect("parse after crash");
    assert_eq!(back.logical_dump(), db.logical_dump());
}

#[test]
fn every_injected_save_fault_is_an_error_not_a_panic() {
    let old = sample_db(10);
    let new = sample_db(30);

    // Count how many I/O operations a clean save performs.
    let probe = FaultVfs::new(MemVfs::new(), FaultPlan::default());
    old.save_with(&probe, Path::new(SNAP)).expect("probe save");
    let total_ops = probe.ops();
    assert!(total_ops >= 5, "create + write + sync + rename + dir sync");

    for f in 1..=total_ops {
        // Start from a file system that already holds the old snapshot,
        // durably.
        let mem = MemVfs::new();
        old.save_with(&mem, Path::new(SNAP)).expect("seed save");
        let vfs = FaultVfs::new(
            mem,
            FaultPlan {
                fail_at_op: Some(f),
                ..FaultPlan::default()
            },
        );

        let err = new
            .save_with(&vfs, Path::new(SNAP))
            .expect_err("injected fault must fail the save");
        assert!(
            matches!(err, RelError::Io(_)),
            "fault {f}: wrong error kind: {err}"
        );

        // Whatever the failure point, the snapshot path must still hold a
        // parseable database — the old or the new contents, nothing torn —
        // both live and after a crash.
        for view in [vfs.durable_state(), {
            let live = MemVfs::new();
            live.install(
                Path::new(SNAP),
                vfs.read(Path::new(SNAP)).expect("live snapshot present"),
            );
            live
        }] {
            let bytes = view
                .read(Path::new(SNAP))
                .expect("snapshot entry must survive a failed save");
            let got = Database::from_snapshot(&bytes)
                .expect("snapshot must stay parseable")
                .logical_dump();
            assert!(
                got == old.logical_dump() || got == new.logical_dump(),
                "fault {f}: snapshot is neither the old nor the new database"
            );
        }
    }
}

#[test]
fn crash_during_save_preserves_old_snapshot() {
    let old = sample_db(10);
    let new = sample_db(30);

    let probe = FaultVfs::new(MemVfs::new(), FaultPlan::default());
    old.save_with(&probe, Path::new(SNAP)).expect("probe save");
    let total_syncs = probe.syncs();

    for k in 1..=total_syncs {
        let mem = MemVfs::new();
        old.save_with(&mem, Path::new(SNAP)).expect("seed save");
        let vfs = FaultVfs::new(
            mem,
            FaultPlan {
                crash_at_sync: Some(k),
                ..FaultPlan::default()
            },
        );
        new.save_with(&vfs, Path::new(SNAP))
            .expect_err("crash must fail the save");
        let after = vfs.durable_state();
        let bytes = after
            .read(Path::new(SNAP))
            .expect("old snapshot must survive the crash");
        let got = Database::from_snapshot(&bytes)
            .expect("snapshot parseable after crash")
            .logical_dump();
        assert!(
            got == old.logical_dump() || got == new.logical_dump(),
            "crash at sync {k} tore the snapshot"
        );
    }
}

/// `Arc<dyn Vfs>` saves also work (exercises the trait-object path used by
/// the durable database).
#[test]
fn save_through_trait_object() {
    let db = sample_db(5);
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    db.save_with(vfs.as_ref(), Path::new(SNAP)).expect("save");
    let back = Database::from_snapshot(&vfs.read(Path::new(SNAP)).expect("read")).expect("parse");
    assert_eq!(back.logical_dump(), db.logical_dump());
}
