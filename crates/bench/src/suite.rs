//! Seeded end-to-end benchmark suite behind `sensormeta bench`.
//!
//! Each workload is deterministic from the seed, times its iterations into
//! an obs histogram, and reports tail quantiles (p50/p95/p99 straight from
//! the log-linear buckets) as machine-readable JSON — one `BENCH_*.json`
//! per workload, diffable across commits.

use crate::{fig3_problem, FIG3_TOL};
use sensormeta_cache::Status;
use sensormeta_obs as obs;
use sensormeta_par::Pool;
use sensormeta_query::{CondOp, Condition, QueryEngine, SearchForm, SearchOptions};
use sensormeta_rank::{GaussSeidel, PowerIteration, Solver};
use sensormeta_resil as resil;
use sensormeta_search::SearchIndex;
use sensormeta_smr::{PageDraft, Smr};
use sensormeta_tagging::{compute_cloud, similarity_matrix_in, CloudParams, TagStore};
use sensormeta_workload::{generate_corpus, query_workload, CorpusConfig};
use std::time::Instant;

/// Knobs for one suite run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Corpus scale (institutions in the generated repository).
    pub scale: usize,
    /// Timed iterations per workload.
    pub iterations: usize,
    /// RNG seed for corpus and query generation.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 4,
            iterations: 40,
            seed: 2011,
        }
    }
}

/// Summary of one workload: tail quantiles in microseconds plus
/// workload-specific extras (e.g. the observability overhead percentage).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Workload name (also the `BENCH_<name>.json` file stem).
    pub name: &'static str,
    /// Number of timed iterations.
    pub iterations: u64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 95th percentile latency (µs).
    pub p95_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// Worst iteration (µs).
    pub max_us: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Extra (key, value) measurements specific to the workload.
    pub extra: Vec<(&'static str, f64)>,
    /// Extra (key, text) fields — e.g. result hashes from the
    /// serial-vs-parallel workloads.
    pub extra_text: Vec<(&'static str, String)>,
}

impl BenchReport {
    fn from_histogram(name: &'static str, h: &obs::Histogram) -> BenchReport {
        let s = h.snapshot();
        BenchReport {
            name,
            iterations: s.count,
            p50_us: s.p50,
            p95_us: s.p95,
            p99_us: s.p99,
            max_us: s.max,
            mean_us: if s.count == 0 {
                0.0
            } else {
                s.sum as f64 / s.count as f64
            },
            extra: Vec::new(),
            extra_text: Vec::new(),
        }
    }

    /// Machine-readable rendering, one object per file.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let mut entries: Vec<(String, Value)> = vec![
            ("name".into(), Value::String(self.name.into())),
            ("iterations".into(), Value::Int(self.iterations as i64)),
            ("p50_us".into(), Value::Int(self.p50_us as i64)),
            ("p95_us".into(), Value::Int(self.p95_us as i64)),
            ("p99_us".into(), Value::Int(self.p99_us as i64)),
            ("max_us".into(), Value::Int(self.max_us as i64)),
            ("mean_us".into(), Value::Float(self.mean_us)),
        ];
        for (k, v) in &self.extra {
            entries.push(((*k).into(), Value::Float(*v)));
        }
        for (k, v) in &self.extra_text {
            entries.push(((*k).into(), Value::String(v.clone())));
        }
        Value::Object(entries).to_string()
    }
}

/// Runs every workload and returns their reports, in a fixed order.
pub fn run_suite(cfg: &BenchConfig) -> Vec<BenchReport> {
    vec![
        bench_search(cfg),
        bench_pagerank(cfg),
        bench_tagcloud(cfg),
        bench_combined_query(cfg),
        bench_obs_overhead(cfg),
        bench_pagerank_par(cfg),
        bench_tagsim_par(cfg),
        bench_indexbuild_par(cfg),
        bench_cache(cfg),
        bench_resil_overhead(cfg),
        bench_planner(cfg),
        // Last on purpose: its writers bump every epoch domain, which would
        // cold-start the cache workloads if it ran before them.
        bench_concurrency(cfg),
        // After concurrency for the same reason: cluster writes churn the
        // clock too.
        bench_cluster(cfg),
    ]
}

/// The seeded repository + query engine every end-to-end workload shares.
fn seeded_engine(cfg: &BenchConfig) -> QueryEngine {
    let pages = generate_corpus(&CorpusConfig {
        institutions: cfg.scale,
        seed: cfg.seed,
        ..CorpusConfig::default()
    });
    let mut smr = Smr::new();
    let report = smr.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    QueryEngine::open(smr).expect("engine build") // xlint: allow(no-unwrap)
}

/// Keyword search over the seeded corpus (the demo's hot path).
fn bench_search(cfg: &BenchConfig) -> BenchReport {
    let engine = seeded_engine(cfg);
    let queries = query_workload(cfg.iterations, cfg.seed);
    let h = obs::histogram("bench_search_us");
    for q in &queries {
        let form = SearchForm::keywords(q.clone());
        let t = Instant::now();
        let _ = engine.search(&form, None);
        h.record_duration(t.elapsed());
    }
    BenchReport::from_histogram("search", &h)
}

/// Gauss–Seidel PageRank solve on the Fig. 3 web graph.
fn bench_pagerank(cfg: &BenchConfig) -> BenchReport {
    let problem = fig3_problem(1_000 * cfg.scale.max(1));
    let h = obs::histogram("bench_pagerank_us");
    let iters = cfg.iterations.clamp(1, 10);
    let mut converged = 0u64;
    for _ in 0..iters {
        let t = Instant::now();
        let r = GaussSeidel.solve(&problem, FIG3_TOL, 1_000);
        h.record_duration(t.elapsed());
        converged += u64::from(r.converged);
    }
    let mut report = BenchReport::from_histogram("pagerank", &h);
    report.extra.push(("converged_runs", converged as f64));
    report
}

/// Tag-cloud build: similarity graph + Bron–Kerbosch + font scaling.
fn bench_tagcloud(cfg: &BenchConfig) -> BenchReport {
    let engine = seeded_engine(cfg);
    let mut store = TagStore::new();
    let pairs = engine.smr().all_tags().expect("tags"); // xlint: allow(no-unwrap)
    store.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
    let h = obs::histogram("bench_tagcloud_us");
    for _ in 0..cfg.iterations {
        let t = Instant::now();
        let cloud = compute_cloud(&store, &CloudParams::default());
        h.record_duration(t.elapsed());
        std::hint::black_box(cloud.entries.len());
    }
    BenchReport::from_histogram("tagcloud", &h)
}

/// The paper's SQL + SPARQL combination: keywords plus an exact (SPARQL)
/// and a substring (SQL) condition in one form.
fn bench_combined_query(cfg: &BenchConfig) -> BenchReport {
    let engine = seeded_engine(cfg);
    let attrs = engine.smr().attributes().expect("attributes"); // xlint: allow(no-unwrap)
    let attr = attrs
        .first()
        .map(|(a, _)| a.clone())
        .unwrap_or_else(|| "measuresQuantity".into());
    let values = engine.smr().attribute_values(&attr).unwrap_or_default();
    let value = values.first().cloned().unwrap_or_default();
    let queries = query_workload(cfg.iterations, cfg.seed + 7);
    let h = obs::histogram("bench_combined_query_us");
    for q in &queries {
        let mut form = SearchForm::keywords(q.clone());
        form.conditions
            .push(Condition::new(&attr, CondOp::Eq, &value));
        form.conditions
            .push(Condition::new(&attr, CondOp::Contains, &value));
        form.soft_conditions = true;
        let t = Instant::now();
        let _ = engine.search(&form, None);
        h.record_duration(t.elapsed());
    }
    BenchReport::from_histogram("combined_query", &h)
}

/// Instrumented search hot path with the global registry enabled vs
/// disabled (no-op mode). The acceptance budget for instrumentation
/// overhead is 5% on this path.
fn bench_obs_overhead(cfg: &BenchConfig) -> BenchReport {
    let engine = seeded_engine(cfg);
    let queries = query_workload(cfg.iterations.max(20), cfg.seed + 13);
    // Recording goes to a private registry so it survives the global
    // registry being switched off mid-measurement.
    let reg = obs::Registry::new();
    let h_on = reg.histogram("on_us");
    let h_off = reg.histogram("off_us");
    let run = |h: &obs::Histogram| {
        for q in &queries {
            let form = SearchForm::keywords(q.clone());
            let t = Instant::now();
            let _ = engine.search(&form, None);
            h.record_duration(t.elapsed());
        }
    };
    run(&reg.histogram("warmup_us"));
    run(&h_on);
    obs::global().set_enabled(false);
    run(&h_off);
    obs::global().set_enabled(true);
    let mut report = BenchReport::from_histogram("obs_overhead", &h_on);
    let on_sum = h_on.sum() as f64;
    let off_sum = h_off.sum().max(1) as f64;
    report
        .extra
        .push(("disabled_p50_us", h_off.quantile(0.5) as f64));
    report
        .extra
        .push(("disabled_mean_us", off_sum / h_off.count().max(1) as f64));
    report
        .extra
        .push(("overhead_pct", (on_sum - off_sum) / off_sum * 100.0));
    report
}

/// The checkpointed search hot path with no ambient deadline vs a far
/// deadline installed: the marginal cost of deadline propagation on the
/// serving path (every checkpoint does an extra `Instant::now()` once a
/// bound is set). The acceptance budget is 5% on this path.
fn bench_resil_overhead(cfg: &BenchConfig) -> BenchReport {
    let engine = seeded_engine(cfg);
    let queries = query_workload(cfg.iterations.max(20), cfg.seed + 31);
    let reg = obs::Registry::new();
    let h_off = reg.histogram("no_deadline_us");
    let h_on = reg.histogram("deadline_us");
    let run = |h: &obs::Histogram| {
        for q in &queries {
            let form = SearchForm::keywords(q.clone());
            let t = Instant::now();
            let _ = engine.search(&form, None);
            h.record_duration(t.elapsed());
        }
    };
    run(&reg.histogram("warmup_us"));
    run(&h_off);
    {
        let _scope = resil::deadline_scope(resil::Deadline::within(
            std::time::Duration::from_secs(3600),
        ));
        run(&h_on);
    }
    let mut report = BenchReport::from_histogram("resil_overhead", &h_on);
    let on_sum = h_on.sum() as f64;
    let off_sum = h_off.sum().max(1) as f64;
    report
        .extra
        .push(("no_deadline_p50_us", h_off.quantile(0.5) as f64));
    report
        .extra
        .push(("no_deadline_mean_us", off_sum / h_off.count().max(1) as f64));
    report
        .extra
        .push(("overhead_pct", (on_sum - off_sum) / off_sum * 100.0));
    report
}

/// Cost-based planner vs forced-naive execution over a 10×-scale corpus:
/// trigram seek vs full scan on substring LIKE/ILIKE predicates, and the
/// reordered probe join vs the written-order nested loop on the
/// pages/annotations join. Planned and naive runs are first checked for
/// result equality, and the chosen-plan counters are asserted so the timed
/// planned runs provably took the indexed paths.
fn bench_planner(cfg: &BenchConfig) -> BenchReport {
    use sensormeta_relstore::PlannerConfig;
    let pages = generate_corpus(&CorpusConfig {
        institutions: cfg.scale.max(1) * 10,
        seed: cfg.seed,
        ..CorpusConfig::default()
    });
    let mut smr = Smr::new();
    let load = smr.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    assert!(load.errors.is_empty(), "{:?}", load.errors);
    let db = smr.database();
    let naive = PlannerConfig::naive();

    // Deployment titles embed the lowercased site name, the field-site page
    // keeps the original casing — so LIKE and ILIKE match different sets.
    let like_sql = "SELECT title FROM pages WHERE title LIKE '%rietholzbach%'";
    let ilike_sql = "SELECT title FROM pages WHERE title ILIKE '%RIETHOLZBACH%'";
    let join_sql = "SELECT p.title, a.value FROM pages AS p \
                    JOIN annotations AS a ON a.page_id = p.id \
                    WHERE a.attribute = 'hasVendor'";

    let trigram_before = obs::counter("sql_plan_trigram_seek_total").get();
    let probe_before = obs::counter("sql_plan_index_probe_join_total").get();
    let reorder_before = obs::counter("sql_plan_join_reorder_total").get();

    // The planner must be invisible in results before its speed matters.
    for sql in [like_sql, ilike_sql, join_sql] {
        let planned = db.query(sql).expect("planned run"); // xlint: allow(no-unwrap)
        let forced = db.query_with(sql, &naive).expect("naive run"); // xlint: allow(no-unwrap)
        let mut p = planned.rows;
        let mut n = forced.rows;
        p.sort();
        n.sort();
        assert_eq!(p, n, "planner changed results for `{sql}`");
    }

    // Mean µs per query under the given planner configuration.
    let time = |planner: &PlannerConfig, sql: &str, iters: usize| -> f64 {
        let t = Instant::now();
        for _ in 0..iters {
            let out = db.query_with(sql, planner).expect("bench query"); // xlint: allow(no-unwrap)
            std::hint::black_box(out.rows.len());
        }
        t.elapsed().as_secs_f64() * 1e6 / iters.max(1) as f64
    };

    let iters = cfg.iterations.clamp(1, 60);
    // The naive join is quadratic in the corpus, so it gets fewer timed
    // iterations; means stay comparable.
    let naive_iters = iters.clamp(1, 5);

    let h = obs::histogram("bench_planner_us");
    for _ in 0..iters {
        let t = Instant::now();
        let out = db.query(ilike_sql).expect("timed ilike"); // xlint: allow(no-unwrap)
        std::hint::black_box(out.rows.len());
        let out = db.query(join_sql).expect("timed join"); // xlint: allow(no-unwrap)
        std::hint::black_box(out.rows.len());
        h.record_duration(t.elapsed());
    }

    let like_planned = time(&PlannerConfig::default(), like_sql, iters);
    let like_naive = time(&naive, like_sql, iters);
    let ilike_planned = time(&PlannerConfig::default(), ilike_sql, iters);
    let ilike_naive = time(&naive, ilike_sql, iters);
    let join_planned = time(&PlannerConfig::default(), join_sql, iters);
    let join_naive = time(&naive, join_sql, naive_iters);

    // Chosen-plan counters: every default-planner run of the substring
    // queries must have gone through the trigram index, and every planned
    // join through the reordered probe join.
    let trigram_seeks = obs::counter("sql_plan_trigram_seek_total").get() - trigram_before;
    let probe_joins = obs::counter("sql_plan_index_probe_join_total").get() - probe_before;
    let join_reorders = obs::counter("sql_plan_join_reorder_total").get() - reorder_before;
    assert!(trigram_seeks >= 2 * iters as u64, "trigram path not taken");
    assert!(probe_joins >= iters as u64, "probe-join path not taken");
    assert!(join_reorders >= iters as u64, "join not reordered");

    let rows = |sql: &str| db.query(sql).expect("count").rows.len() as f64; // xlint: allow(no-unwrap)
    let mut report = BenchReport::from_histogram("planner", &h);
    report.extra.push(("like_planned_us", like_planned));
    report.extra.push(("like_naive_us", like_naive));
    report
        .extra
        .push(("like_speedup", like_naive / like_planned.max(1e-9)));
    report.extra.push(("ilike_planned_us", ilike_planned));
    report.extra.push(("ilike_naive_us", ilike_naive));
    report
        .extra
        .push(("ilike_speedup", ilike_naive / ilike_planned.max(1e-9)));
    report.extra.push(("join_planned_us", join_planned));
    report.extra.push(("join_naive_us", join_naive));
    report
        .extra
        .push(("join_speedup", join_naive / join_planned.max(1e-9)));
    report.extra.push(("trigram_seeks", trigram_seeks as f64));
    report.extra.push(("probe_joins", probe_joins as f64));
    report.extra.push(("join_reorders", join_reorders as f64));
    report
        .extra
        .push(("pages_rows", rows("SELECT id FROM pages")));
    report
        .extra
        .push(("annotations_rows", rows("SELECT page_id FROM annotations")));
    report
}

/// FNV-1a over a stream of words — the common result hash for the
/// serial-vs-parallel workloads (f64 results are hashed via `to_bits`, so
/// equality means bit-for-bit identical output).
fn fnv64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Times `work` on the one-thread pool (the serial baseline) and on the
/// global pool, asserts the results hash identically, and packages mean
/// timings, speedup, thread count and both hashes into a report. The same
/// chunked code runs in both configurations, so any hash mismatch is a
/// determinism bug, not benchmark noise.
fn bench_serial_vs_parallel(
    name: &'static str,
    iters: usize,
    mut work: impl FnMut(&Pool) -> u64,
) -> BenchReport {
    let serial_pool = Pool::new(1);
    let parallel_pool = Pool::global();
    let h = obs::histogram(match name {
        "pagerank_par" => "bench_pagerank_par_us",
        "tagsim_par" => "bench_tagsim_par_us",
        _ => "bench_indexbuild_par_us",
    });
    let mut serial_total = 0.0f64;
    let mut parallel_total = 0.0f64;
    let mut serial_hash = 0u64;
    let mut parallel_hash = 0u64;
    // Warm both pools (thread spawn, lazy registries) outside the timings.
    let _ = work(&serial_pool);
    let _ = work(parallel_pool);
    for _ in 0..iters {
        let t = Instant::now();
        serial_hash = work(&serial_pool);
        serial_total += t.elapsed().as_secs_f64() * 1e6;

        let t = Instant::now();
        parallel_hash = work(parallel_pool);
        let dt = t.elapsed();
        parallel_total += dt.as_secs_f64() * 1e6;
        h.record_duration(dt);
    }
    assert_eq!(
        serial_hash, parallel_hash,
        "{name}: parallel result diverged from serial"
    );
    let serial_mean = serial_total / iters.max(1) as f64;
    let parallel_mean = parallel_total / iters.max(1) as f64;
    let mut report = BenchReport::from_histogram(name, &h);
    report.extra.push(("serial_mean_us", serial_mean));
    report.extra.push(("parallel_mean_us", parallel_mean));
    report.extra.push((
        "speedup",
        serial_mean / parallel_mean.max(f64::MIN_POSITIVE),
    ));
    report
        .extra
        .push(("threads", parallel_pool.threads() as f64));
    report
        .extra_text
        .push(("serial_hash", format!("{serial_hash:016x}")));
    report
        .extra_text
        .push(("parallel_hash", format!("{parallel_hash:016x}")));
    report
}

/// Power-iteration PageRank on the Fig. 3 graph, serial pool vs global pool.
fn bench_pagerank_par(cfg: &BenchConfig) -> BenchReport {
    let problem = fig3_problem(1_000 * cfg.scale.max(1));
    let iters = cfg.iterations.clamp(1, 10);
    bench_serial_vs_parallel("pagerank_par", iters, |pool| {
        let r = PowerIteration.solve_in(pool, &problem, FIG3_TOL, 1_000);
        fnv64(r.x.iter().map(|v| v.to_bits()))
    })
}

/// Tag-similarity matrix over a seeded synthetic folksonomy, serial pool vs
/// global pool.
fn bench_tagsim_par(cfg: &BenchConfig) -> BenchReport {
    // Seeded LCG folksonomy: ~60·scale tags over ~40·scale pages, with
    // clustered co-occurrence so similarities are non-trivial.
    let tags = 60 * cfg.scale.max(1);
    let pages = 40 * cfg.scale.max(1);
    let mut state = cfg.seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let sets: Vec<Vec<usize>> = (0..tags)
        .map(|t| {
            let cluster = (t % 6) * pages / 6;
            let mut s: Vec<usize> = (0..(3 + next() % 12))
                .map(|_| (cluster + next() % (pages / 3)) % pages)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    bench_serial_vs_parallel("tagsim_par", cfg.iterations, |pool| {
        let m = similarity_matrix_in(pool, &sets);
        fnv64(m.as_slice().iter().map(|v| v.to_bits()))
    })
}

/// Inverted-index build over the seeded corpus, serial pool vs global pool.
fn bench_indexbuild_par(cfg: &BenchConfig) -> BenchReport {
    let docs: Vec<(String, String)> = generate_corpus(&CorpusConfig {
        institutions: cfg.scale,
        seed: cfg.seed,
        ..CorpusConfig::default()
    })
    .into_iter()
    .map(|p| {
        let mut text = p.body;
        for (_, v) in &p.annotations {
            text.push(' ');
            text.push_str(v);
        }
        (p.title, text)
    })
    .collect();
    let iters = cfg.iterations.clamp(1, 15);
    bench_serial_vs_parallel("indexbuild_par", iters, |pool| {
        SearchIndex::build_in(pool, &docs).fingerprint()
    })
}

/// Cold-vs-warm cached search through the shared result cache: the same
/// deduplicated query set runs once against freshly cleared caches (every
/// lookup computes) and then twice more (every lookup should hit). The
/// report's quantiles time the warm passes; the extras carry the hit rate
/// and both means so `BENCH_cache.json` is diffable across commits.
fn bench_cache(cfg: &BenchConfig) -> BenchReport {
    let engine = seeded_engine(cfg);
    let mut queries = query_workload(cfg.iterations.max(10), cfg.seed + 23);
    queries.sort_unstable();
    queries.dedup();
    let opts = SearchOptions::default();
    let h = obs::histogram("bench_cache_us");
    engine.clear_caches();
    let mut cold_total_us = 0.0f64;
    for q in &queries {
        let form = SearchForm::keywords(q.clone());
        let t = Instant::now();
        let _ = engine.search_shared(&form, &opts);
        cold_total_us += t.elapsed().as_secs_f64() * 1e6;
    }
    let mut hits = 0u64;
    let mut lookups = 0u64;
    let mut warm_total_us = 0.0f64;
    for _ in 0..2 {
        for q in &queries {
            let form = SearchForm::keywords(q.clone());
            let t = Instant::now();
            let status = match engine.search_shared(&form, &opts) {
                Ok((_, status)) => status,
                Err(_) => Status::Bypass,
            };
            let dt = t.elapsed();
            h.record_duration(dt);
            warm_total_us += dt.as_secs_f64() * 1e6;
            lookups += 1;
            hits += u64::from(status == Status::Hit);
        }
    }
    let cold_mean = cold_total_us / queries.len().max(1) as f64;
    let warm_mean = warm_total_us / lookups.max(1) as f64;
    let mut report = BenchReport::from_histogram("cache", &h);
    report
        .extra
        .push(("cache_hit_rate", hits as f64 / lookups.max(1) as f64));
    report.extra.push(("cold_mean_us", cold_mean));
    report.extra.push(("warm_mean_us", warm_mean));
    report
        .extra
        .push(("warm_speedup", cold_mean / warm_mean.max(f64::MIN_POSITIVE)));
    report
}

/// Mixed reader/writer serving workload: snapshot readers racing an active
/// committer on the MVCC cell, versus the same mix pushed through one
/// lock-the-world `RwLock` (the pre-MVCC server design).
///
/// Three phases share one seeded engine (and, via `clone_reader`, one set of
/// caches) and one query list:
///
/// 1. `baseline` — snapshot readers only, no writer (steady-state hits);
/// 2. `concurrency` (the main histogram) — the same readers while a writer
///    repeatedly publishes new versions, each commit bumping every epoch
///    domain exactly like a server bulkload;
/// 3. `locked` — readers hold an `RwLock` read guard across each search
///    while the writer swaps the engine under the write guard.
///
/// Each phase is time-boxed (scaled by `iterations`) rather than
/// read-counted: the cache-hit read path is tens of nanoseconds, so a fixed
/// read budget would drain before the writer task even woke up. Commits are
/// paced evenly across the phase window. Latencies are recorded in
/// **nanoseconds** (the `_ns` extras are the real signal; the `_us` report
/// fields round the hit path down to zero at small scales). The headline
/// acceptance number is `p95_ratio_vs_baseline`: reader p95 under an active
/// writer, relative to the no-writer baseline. Honours `SENSORMETA_THREADS`
/// via the global pool (raw `thread::spawn` is banned outside par/server).
fn bench_concurrency(cfg: &BenchConfig) -> BenchReport {
    use sensormeta_cache::{clock, ALL_DOMAINS};
    use sensormeta_tx::Mvcc;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, RwLock};
    use std::time::Duration;

    let engine = seeded_engine(cfg);
    let mut queries = query_workload(cfg.iterations.max(8), cfg.seed + 41);
    queries.sort_unstable();
    queries.dedup();

    let pool = Pool::global();
    let readers = pool.threads().saturating_sub(1).max(1);
    let rounds = cfg.iterations.clamp(1, 40);
    let phase_dur = Duration::from_millis((10 * rounds as u64).clamp(30, 400));
    let target_commits = ((rounds / 10).max(2)) as u32;
    let commit_every = phase_dur / (target_commits + 1);

    // The writer's private copy, the MVCC serving cell, and the
    // lock-the-world comparison cell — all `clone_reader` views of one
    // engine, so the three phases share caches and corpus.
    let primary = Mutex::new(engine.clone_reader());
    let cell = Mvcc::new(engine.clone_reader());
    let rw = RwLock::new(engine);

    // Cross-task progress counters; reset per phase. `start` is the phase
    // clock every task keys its deadline (and the writer its pacing) off.
    let done = AtomicUsize::new(0);
    let reads = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let start = Mutex::new(Instant::now());
    let phase_start = || match start.lock() {
        Ok(g) => *g,
        Err(p) => *p.into_inner(),
    };

    let mvcc_pass = |h: &obs::Histogram| {
        let begin = phase_start();
        'outer: loop {
            for q in &queries {
                if begin.elapsed() >= phase_dur {
                    break 'outer;
                }
                let form = SearchForm::keywords(q.clone());
                let t = Instant::now();
                let snap = cell.snapshot();
                let opts = SearchOptions {
                    at: Some(snap.epochs()),
                    ..SearchOptions::default()
                };
                let _ = snap.search_shared(&form, &opts);
                h.record(t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        done.fetch_add(1, Ordering::Relaxed);
    };

    let mvcc_commit = || {
        let data = match primary.lock() {
            Ok(g) => g.clone_reader(),
            Err(p) => p.into_inner().clone_reader(),
        };
        cell.begin().publish(&ALL_DOMAINS, data);
        commits.fetch_add(1, Ordering::Relaxed);
    };

    let mvcc_writer = || {
        let begin = phase_start();
        let mut next = commit_every;
        while done.load(Ordering::Relaxed) < readers {
            if begin.elapsed() >= next {
                mvcc_commit();
                next += commit_every;
            } else {
                std::thread::yield_now();
            }
        }
        // On a one-thread pool the readers drain before the writer task
        // even starts; land one commit anyway so the phase always
        // exercises the publish path.
        if commits.load(Ordering::Relaxed) == 0 {
            mvcc_commit();
        }
    };

    let locked_pass = |h: &obs::Histogram| {
        let begin = phase_start();
        'outer: loop {
            for q in &queries {
                if begin.elapsed() >= phase_dur {
                    break 'outer;
                }
                let form = SearchForm::keywords(q.clone());
                let t = Instant::now();
                let g = match rw.read() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                let _ = g.search_shared(&form, &SearchOptions::default());
                drop(g);
                h.record(t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        done.fetch_add(1, Ordering::Relaxed);
    };

    let locked_writer = || {
        let begin = phase_start();
        let mut next = commit_every;
        while done.load(Ordering::Relaxed) < readers {
            if begin.elapsed() >= next {
                let mut g = match rw.write() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                // Lock-the-world: the replacement engine is prepared while
                // every reader queues behind the write guard.
                let next_engine = g.clone_reader();
                clock().bump_all();
                *g = next_engine;
                drop(g);
                commits.fetch_add(1, Ordering::Relaxed);
                next += commit_every;
            } else {
                std::thread::yield_now();
            }
        }
    };

    let run_phase = |pass: &(dyn Fn(&obs::Histogram) + Sync),
                     writer: Option<&(dyn Fn() + Sync)>,
                     h: &obs::Histogram| {
        done.store(0, Ordering::Relaxed);
        reads.store(0, Ordering::Relaxed);
        match start.lock() {
            Ok(mut g) => *g = Instant::now(),
            Err(p) => *p.into_inner() = Instant::now(),
        }
        pool.scope(|s| {
            for _ in 0..readers {
                s.spawn(|| pass(h));
            }
            if let Some(w) = writer {
                s.spawn(w);
            }
        });
    };

    // Untimed warm-up so the baseline measures steady-state hits, not
    // cold computes (the caches are shared, so one pass warms all cells).
    {
        let snap = cell.snapshot();
        let opts = SearchOptions {
            at: Some(snap.epochs()),
            ..SearchOptions::default()
        };
        for q in &queries {
            let form = SearchForm::keywords(q.clone());
            let _ = snap.search_shared(&form, &opts);
        }
    }

    let h_base = obs::histogram("bench_concurrency_baseline_ns");
    let h_mvcc = obs::histogram("bench_concurrency_ns");
    let h_locked = obs::histogram("bench_concurrency_locked_ns");

    run_phase(&mvcc_pass, None, &h_base);
    let baseline_reads = reads.load(Ordering::Relaxed);
    run_phase(&mvcc_pass, Some(&mvcc_writer), &h_mvcc);
    let mvcc_reads = reads.load(Ordering::Relaxed);
    let mvcc_commits = commits.swap(0, Ordering::Relaxed);
    run_phase(&locked_pass, Some(&locked_writer), &h_locked);
    let locked_reads = reads.load(Ordering::Relaxed);
    let locked_commits = commits.load(Ordering::Relaxed);

    let base = h_base.snapshot();
    let mvcc = h_mvcc.snapshot();
    let locked = h_locked.snapshot();
    // The µs report fields truncate the nanosecond signal (a warm hit is
    // tens of ns); the `_ns` extras carry the real comparison.
    let mut report = BenchReport {
        name: "concurrency",
        iterations: mvcc.count,
        p50_us: mvcc.p50 / 1_000,
        p95_us: mvcc.p95 / 1_000,
        p99_us: mvcc.p99 / 1_000,
        max_us: mvcc.max / 1_000,
        mean_us: if mvcc.count == 0 {
            0.0
        } else {
            mvcc.sum as f64 / mvcc.count as f64 / 1_000.0
        },
        extra: Vec::new(),
        extra_text: Vec::new(),
    };
    let base_p95 = base.p95.max(1) as f64;
    report.extra.push(("baseline_p50_ns", base.p50 as f64));
    report.extra.push(("baseline_p95_ns", base.p95 as f64));
    report.extra.push(("writer_p50_ns", mvcc.p50 as f64));
    report.extra.push(("writer_p95_ns", mvcc.p95 as f64));
    report.extra.push(("locked_p50_ns", locked.p50 as f64));
    report.extra.push(("locked_p95_ns", locked.p95 as f64));
    report
        .extra
        .push(("p95_ratio_vs_baseline", mvcc.p95.max(1) as f64 / base_p95));
    report.extra.push((
        "locked_p95_ratio_vs_baseline",
        locked.p95.max(1) as f64 / base_p95,
    ));
    report.extra.push(("baseline_reads", baseline_reads as f64));
    report.extra.push(("mvcc_reads", mvcc_reads as f64));
    report.extra.push(("locked_reads", locked_reads as f64));
    report.extra.push(("mvcc_commits", mvcc_commits as f64));
    report.extra.push(("locked_commits", locked_commits as f64));
    report.extra.push(("readers", readers as f64));
    report.extra.push(("threads", pool.threads() as f64));
    report
}

/// Mixed read/write serving through the cluster's scatter-gather path at
/// 1 vs 4 shards, with a WAL-shipped replica tailing the writes.
///
/// Each phase performs a fixed amount of work — `iterations` scattered
/// searches with a primary commit (and shard republish) interleaved — so
/// the phases are comparable: the extras carry modeled read throughput at
/// each shard count and their ratio (`scaling_x4`). Per-read latency is
/// the scatter's *critical path* from [`ScatterTrace`]: the slowest task
/// of each scattered stage plus the serial coordinator work — the latency
/// a one-worker-per-shard cluster would see. In-process shards stand in
/// for cluster nodes, so per-task service time is the number that scales
/// with shard count; single-box wall clock flattens whenever the box has
/// fewer idle cores than shards and would make the measurement a property
/// of the host, not of the partitioning. Write cost (commit + full shard
/// republish) churns the shard set between reads but is excluded from the
/// read-latency model. `merge_identical` confirms scattered
/// results stayed byte-identical to the single store at both shard counts,
/// and the replica extras show the tail converged after the write churn.
fn bench_cluster(cfg: &BenchConfig) -> BenchReport {
    use sensormeta_cluster::{Replica, ShardSet};

    let dir = std::env::temp_dir().join(format!(
        "sensormeta_bench_cluster_{}_{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir"); // xlint: allow(no-unwrap)
    let store = dir.join("store.smr");

    // Durable primary (WAL-logged) seeded with the shared corpus, so a
    // replica can ship its log.
    let pages = generate_corpus(&CorpusConfig {
        institutions: cfg.scale,
        seed: cfg.seed,
        ..CorpusConfig::default()
    });
    let (mut primary, _) = Smr::open_durable(&store).expect("durable primary"); // xlint: allow(no-unwrap)
    let report = primary.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let replica = Replica::open("bench", &store).expect("replica open"); // xlint: allow(no-unwrap)

    // Pair up workload queries (2–6 terms each): scattered reads need
    // enough per-read work for the partitioned stages to dominate the
    // serial coordinator tail, mirroring the multi-term forms the search
    // UI produces.
    let singles = query_workload(2 * cfg.iterations.max(4), cfg.seed + 43);
    let queries: Vec<String> = singles.chunks(2).map(|pair| pair.join(" ")).collect();
    let probe = SearchForm::keywords(queries[0].clone());
    let reads_per_phase = cfg.iterations.max(4);
    // At least two commits per phase, at most one write per 8 reads.
    let write_every = (reads_per_phase / 8).clamp(2, 16);
    let h = obs::histogram("bench_cluster_us");
    let mut merge_identical = true;
    let mut throughput = [0.0f64; 2];
    let mut read_secs = [0.0f64; 2];
    let mut writes_total = 0u64;

    for (phase, shards) in [1usize, 4].into_iter().enumerate() {
        let mut engine = QueryEngine::open(primary.clone_reader()).expect("engine build"); // xlint: allow(no-unwrap)
        let set = ShardSet::build(&engine, shards).expect("shard set"); // xlint: allow(no-unwrap)
        let _ = set.search(&probe, None); // warm-up: fault in lazy state untimed
        for (i, q) in queries.iter().cycle().take(reads_per_phase).enumerate() {
            let form = SearchForm::keywords(q.clone());
            let modeled_us = match set.search_traced(&form, None) {
                Ok((_, trace)) => trace.critical_path_us(),
                Err(_) => 0,
            };
            read_secs[phase] += modeled_us as f64 / 1e6;
            if shards == 4 {
                h.record(modeled_us);
            }
            if (i + 1) % write_every == 0 {
                // The write path: commit to the durable primary, rebuild
                // derived structures, re-partition the shard set.
                let draft = PageDraft::new(format!("Deployment:bench_s{shards}_{i}"), "Deployment")
                    .body(format!("cluster bench write {i} at {shards} shards"));
                primary.create_page(draft).expect("bench write"); // xlint: allow(no-unwrap)
                engine = QueryEngine::open(primary.clone_reader()).expect("engine rebuild"); // xlint: allow(no-unwrap)
                set.republish(&engine).expect("republish"); // xlint: allow(no-unwrap)
                writes_total += 1;
            }
        }
        throughput[phase] = reads_per_phase as f64 / read_secs[phase].max(1e-9);

        let single = engine.search_uncached(&probe, None);
        let scattered = set.search(&probe, None);
        let eq = match (&single, &scattered) {
            (Ok(a), Ok(b)) => serde_json::to_string(a).ok() == serde_json::to_string(b).ok(),
            _ => false,
        };
        merge_identical &= eq;
    }

    // Drain the replica: it tails everything both phases committed. Lag is
    // bounded if a handful of polls reaches the primary's log end and the
    // stores converge.
    let mut drain_polls = 0u64;
    let mut idle = 0;
    while idle < 2 && drain_polls < 1000 {
        match replica.poll_once() {
            Ok(p) if p.applied == 0 && !p.resynced && p.stalled.is_none() => idle += 1,
            Ok(_) => idle = 0,
            Err(_) => break,
        }
        drain_polls += 1;
    }
    let converged = replica.logical_dump() == primary.database().logical_dump();

    let mut report = BenchReport::from_histogram("cluster", &h);
    report.extra.push(("reads_per_sec_1shard", throughput[0]));
    report.extra.push(("reads_per_sec_4shard", throughput[1]));
    report
        .extra
        .push(("scaling_x4", throughput[1] / throughput[0].max(1e-9)));
    report.extra.push(("writes_total", writes_total as f64));
    report
        .extra
        .push(("merge_identical", if merge_identical { 1.0 } else { 0.0 }));
    report
        .extra
        .push(("replica_drain_polls", drain_polls as f64));
    report
        .extra
        .push(("replica_converged", if converged { 1.0 } else { 0.0 }));
    report
        .extra
        .push(("replica_applied_seq", replica.applied_seq() as f64));
    report
        .extra
        .push(("threads", Pool::global().threads() as f64));

    drop(replica);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_serializes() {
        let cfg = BenchConfig {
            scale: 1,
            iterations: 3,
            seed: 42,
        };
        let reports = run_suite(&cfg);
        assert_eq!(reports.len(), 13);
        for r in &reports {
            assert!(r.iterations > 0, "{} ran", r.name);
            let json = r.to_json();
            let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed["name"], r.name);
            assert_eq!(parsed["p50_us"], r.p50_us as i64);
        }
        assert!(obs::global().is_enabled(), "overhead bench re-enables obs");
        // The serial-vs-parallel workloads carry both timings, the thread
        // count and matching result hashes.
        for name in ["pagerank_par", "tagsim_par", "indexbuild_par"] {
            let r = reports.iter().find(|r| r.name == name).unwrap();
            let keys: Vec<&str> = r.extra.iter().map(|(k, _)| *k).collect();
            assert!(keys.contains(&"serial_mean_us"), "{name}: {keys:?}");
            assert!(keys.contains(&"parallel_mean_us"), "{name}");
            assert!(keys.contains(&"speedup"), "{name}");
            assert!(keys.contains(&"threads"), "{name}");
            let serial = r.extra_text.iter().find(|(k, _)| *k == "serial_hash");
            let parallel = r.extra_text.iter().find(|(k, _)| *k == "parallel_hash");
            assert_eq!(serial.map(|(_, v)| v), parallel.map(|(_, v)| v), "{name}");
        }
        // The cache workload reports its hit rate and cold/warm means.
        let cache = reports.iter().find(|r| r.name == "cache").unwrap();
        let extras: std::collections::BTreeMap<&str, f64> = cache.extra.iter().copied().collect();
        for key in [
            "cache_hit_rate",
            "cold_mean_us",
            "warm_mean_us",
            "warm_speedup",
        ] {
            assert!(extras.contains_key(key), "cache: missing {key}");
        }
        assert!(
            extras["cache_hit_rate"] > 0.99,
            "warm passes over an unchanged corpus must hit: {}",
            extras["cache_hit_rate"]
        );
        // The planner workload carries both timings per shape, the chosen-
        // plan counter deltas, and the indexed paths must actually win.
        let planner = reports.iter().find(|r| r.name == "planner").unwrap();
        let extras: std::collections::BTreeMap<&str, f64> = planner.extra.iter().copied().collect();
        for key in [
            "like_planned_us",
            "like_naive_us",
            "like_speedup",
            "ilike_planned_us",
            "ilike_naive_us",
            "ilike_speedup",
            "join_planned_us",
            "join_naive_us",
            "join_speedup",
            "trigram_seeks",
            "probe_joins",
            "join_reorders",
            "pages_rows",
            "annotations_rows",
        ] {
            assert!(extras.contains_key(key), "planner: missing {key}");
        }
        assert!(extras["trigram_seeks"] >= 1.0, "trigram path never chosen");
        assert!(extras["probe_joins"] >= 1.0, "probe join never chosen");
        assert!(extras["join_reorders"] >= 1.0, "join never reordered");
        assert!(
            extras["ilike_speedup"] > 1.0,
            "trigram seek must beat the full scan: {}",
            extras["ilike_speedup"]
        );
        assert!(
            extras["join_speedup"] > 1.0,
            "planned join order must beat naive: {}",
            extras["join_speedup"]
        );
        // The concurrency workload compares snapshot readers against the
        // no-writer baseline and the lock-the-world variant, and always
        // lands at least one MVCC commit.
        let conc = reports.iter().find(|r| r.name == "concurrency").unwrap();
        let extras: std::collections::BTreeMap<&str, f64> = conc.extra.iter().copied().collect();
        for key in [
            "baseline_p95_ns",
            "writer_p95_ns",
            "locked_p95_ns",
            "p95_ratio_vs_baseline",
            "locked_p95_ratio_vs_baseline",
            "mvcc_commits",
            "locked_commits",
            "readers",
            "threads",
        ] {
            assert!(extras.contains_key(key), "concurrency: missing {key}");
        }
        assert!(extras["mvcc_commits"] >= 1.0, "writer must publish");
        assert!(extras["baseline_p95_ns"] > 0.0, "phases must record reads");
        assert!(extras["readers"] >= 1.0);
        // The cluster workload runs mixed read/write at 1 vs 4 shards with
        // a tailing replica; identity and convergence must hold at any
        // scale (the ≥1.5× scaling gate only applies at CI scale).
        let cluster = reports.iter().find(|r| r.name == "cluster").unwrap();
        let extras: std::collections::BTreeMap<&str, f64> = cluster.extra.iter().copied().collect();
        for key in [
            "reads_per_sec_1shard",
            "reads_per_sec_4shard",
            "scaling_x4",
            "writes_total",
            "merge_identical",
            "replica_drain_polls",
            "replica_converged",
            "replica_applied_seq",
            "threads",
        ] {
            assert!(extras.contains_key(key), "cluster: missing {key}");
        }
        assert_eq!(extras["merge_identical"], 1.0, "scatter diverged");
        assert_eq!(extras["replica_converged"], 1.0, "replica diverged");
        assert!(extras["writes_total"] >= 1.0, "no writes in mixed phase");
    }
}
