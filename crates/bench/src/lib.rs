//! Shared helpers for the benchmark harness, plus the seeded end-to-end
//! suite behind `sensormeta bench` (see [`suite`]).

pub mod suite;

pub use suite::{run_suite, BenchConfig, BenchReport};

use sensormeta_rank::{PageRankProblem, TransitionMatrix};
use sensormeta_workload::barabasi_albert;

/// The standard Fig. 3 PageRank instance at a given size.
pub fn fig3_problem(n: usize) -> PageRankProblem {
    let g = barabasi_albert(n, 3, 0.15, 2011);
    PageRankProblem::new(TransitionMatrix::from_graph(&g))
}

/// Tolerance used throughout the Fig. 3 reproduction.
pub const FIG3_TOL: f64 = 1e-9;
