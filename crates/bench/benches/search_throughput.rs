//! Search substrate micro-benchmarks: indexing throughput and query latency
//! at corpus scale (supporting numbers for the demo's interactivity claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensormeta_search::SearchIndex;
use sensormeta_workload::{generate_corpus, query_workload, CorpusConfig};

fn corpus_docs(scale: usize) -> Vec<(String, String)> {
    generate_corpus(&CorpusConfig {
        institutions: scale,
        ..CorpusConfig::default()
    })
    .into_iter()
    .map(|p| (p.title, p.body))
    .collect()
}

fn bench_search(c: &mut Criterion) {
    let docs = corpus_docs(10);
    let mut group = c.benchmark_group("search_substrate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("index_build", docs.len()),
        &docs,
        |b, docs| {
            b.iter(|| {
                let mut ix = SearchIndex::new();
                for (k, t) in docs {
                    ix.add_document(k, t);
                }
                ix.doc_count()
            })
        },
    );
    let mut ix = SearchIndex::new();
    for (k, t) in &docs {
        ix.add_document(k, t);
    }
    let queries = query_workload(100, 99);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("bm25_queries", queries.len()),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut total = 0usize;
                for q in qs {
                    total += ix.search(q, 10).len();
                }
                total
            })
        },
    );
    group.bench_function("phrase_query", |b| {
        b.iter(|| ix.phrase("temperature sensor", 10).len())
    });
    group.bench_function("prefix_query", |b| {
        b.iter(|| ix.prefix_search("temp", 10).len())
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
