//! E13 — SOR ω sweep: how close is the paper's plain Gauss–Seidel (ω = 1)
//! to the optimal relaxation factor for PageRank systems?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensormeta_bench::{fig3_problem, FIG3_TOL};
use sensormeta_rank::{Solver, Sor};

fn print_omega_sweep() {
    println!("\n=== E13: SOR relaxation sweep (n=10k, tol 1e-9) ===");
    println!("{:<8} {:>12} {:>11}", "omega", "iterations", "converged");
    let p = fig3_problem(10_000);
    for omega in [0.6, 0.8, 0.9, 1.0, 1.05, 1.1, 1.2, 1.4, 1.8] {
        let r = Sor { omega }.solve(&p, FIG3_TOL, 2_000);
        println!("{omega:<8} {:>12} {:>11}", r.iterations, r.converged);
    }
    println!();
}

fn bench_sor(c: &mut Criterion) {
    print_omega_sweep();
    let p = fig3_problem(10_000);
    let mut group = c.benchmark_group("sor_omega");
    group.sample_size(10);
    for omega in [0.8, 1.0, 1.1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{omega}")),
            &p,
            |b, problem| {
                b.iter(|| {
                    let r = Sor { omega }.solve(problem, FIG3_TOL, 2_000);
                    assert!(r.converged);
                    r.iterations
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sor);
criterion_main!(benches);
