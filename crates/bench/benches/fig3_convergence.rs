//! E1 — Fig. 3(a): convergence evaluation of the PageRank solvers.
//!
//! Prints the iterations/matvecs-to-tolerance table per solver and graph
//! size (the paper's "Convergence Evaluation" series), then benchmarks one
//! full solve per method at n = 10k so regressions in convergence show up
//! as time regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensormeta_bench::{fig3_problem, FIG3_TOL};
use sensormeta_rank::all_solvers;

fn print_convergence_table() {
    println!("\n=== Fig 3(a): iterations to residual < {FIG3_TOL:.0e} ===");
    let sizes = [1_000usize, 5_000, 10_000, 50_000];
    print!("{:<14}", "method");
    for s in sizes {
        print!(" {:>8}", format!("n={s}"));
    }
    println!("   (matvecs in parentheses)");
    for solver in all_solvers() {
        print!("{:<14}", solver.name());
        for &n in &sizes {
            let p = fig3_problem(n);
            let r = solver.solve(&p, FIG3_TOL, 10_000);
            assert!(r.converged, "{} at n={n}", solver.name());
            print!(" {:>8}", format!("{}({})", r.iterations, r.matvecs));
        }
        println!();
    }
    println!();
}

fn bench_convergence(c: &mut Criterion) {
    print_convergence_table();
    let p = fig3_problem(10_000);
    let mut group = c.benchmark_group("fig3a_solve_to_tol_n10k");
    group.sample_size(10);
    for solver in all_solvers() {
        group.bench_with_input(
            BenchmarkId::from_parameter(solver.name()),
            &p,
            |b, problem| {
                b.iter(|| {
                    let r = solver.solve(problem, FIG3_TOL, 10_000);
                    assert!(r.converged);
                    r.iterations
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
