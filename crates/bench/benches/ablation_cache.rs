//! E9 — the Fig. 4 Cache module: cached tag-cloud lookups vs recomputation,
//! and the cost of invalidation under a mutating workload.

use criterion::{criterion_group, criterion_main, Criterion};
use sensormeta_tagging::{compute_cloud, CloudCache, CloudParams, TagStore};
use sensormeta_workload::{generate_corpus, CorpusConfig};

fn corpus_tags() -> TagStore {
    let pages = generate_corpus(&CorpusConfig::default());
    let mut store = TagStore::new();
    for p in &pages {
        for t in &p.tags {
            store.add(&p.title, t);
        }
    }
    store
}

fn print_hit_rates() {
    // A render-heavy workload: 1 mutation per 20 renders.
    let mut store = corpus_tags();
    let cache = CloudCache::new();
    let params = CloudParams::default();
    for i in 0..200 {
        if i % 20 == 0 {
            store.add(&format!("extra{i}"), "freshtag");
        }
        let _ = cache.get(&store, &params);
    }
    let stats = cache.stats();
    println!("\n=== E9: cloud cache under 10:1 read:write ===");
    println!(
        "hits: {}  misses: {}  evictions: {}  hit rate: {:.1}%",
        stats.hits,
        stats.misses,
        stats.evicted,
        100.0 * stats.hits as f64 / (stats.hits + stats.misses) as f64
    );
    println!();
}

fn bench_cache(c: &mut Criterion) {
    print_hit_rates();
    let store = corpus_tags();
    let params = CloudParams::default();
    c.bench_function("cloud_uncached_compute", |b| {
        b.iter(|| compute_cloud(&store, &params).entries.len())
    });
    c.bench_function("cloud_cached_lookup", |b| {
        let cache = CloudCache::new();
        let _ = cache.get(&store, &params); // warm
        b.iter(|| cache.get(&store, &params).entries.len())
    });
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
