//! E12 — search quality & latency: BM25-only vs PageRank-blended ranking on
//! a synthetic relevance task, plus end-to-end query latency over the
//! corpus.
//!
//! Relevance protocol: for each query term, the "relevant" pages are those
//! whose *annotations* carry the term (ground truth the ranker doesn't see
//! directly since annotations are mixed into a larger text soup); we report
//! precision@5 under both rankings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensormeta_query::Acl;
use sensormeta_query::{QueryEngine, RankBlend, SearchForm};
use sensormeta_smr::{PageDraft, Smr};
use sensormeta_workload::{generate_corpus, query_workload, CorpusConfig};
use std::collections::HashSet;

fn build_smr() -> Smr {
    let pages = generate_corpus(&CorpusConfig {
        institutions: 8,
        ..CorpusConfig::default()
    });
    let mut smr = Smr::new();
    smr.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    smr
}

fn engine_with_weight(w: f64) -> QueryEngine {
    QueryEngine::build(
        build_smr(),
        Acl::open(),
        RankBlend {
            pagerank_weight: w,
            ..RankBlend::default()
        },
    )
    .expect("engine")
}

fn precision_at_5(engine: &QueryEngine, queries: &[String]) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for q in queries {
        let term = q.split_whitespace().next().expect("non-empty query");
        // Ground truth: pages annotated with the term.
        let rs = engine
            .smr()
            .sql(&format!(
                "SELECT p.title FROM annotations a JOIN pages p ON a.page_id = p.id \
                 WHERE a.value = '{}'",
                sensormeta_smr::sql_escape(term)
            ))
            .expect("sql");
        let relevant: HashSet<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        if relevant.is_empty() {
            continue;
        }
        let out = engine
            .search(&SearchForm::keywords(term), None)
            .expect("search");
        let hits = out
            .items
            .iter()
            .take(5)
            .filter(|i| relevant.contains(&i.title))
            .count();
        total += hits as f64 / 5.0;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

fn print_precision_table(queries: &[String]) {
    println!("\n=== E12: ranking quality (precision@5, annotation ground truth) ===");
    println!("{:<22} {:>12}", "ranking", "precision@5");
    for (label, w) in [
        ("bm25_only", 0.0),
        ("blended_w0.3", 0.3),
        ("pagerank_heavy_w0.7", 0.7),
    ] {
        let engine = engine_with_weight(w);
        let p = precision_at_5(&engine, queries);
        println!("{label:<22} {p:>12.3}");
    }
    println!();
}

fn bench_ranking(c: &mut Criterion) {
    let queries = query_workload(40, 7);
    print_precision_table(&queries);
    let engine = engine_with_weight(0.3);
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(20);
    for (label, q) in [
        ("single_term", "temperature"),
        ("multi_term", "snow wind radiation"),
        ("rare_term", "Jungfraujoch"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &engine, |b, e| {
            b.iter(|| {
                e.search(&SearchForm::keywords(q), None)
                    .expect("search")
                    .total_matched
            })
        });
    }
    group.bench_with_input(
        BenchmarkId::from_parameter("autocomplete"),
        &engine,
        |b, e| b.iter(|| e.autocomplete("Dep", 10).len()),
    );
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
