//! E11 — Bron–Kerbosch variants: naive vs pivot vs degeneracy, across tag-
//! graph densities. The paper's implementation was "extended to optimize
//! candidate tag selection and minimize recursion steps"; this quantifies
//! what that optimization buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensormeta_graph::UndirectedGraph;
use sensormeta_tagging::{maximal_cliques, BkVariant};

fn random_graph(n: usize, density_pct: u32, seed: u64) -> UndirectedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_range(0..100) < density_pct {
                edges.push((u, v));
            }
        }
    }
    UndirectedGraph::from_edges(n, &edges)
}

fn print_recursion_table() {
    println!("\n=== E11: Bron–Kerbosch recursion steps (n=60) ===");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>9}",
        "density", "naive", "pivot", "degeneracy", "cliques"
    );
    for density in [10u32, 30, 50, 70] {
        let g = random_graph(60, density, 7);
        let (_, naive) = maximal_cliques(&g, BkVariant::Naive);
        let (_, pivot) = maximal_cliques(&g, BkVariant::Pivot);
        let (cl, degen) = maximal_cliques(&g, BkVariant::Degeneracy);
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>9}",
            format!("{density}%"),
            naive.calls,
            pivot.calls,
            degen.calls,
            cl.len()
        );
    }
    println!();
}

fn bench_clique(c: &mut Criterion) {
    print_recursion_table();
    let mut group = c.benchmark_group("bron_kerbosch");
    group.sample_size(10);
    for density in [30u32, 60] {
        let g = random_graph(80, density, 11);
        for variant in [BkVariant::Naive, BkVariant::Pivot, BkVariant::Degeneracy] {
            group.bench_with_input(
                BenchmarkId::new(format!("{variant:?}"), format!("d{density}")),
                &g,
                |b, g| b.iter(|| maximal_cliques(g, variant).1.cliques),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
