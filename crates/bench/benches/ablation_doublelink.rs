//! E10 — double-link vs single-link PageRank: how much the paper's combined
//! ranking reorders pages relative to hyperlink-only ranking when semantic
//! coverage is partial, plus the solve-cost overhead of the blended matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensormeta_rank::{GaussSeidel, PageRankProblem, Solver, TransitionMatrix};
use sensormeta_workload::double_link_pair;

/// Mean absolute rank displacement between two orderings of the same pages.
fn rank_displacement(a: &[f64], b: &[f64]) -> f64 {
    let order = |x: &[f64]| -> Vec<usize> {
        let mut ix: Vec<usize> = (0..x.len()).collect();
        ix.sort_by(|&i, &j| x[j].partial_cmp(&x[i]).unwrap_or(std::cmp::Ordering::Equal));
        let mut rank = vec![0usize; x.len()];
        for (pos, &i) in ix.iter().enumerate() {
            rank[i] = pos;
        }
        rank
    };
    let (ra, rb) = (order(a), order(b));
    ra.iter()
        .zip(&rb)
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .sum::<f64>()
        / a.len() as f64
}

fn print_displacement_table() {
    println!("\n=== E10: double-link vs hyperlink-only ranking (n=5000) ===");
    println!(
        "{:<22} {:>18} {:>14}",
        "semantic coverage", "mean displacement", "(of n ranks)"
    );
    for coverage in [0.1f64, 0.3, 0.5, 0.9] {
        let (sem, hyp) = double_link_pair(5_000, 3, coverage, 42);
        let double = PageRankProblem::new(TransitionMatrix::double_link(&sem, &hyp, 0.5));
        let single = PageRankProblem::new(TransitionMatrix::from_graph(&hyp));
        let rd = GaussSeidel.solve(&double, 1e-10, 5_000);
        let rs = GaussSeidel.solve(&single, 1e-10, 5_000);
        let disp = rank_displacement(&rd.x, &rs.x);
        println!(
            "{:<22} {:>18.1} {:>14}",
            format!("{:.0}%", coverage * 100.0),
            disp,
            5_000
        );
    }
    println!();
}

fn print_alpha_sweep() {
    println!("=== E10b: semantic weight (alpha) sweep, 50% coverage (n=5000) ===");
    println!("{:<8} {:>26}", "alpha", "displacement vs hyperlink");
    let (sem, hyp) = double_link_pair(5_000, 3, 0.5, 42);
    let single = PageRankProblem::new(TransitionMatrix::from_graph(&hyp));
    let base = GaussSeidel.solve(&single, 1e-10, 5_000);
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let p = PageRankProblem::new(TransitionMatrix::double_link(&sem, &hyp, alpha));
        let r = GaussSeidel.solve(&p, 1e-10, 5_000);
        println!("{alpha:<8} {:>26.1}", rank_displacement(&r.x, &base.x));
    }
    println!();
}

fn bench_doublelink(c: &mut Criterion) {
    print_displacement_table();
    print_alpha_sweep();
    let (sem, hyp) = double_link_pair(10_000, 3, 0.5, 42);
    let mut group = c.benchmark_group("pagerank_link_structure");
    group.sample_size(10);
    let double = PageRankProblem::new(TransitionMatrix::double_link(&sem, &hyp, 0.5));
    let single = PageRankProblem::new(TransitionMatrix::from_graph(&hyp));
    for (label, p) in [("double_link", &double), ("hyperlink_only", &single)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), p, |b, p| {
            b.iter(|| GaussSeidel.solve(p, 1e-9, 5_000).iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_doublelink);
criterion_main!(benches);
