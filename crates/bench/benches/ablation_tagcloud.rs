//! E8 — clique-aware (Eq. 6) vs frequency-only tag clouds: computes the
//! font-size rank correlation between the two (how much the clique term
//! reorders the cloud) and benchmarks the full pipeline at corpus scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensormeta_tagging::{compute_cloud, CloudParams, TagStore};
use sensormeta_workload::{generate_corpus, CorpusConfig};

fn corpus_tags(scale: usize) -> TagStore {
    let cfg = CorpusConfig {
        institutions: scale,
        ..CorpusConfig::default()
    };
    let pages = generate_corpus(&cfg);
    let mut store = TagStore::new();
    for p in &pages {
        for t in &p.tags {
            store.add(&p.title, t);
        }
    }
    store
}

/// Spearman rank correlation between the two size assignments.
fn spearman(a: &[usize], b: &[usize]) -> f64 {
    let rank = |v: &[usize]| -> Vec<f64> {
        let mut ix: Vec<usize> = (0..v.len()).collect();
        ix.sort_by_key(|&i| v[i]);
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in ix.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = ra.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = rb.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

fn print_comparison() {
    let store = corpus_tags(8);
    let aware = compute_cloud(&store, &CloudParams::default());
    let flat = compute_cloud(
        &store,
        &CloudParams {
            clique_aware: false,
            ..CloudParams::default()
        },
    );
    let sizes_a: Vec<usize> = aware.entries.iter().map(|e| e.font_size).collect();
    let sizes_f: Vec<usize> = flat.entries.iter().map(|e| e.font_size).collect();
    let rho = spearman(&sizes_a, &sizes_f);
    let promoted = aware
        .entries
        .iter()
        .zip(&flat.entries)
        .filter(|(a, f)| a.font_size > f.font_size)
        .count();
    println!("\n=== E8: clique-aware vs frequency-only clouds ===");
    println!(
        "tags: {}  cliques: {}",
        aware.entries.len(),
        aware.cliques.len()
    );
    println!("Spearman rank correlation of font sizes: {rho:.3}");
    println!(
        "tags promoted by the clique term: {promoted}/{}",
        aware.entries.len()
    );
    println!();
}

fn bench_cloud(c: &mut Criterion) {
    print_comparison();
    let mut group = c.benchmark_group("tag_cloud_pipeline");
    group.sample_size(10);
    for scale in [4usize, 8] {
        let store = corpus_tags(scale);
        for (label, params) in [
            ("clique_aware", CloudParams::default()),
            (
                "frequency_only",
                CloudParams {
                    clique_aware: false,
                    ..CloudParams::default()
                },
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("inst{scale}")),
                &store,
                |b, s| b.iter(|| compute_cloud(s, &params).entries.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cloud);
criterion_main!(benches);
