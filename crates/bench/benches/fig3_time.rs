//! E2 — Fig. 3(b): time evaluation of the PageRank solvers across graph
//! sizes. Criterion measures wall-clock per full solve; the series across
//! the size parameter reproduces the paper's "Time Evaluation" curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensormeta_bench::{fig3_problem, FIG3_TOL};
use sensormeta_rank::all_solvers;

fn bench_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b_time");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let p = fig3_problem(n);
        group.throughput(Throughput::Elements(n as u64));
        for solver in all_solvers() {
            group.bench_with_input(BenchmarkId::new(solver.name(), n), &p, |b, problem| {
                b.iter(|| {
                    let r = solver.solve(problem, FIG3_TOL, 10_000);
                    assert!(r.converged);
                    r.x[0]
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_time);
criterion_main!(benches);
