//! # sensormeta-graph
//!
//! Shared graph toolkit: CSR directed graphs for the ranking kernels,
//! label↔id mapping for metadata page graphs, set-adjacency undirected
//! graphs for tag-similarity structures, and common algorithms (Tarjan SCC,
//! degree statistics, degeneracy ordering).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
pub mod csr;
pub mod labeled;
pub mod undirected;

pub use algo::{degree_histogram, powerlaw_exponent, tarjan_scc};
pub use csr::CsrGraph;
pub use labeled::LabeledGraph;
pub use undirected::UndirectedGraph;
