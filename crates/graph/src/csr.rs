//! Compressed sparse row (CSR) directed graphs.
//!
//! The PageRank solvers do repeated sparse matrix–vector products over the
//! link structure; CSR keeps neighbor lists contiguous so those products are
//! cache-friendly. Nodes are dense `usize` ids; label mapping lives in
//! [`crate::labeled::LabeledGraph`].

/// An immutable directed graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// Row offsets: `offsets[v]..offsets[v+1]` indexes `targets`.
    offsets: Vec<usize>,
    /// Concatenated out-neighbor lists.
    targets: Vec<usize>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list. Duplicate edges are kept unless
    /// `dedup` is set; self-loops are allowed (PageRank treats them as real
    /// links).
    pub fn from_edges(n: usize, edges: &[(usize, usize)], dedup: bool) -> CsrGraph {
        let mut deg = vec![0usize; n];
        for (u, v) in edges {
            assert!(*u < n && *v < n, "edge ({u},{v}) out of range for n={n}");
            deg[*u] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut total = 0;
        for d in &deg {
            total += d;
            offsets.push(total);
        }
        let mut targets = vec![0usize; edges.len()];
        let mut cursor = offsets.clone();
        for (u, v) in edges {
            targets[cursor[*u]] = *v;
            cursor[*u] += 1;
        }
        let mut g = CsrGraph { offsets, targets };
        if dedup {
            g = g.deduped();
        }
        debug_assert_eq!(
            g.offsets.last().copied(),
            Some(g.targets.len()),
            "CSR construction left targets uncovered"
        );
        g
    }

    fn deduped(&self) -> CsrGraph {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0);
        for v in 0..n {
            let mut nbrs: Vec<usize> = self.neighbors(v).to_vec();
            nbrs.sort_unstable();
            nbrs.dedup();
            targets.extend_from_slice(&nbrs);
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (with multiplicity).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Nodes with no out-links — the paper's "dangling nodes".
    pub fn dangling_nodes(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// The transposed graph (every edge reversed). PageRank iterates over
    /// in-links, i.e. the transpose of the link graph.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.node_count();
        let edges: Vec<(usize, usize)> = self.iter_edges().map(|(u, v)| (v, u)).collect();
        CsrGraph::from_edges(n, &edges, false)
    }

    /// Iterates all edges `(u, v)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count()).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// In-degrees of all nodes in one pass.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.node_count()];
        for &v in &self.targets {
            deg[v] += 1;
        }
        deg
    }

    /// Deep structural check (fsck): well-formed row offsets and in-range
    /// targets, plus a transpose round-trip — transposing twice must give
    /// back exactly this edge multiset. Returns every violated invariant.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.offsets.is_empty() {
            problems.push("offsets array is empty (must hold at least [0])".into());
            return Err(problems);
        }
        if self.offsets[0] != 0 {
            problems.push(format!("offsets[0] is {}, not 0", self.offsets[0]));
        }
        for (v, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                problems.push(format!(
                    "offsets not monotone at node {v}: {} > {}",
                    w[0], w[1]
                ));
            }
        }
        let last = *self.offsets.last().unwrap_or(&0);
        if last != self.targets.len() {
            problems.push(format!(
                "final offset {last} does not cover the {} targets",
                self.targets.len()
            ));
        }
        let n = self.node_count();
        for (ix, &t) in self.targets.iter().enumerate() {
            if t >= n {
                problems.push(format!("targets[{ix}] = {t} out of range for {n} nodes"));
            }
        }
        // Only meaningful on a structurally sound graph.
        if problems.is_empty() {
            let round_trip = self.transpose().transpose();
            let mut ours: Vec<(usize, usize)> = self.iter_edges().collect();
            let mut theirs: Vec<(usize, usize)> = round_trip.iter_edges().collect();
            ours.sort_unstable();
            theirs.sort_unstable();
            if ours != theirs {
                problems.push("transpose round-trip changed the edge multiset".into());
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], false)
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.dangling_nodes(), vec![3]);
    }

    #[test]
    fn transpose_reverses() {
        let g = diamond().transpose();
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.dangling_nodes(), vec![0]);
    }

    #[test]
    fn in_degrees_match_transpose_out_degrees() {
        let g = diamond();
        let t = g.transpose();
        let ind = g.in_degrees();
        for (v, d) in ind.iter().enumerate() {
            assert_eq!(*d, t.out_degree(v));
        }
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)], true);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn empty_and_single_node() {
        let g = CsrGraph::from_edges(0, &[], false);
        assert_eq!(g.node_count(), 0);
        let g = CsrGraph::from_edges(1, &[(0, 0)], false);
        assert_eq!(g.neighbors(0), &[0]);
        assert!(g.dangling_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 5)], false);
    }

    #[test]
    fn fsck_detects_corruption() {
        assert_eq!(diamond().check_invariants(), Ok(()));
        assert_eq!(
            CsrGraph::from_edges(0, &[], false).check_invariants(),
            Ok(())
        );

        // Non-monotone offsets.
        let broken = CsrGraph {
            offsets: vec![0, 3, 1, 4],
            targets: vec![1, 2, 0, 1],
        };
        let problems = broken.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("not monotone")),
            "{problems:?}"
        );

        // Target pointing past the node count.
        let wild = CsrGraph {
            offsets: vec![0, 1, 1],
            targets: vec![9],
        };
        let problems = wild.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("out of range")),
            "{problems:?}"
        );

        // Final offset not covering the target array.
        let short = CsrGraph {
            offsets: vec![0, 1],
            targets: vec![0, 0, 0],
        };
        assert!(short.check_invariants().is_err());
    }
}
