//! Graph algorithms shared across the stack: strongly-connected components
//! (Tarjan, iterative) and degree statistics.

use crate::csr::CsrGraph;

/// Computes strongly-connected components with an iterative Tarjan.
/// Returns `(component_of, component_count)`; components are numbered in
/// reverse topological order of the condensation.
pub fn tarjan_scc(g: &CsrGraph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_count = 0usize;

    // Explicit DFS frames: (node, neighbor cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let nbrs = g.neighbors(v);
            if *cursor < nbrs.len() {
                let w = nbrs[*cursor];
                *cursor += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v was pushed when first visited, so the stack holds at
                    // least v itself; popping stops there.
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count)
}

/// A histogram of out-degrees: `hist[d]` = number of nodes with out-degree d.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let maxd = (0..g.node_count())
        .map(|v| g.out_degree(v))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; maxd + 1];
    for v in 0..g.node_count() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

/// Fits the tail exponent of a degree distribution by log-log linear
/// regression over degrees ≥ `min_degree`. Used by tests to check that the
/// synthetic web graphs are power-law-ish, like the real web graph the
/// paper's ranking runs on.
pub fn powerlaw_exponent(g: &CsrGraph, min_degree: usize) -> Option<f64> {
    let hist = {
        // In-degree follows the power law in Barabási–Albert graphs.
        let ind = g.in_degrees();
        let maxd = ind.iter().copied().max().unwrap_or(0);
        let mut h = vec![0usize; maxd + 1];
        for d in ind {
            h[d] += 1;
        }
        h
    };
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(min_degree.max(1))
        .filter(|(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some(-(n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_on_two_cycles() {
        // 0→1→2→0 (one SCC), 3→4, 4→3 (another), 5 isolated.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)], false);
        let (comp, count) = tarjan_scc(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
    }

    #[test]
    fn scc_dag_is_all_singletons() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let (_, count) = tarjan_scc(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn scc_reverse_topological_numbering() {
        // 0 → 1: sink (1) gets the smaller component id.
        let g = CsrGraph::from_edges(2, &[(0, 1)], false);
        let (comp, _) = tarjan_scc(&g);
        assert!(comp[1] < comp[0]);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2)], false);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[2], 1); // node 0
        assert_eq!(h[0], 3); // nodes 2, 3, 4
    }
}
