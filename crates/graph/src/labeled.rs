//! Label ↔ dense-id mapping over growable edge sets.
//!
//! Metadata pages are identified by title; the numeric kernels want dense
//! ids. `LabeledGraph` accumulates labeled edges and freezes into a
//! [`CsrGraph`] plus the id map.

use crate::csr::CsrGraph;
use std::collections::HashMap;

/// A growable directed graph over string-labeled nodes.
#[derive(Debug, Default, Clone)]
pub struct LabeledGraph {
    ids: HashMap<String, usize>,
    labels: Vec<String>,
    edges: Vec<(usize, usize)>,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> LabeledGraph {
        LabeledGraph::default()
    }

    /// Interns a label, returning its dense id.
    pub fn node(&mut self, label: &str) -> usize {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = self.labels.len();
        self.labels.push(label.to_owned());
        self.ids.insert(label.to_owned(), id);
        id
    }

    /// Adds a directed edge between labels (interning both).
    pub fn edge(&mut self, from: &str, to: &str) {
        let u = self.node(from);
        let v = self.node(to);
        self.edges.push((u, v));
    }

    /// Adds a directed edge between existing ids.
    pub fn edge_ids(&mut self, from: usize, to: usize) {
        assert!(from < self.labels.len() && to < self.labels.len());
        self.edges.push((from, to));
    }

    /// Id of a label if present.
    pub fn id_of(&self, label: &str) -> Option<usize> {
        self.ids.get(label).copied()
    }

    /// Label of an id.
    pub fn label(&self, id: usize) -> &str {
        &self.labels[id]
    }

    /// All labels indexed by id.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Raw edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Freezes into a CSR graph (deduplicating parallel edges).
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_edges(self.labels.len(), &self.edges, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_and_edges() {
        let mut g = LabeledGraph::new();
        g.edge("A", "B");
        g.edge("B", "C");
        g.edge("A", "B"); // duplicate
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let csr = g.to_csr();
        assert_eq!(csr.edge_count(), 2, "to_csr dedups");
        assert_eq!(
            csr.neighbors(g.id_of("A").unwrap()),
            &[g.id_of("B").unwrap()]
        );
        assert_eq!(g.label(0), "A");
    }

    #[test]
    fn node_is_idempotent() {
        let mut g = LabeledGraph::new();
        let a = g.node("X");
        let b = g.node("X");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }
}
