//! Simple undirected graphs for tag-similarity structures.
//!
//! The tagging pipeline turns a cosine-similarity matrix into an undirected
//! graph and enumerates its maximal cliques; this adjacency-set
//! representation supports exactly the operations Bron–Kerbosch needs:
//! neighbor sets, degree, and degeneracy ordering.

use std::collections::BTreeSet;

/// An undirected graph over dense node ids with set-based adjacency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UndirectedGraph {
    adj: Vec<BTreeSet<usize>>,
}

impl UndirectedGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> UndirectedGraph {
        UndirectedGraph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Builds from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge; self-loops are ignored (a tag is trivially
    /// similar to itself and must not inflate cliques).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.adj.len() && v < self.adj.len());
        if u == v {
            return;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
    }

    /// True if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Neighbor set of `v`.
    pub fn neighbors(&self, v: usize) -> &BTreeSet<usize> {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Degeneracy ordering (smallest-last). Returns nodes in an order such
    /// that each node has few neighbors later in the order — the ordering
    /// that makes Bron–Kerbosch run in O(d·n·3^(d/3)).
    pub fn degeneracy_ordering(&self) -> Vec<usize> {
        let n = self.adj.len();
        let mut deg: Vec<usize> = (0..n).map(|v| self.degree(v)).collect();
        let maxdeg = deg.iter().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); maxdeg + 1];
        for v in 0..n {
            buckets[deg[v]].push(v);
        }
        let mut removed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let v = loop {
                // Every unremoved node sits in buckets[deg[v]] (plus stale
                // duplicates at old degrees), so while unremoved nodes remain
                // the scan always pops something.
                match (0..buckets.len()).find_map(|d| buckets[d].pop().map(|v| (d, v))) {
                    Some((d, v)) if !removed[v] && deg[v] == d => break v,
                    Some(_) => continue, // stale entry: already removed or re-bucketed
                    None => return order, // all buckets drained: ordering complete
                }
            };
            removed[v] = true;
            order.push(v);
            for &w in &self.adj[v] {
                if !removed[w] {
                    deg[w] -= 1;
                    buckets[deg[w]].push(w);
                }
            }
        }
        order
    }

    /// Deep structural check (fsck): adjacency symmetry, in-range neighbor
    /// ids, and no self-loops. Returns every violated invariant.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let n = self.adj.len();
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if v >= n {
                    problems.push(format!(
                        "node {u} lists neighbor {v} out of range for {n} nodes"
                    ));
                    continue;
                }
                if v == u {
                    problems.push(format!("node {u} has a self-loop"));
                } else if !self.adj[v].contains(&u) {
                    problems.push(format!(
                        "asymmetric edge: {u} lists {v} but {v} does not list {u}"
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut count = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            count += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_symmetric() {
        let g = UndirectedGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = UndirectedGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(0, 1); // duplicate
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn degeneracy_ordering_is_permutation() {
        // A triangle plus a pendant.
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let order = g.degeneracy_ordering();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // The pendant (3) must come before the triangle is exhausted.
        assert_eq!(order[0], 3);
    }

    #[test]
    fn component_counting() {
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (2, 3)]);
        assert_eq!(g.component_count(), 3);
        assert_eq!(UndirectedGraph::new(0).component_count(), 0);
    }

    #[test]
    fn fsck_detects_corruption() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(g.check_invariants(), Ok(()));

        // One-sided edge: 0 lists 3 but 3 does not list 0.
        let mut asym = g.clone();
        asym.adj[0].insert(3);
        let problems = asym.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("asymmetric")),
            "{problems:?}"
        );

        // Self-loop snuck past add_edge.
        let mut looped = g.clone();
        looped.adj[1].insert(1);
        let problems = looped.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("self-loop")),
            "{problems:?}"
        );

        // Neighbor id beyond the node count.
        let mut wild = g;
        wild.adj[2].insert(99);
        let problems = wild.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("out of range")),
            "{problems:?}"
        );
    }
}
