//! Property-based tests for the graph toolkit.

use proptest::prelude::*;
use sensormeta_graph::{tarjan_scc, CsrGraph, LabeledGraph, UndirectedGraph};

fn arb_edges(n: usize, m: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (
        2usize..n,
        prop::collection::vec((0usize..n, 0usize..n), 0..m),
    )
        .prop_map(|(n, raw)| (n, raw.into_iter().map(|(u, v)| (u % n, v % n)).collect()))
}

/// Naive reachability matrix by BFS from every node.
fn reachable(g: &CsrGraph) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut out = vec![vec![false; n]; n];
    #[allow(clippy::needless_range_loop)]
    for start in 0..n {
        let mut stack = vec![start];
        out[start][start] = true;
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !out[start][w] {
                    out[start][w] = true;
                    stack.push(w);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every CSR construction (raw and deduped) satisfies the deep
    /// structural invariants, as does its transpose.
    #[test]
    fn csr_invariants_hold((n, edges) in arb_edges(20, 60)) {
        for dedup in [false, true] {
            let g = CsrGraph::from_edges(n, &edges, dedup);
            prop_assert_eq!(g.check_invariants(), Ok(()));
            prop_assert_eq!(g.transpose().check_invariants(), Ok(()));
        }
    }

    /// An undirected graph built from any edge list is symmetric, loop-free,
    /// and in range.
    #[test]
    fn undirected_invariants_hold((n, edges) in arb_edges(20, 60)) {
        let g = UndirectedGraph::from_edges(n, &edges);
        prop_assert_eq!(g.check_invariants(), Ok(()));
    }

    /// CSR preserves exactly the multiset of edges (or set, when deduped).
    #[test]
    fn csr_preserves_edges((n, edges) in arb_edges(20, 60)) {
        let g = CsrGraph::from_edges(n, &edges, false);
        let mut got: Vec<(usize, usize)> = g.iter_edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Dedup variant equals the set.
        let gd = CsrGraph::from_edges(n, &edges, true);
        let mut set: Vec<(usize, usize)> = edges.clone();
        set.sort_unstable();
        set.dedup();
        let mut got: Vec<(usize, usize)> = gd.iter_edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, set);
    }

    /// Transposing twice is the identity (up to neighbor order).
    #[test]
    fn double_transpose_identity((n, edges) in arb_edges(20, 60)) {
        let g = CsrGraph::from_edges(n, &edges, true);
        let tt = g.transpose().transpose();
        for v in 0..n {
            let mut a = g.neighbors(v).to_vec();
            let mut b = tt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// Tarjan components: same component ⟺ mutually reachable.
    #[test]
    fn scc_equals_mutual_reachability((n, edges) in arb_edges(14, 40)) {
        let g = CsrGraph::from_edges(n, &edges, true);
        let (comp, count) = tarjan_scc(&g);
        prop_assert!(count >= 1 && count <= n);
        let reach = reachable(&g);
        for u in 0..n {
            for v in 0..n {
                let mutual = reach[u][v] && reach[v][u];
                prop_assert_eq!(comp[u] == comp[v], mutual, "u={} v={}", u, v);
            }
        }
    }

    /// Degeneracy ordering is a permutation and respects the degeneracy
    /// bound: each node has at most `max_core` later neighbors.
    #[test]
    fn degeneracy_ordering_valid((n, edges) in arb_edges(16, 50)) {
        let g = UndirectedGraph::from_edges(n, &edges);
        let order = g.degeneracy_ordering();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        // The max forward-degree in the ordering is the degeneracy d; verify
        // it is a valid upper bound (≤ max degree, and the ordering is
        // consistent: no node could have fewer later-neighbors by the greedy
        // invariant — we check just the permutation + bound here).
        let fwd_max = (0..n)
            .map(|v| g.neighbors(v).iter().filter(|&&w| pos[w] > pos[v]).count())
            .max()
            .unwrap_or(0);
        let deg_max = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
        prop_assert!(fwd_max <= deg_max);
    }

    /// LabeledGraph round-trips labels ↔ ids consistently.
    #[test]
    fn labeled_graph_roundtrip(labels in prop::collection::vec("[a-z]{1,6}", 1..20)) {
        let mut g = LabeledGraph::new();
        for l in &labels {
            g.node(l);
        }
        for l in &labels {
            let id = g.id_of(l).expect("inserted");
            prop_assert_eq!(g.label(id), l.as_str());
        }
        let distinct: std::collections::BTreeSet<&String> = labels.iter().collect();
        prop_assert_eq!(g.node_count(), distinct.len());
    }
}
