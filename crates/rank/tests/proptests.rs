//! Property-based tests for the ranking layer: solver agreement and
//! PageRank invariants on random graphs.

use proptest::prelude::*;
use sensormeta_graph::CsrGraph;
use sensormeta_rank::{all_solvers, PageRankProblem, PowerIteration, Solver, TransitionMatrix};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..40,
        prop::collection::vec((0usize..40, 0usize..40), 0..120),
    )
        .prop_map(|(n, raw)| {
            let edges: Vec<(usize, usize)> = raw.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            CsrGraph::from_edges(n, &edges, true)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every solver returns a probability distribution respecting the
    /// teleportation floor, and all agree with power iteration.
    #[test]
    fn solvers_agree_and_are_stochastic(g in arb_graph(), c in 0.5f64..0.95) {
        let p = PageRankProblem::with_c(TransitionMatrix::from_graph(&g), c);
        let reference = PowerIteration.solve(&p, 1e-12, 20_000);
        prop_assert!(reference.converged);
        let floor = (1.0 - c) / g.node_count() as f64;
        for s in all_solvers() {
            let r = s.solve(&p, 1e-12, 20_000);
            prop_assert!(r.converged, "{}", s.name());
            let sum: f64 = r.x.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", s.name());
            for (i, &v) in r.x.iter().enumerate() {
                prop_assert!(v >= floor * (1.0 - 1e-7), "{}: x[{i}]={v} < floor {floor}", s.name());
            }
            let diff: f64 = r.x.iter().zip(&reference.x).map(|(a, b)| (a - b).abs()).sum();
            prop_assert!(diff < 1e-7, "{}: L1 deviation {diff}", s.name());
        }
    }

    /// The transition matrix is always substochastic with consistent
    /// dangling bookkeeping.
    #[test]
    fn transition_matrix_invariants(g in arb_graph()) {
        let m = TransitionMatrix::from_graph(&g);
        prop_assert!(m.check_substochastic(1e-9));
        prop_assert_eq!(m.dangling().len(), g.dangling_nodes().len());
    }

    /// Double-link matrices are substochastic for every alpha, and alpha=0 /
    /// alpha=1 reduce to the single structures where both exist.
    #[test]
    fn double_link_invariants(ga in arb_graph(), alpha in 0.0f64..=1.0) {
        // Build a second graph over the same node count by reversing edges.
        let gb = ga.transpose();
        let m = TransitionMatrix::double_link(&ga, &gb, alpha);
        prop_assert!(m.check_substochastic(1e-9));
        // A node dangles iff it dangles in both structures.
        for v in 0..ga.node_count() {
            let both_dangle = ga.out_degree(v) == 0 && gb.out_degree(v) == 0;
            prop_assert_eq!(m.dangling().contains(&v), both_dangle);
        }
    }

    /// Lowering c never breaks convergence and keeps the ranking's mass
    /// conservation; the teleport floor scales as (1−c)/n.
    #[test]
    fn c_sweep(g in arb_graph()) {
        for c in [0.5, 0.85, 0.99] {
            let p = PageRankProblem::with_c(TransitionMatrix::from_graph(&g), c);
            let r = PowerIteration.solve(&p, 1e-10, 50_000);
            prop_assert!(r.converged, "c={c}");
            let sum: f64 = r.x.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
