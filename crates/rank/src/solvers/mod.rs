//! PageRank solvers.
//!
//! The paper evaluates "several iterative methods" for the PageRank system —
//! both the eigen formulation `(P″)ᵀx = x` (Eq. 3) and the linear-system
//! formulation `(I − cPᵀ)x = kv` (Eq. 5): power iteration, Jacobi,
//! Gauss–Seidel, restarted GMRES, Arnoldi iteration, and BiCGSTAB. All
//! linear-system methods solve `(I − cPᵀ)x = (1−c)u` with the *raw*
//! substochastic `P` and normalize the result; this is exactly Eq. 5 (the
//! scalar `k` is absorbed by the final L1 normalization, see Gleich's thesis
//! cited as \[8\]).
//!
//! Every solver reports its per-iteration residual trace, iteration count and
//! matvec count so the benchmark harness can regenerate Fig. 3(a)
//! (convergence) and Fig. 3(b) (time).

mod arnoldi;
mod bicgstab;
mod gauss_seidel;
mod gmres;
mod jacobi;
mod power;
mod sor;

pub use arnoldi::Arnoldi;
pub use bicgstab::BiCgStab;
pub use gauss_seidel::GaussSeidel;
pub use gmres::Gmres;
pub use jacobi::Jacobi;
pub use power::PowerIteration;
pub use sor::Sor;

use crate::problem::PageRankProblem;
use sensormeta_obs as obs;
use sensormeta_par::Pool;
use sensormeta_resil as resil;

/// Elements per parallel reduction chunk (fixed: determinism contract).
pub(crate) const SUM_CHUNK: usize = 2048;
/// Elements per parallel element-wise update chunk.
pub(crate) const VEC_CHUNK: usize = 2048;

/// Checkpoint site name every solver observes once per iteration.
pub(crate) const CHECKPOINT_SITE: &str = "rank_solve";

/// Observes the ambient resil deadline (and chaos plan). True means the
/// solver must stop early and report an interrupted, non-converged result;
/// the partial iterate is still normalized and returned so callers can
/// degrade gracefully instead of discarding all work.
pub(crate) fn stop_requested() -> bool {
    resil::checkpoint(CHECKPOINT_SITE).is_err()
}

/// Outcome of a solver run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The PageRank vector, L1-normalized to sum 1.
    pub x: Vec<f64>,
    /// Iterations performed (method-specific unit; see each solver).
    pub iterations: usize,
    /// Sparse matrix–vector products performed — the hardware-neutral cost
    /// unit used to compare methods fairly.
    pub matvecs: usize,
    /// Residual estimate after each iteration.
    pub residuals: Vec<f64>,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Whether the run was cut short by the ambient request deadline (or an
    /// injected chaos fault). Interrupted results are partial: never cache
    /// them.
    pub interrupted: bool,
}

impl SolveResult {
    /// Normalizes and packages a solver run, recording the Fig. 3
    /// quantities into the global observability registry under the
    /// sanitized solver name: `rank_<solver>_iterations` /
    /// `rank_<solver>_matvecs` histograms, the final residual as a
    /// `rank_<solver>_residual` gauge, and solve/non-convergence counters.
    pub(crate) fn finish(
        solver: &'static str,
        mut x: Vec<f64>,
        iterations: usize,
        matvecs: usize,
        residuals: Vec<f64>,
        converged: bool,
        interrupted: bool,
    ) -> SolveResult {
        let sum: f64 = x.iter().sum();
        if sum > 0.0 {
            for v in &mut x {
                *v /= sum;
            }
        }
        let key = obs::sanitize_name(solver);
        obs::counter(&format!("rank_{key}_solves_total")).inc();
        if !converged {
            obs::counter(&format!("rank_{key}_nonconverged_total")).inc();
        }
        if interrupted {
            obs::counter(&format!("rank_{key}_interrupted_total")).inc();
        }
        obs::histogram(&format!("rank_{key}_iterations")).record(iterations as u64);
        obs::histogram(&format!("rank_{key}_matvecs")).record(matvecs as u64);
        if let Some(&last) = residuals.last() {
            obs::gauge(&format!("rank_{key}_residual")).set(last);
        }
        SolveResult {
            x,
            iterations,
            matvecs,
            residuals,
            converged,
            interrupted,
        }
    }

    /// Pages sorted by descending score: `(page, score)`.
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        let mut pairs: Vec<(usize, f64)> = self.x.iter().copied().enumerate().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs
    }
}

/// A PageRank solver.
pub trait Solver {
    /// Human-readable method name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Solves the problem to `tol`, capped at `max_iter` iterations, on the
    /// global thread pool.
    fn solve(&self, problem: &PageRankProblem, tol: f64, max_iter: usize) -> SolveResult {
        self.solve_in(Pool::global(), problem, tol, max_iter)
    }

    /// [`Self::solve`] on an explicit pool. Results are bit-for-bit
    /// identical at every pool size (see `sensormeta-par`).
    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult;
}

/// All methods the paper compares, in its order (plus plain power iteration
/// as the textbook baseline).
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(PowerIteration),
        Box::new(Jacobi),
        Box::new(GaussSeidel),
        Box::new(Gmres::default()),
        Box::new(Arnoldi::default()),
        Box::new(BiCgStab),
    ]
}

/// L1 norm (deterministic chunked reduction).
pub(crate) fn norm1(pool: &Pool, v: &[f64]) -> f64 {
    pool.par_sum(v.len(), SUM_CHUNK, |i| v[i].abs())
}

/// L2 norm (deterministic chunked reduction).
pub(crate) fn norm2(pool: &Pool, v: &[f64]) -> f64 {
    pool.par_sum(v.len(), SUM_CHUNK, |i| v[i] * v[i]).sqrt()
}

/// Dot product (deterministic chunked reduction).
pub(crate) fn dot(pool: &Pool, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    pool.par_sum(a.len(), SUM_CHUNK, |i| a[i] * b[i])
}

/// L1 distance `Σ|a_i − b_i|` (deterministic chunked reduction).
pub(crate) fn diff1(pool: &Pool, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    pool.par_sum(a.len(), SUM_CHUNK, |i| (a[i] - b[i]).abs())
}

/// Applies `y = A x = x − c·Pᵀx` for the linear-system formulation.
pub(crate) fn apply_a(pool: &Pool, problem: &PageRankProblem, x: &[f64], y: &mut [f64]) {
    problem.matrix.matvec_in(pool, x, y);
    let c = problem.c;
    pool.par_chunks_mut(y, VEC_CHUNK, |_, base, ys| {
        for (r, yi) in ys.iter_mut().enumerate() {
            *yi = x[base + r] - c * *yi;
        }
    });
}

/// Right-hand side `b = (1−c)·u`.
pub(crate) fn rhs(problem: &PageRankProblem) -> Vec<f64> {
    problem.u.iter().map(|ui| (1.0 - problem.c) * ui).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TransitionMatrix;
    use sensormeta_graph::CsrGraph;

    /// A small graph with a known closed-form check: solvers must agree with
    /// each other to tight tolerance.
    fn toy_problem() -> PageRankProblem {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 0),
                (3, 2),
                (3, 4),
                (4, 5),
                // 5 dangling
            ],
            false,
        );
        PageRankProblem::new(TransitionMatrix::from_graph(&g))
    }

    #[test]
    fn all_solvers_agree() {
        let p = toy_problem();
        let reference = PowerIteration.solve(&p, 1e-12, 10_000);
        assert!(reference.converged);
        for s in all_solvers() {
            let r = s.solve(&p, 1e-12, 10_000);
            assert!(r.converged, "{} did not converge", s.name());
            let diff: f64 =
                r.x.iter()
                    .zip(&reference.x)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
            assert!(
                diff < 1e-8,
                "{} diverges from power iteration by {diff}",
                s.name()
            );
            // Result is a probability distribution.
            let sum: f64 = r.x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10);
            assert!(r.x.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn teleportation_lower_bound() {
        // Every page gets at least (1−c)/n rank.
        let p = toy_problem();
        let floor = (1.0 - p.c) / p.n() as f64;
        for s in all_solvers() {
            let r = s.solve(&p, 1e-12, 10_000);
            for (i, &v) in r.x.iter().enumerate() {
                assert!(
                    v >= floor * (1.0 - 1e-9),
                    "{}: page {i} below teleport floor: {v} < {floor}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn residual_traces_decrease_overall() {
        let p = toy_problem();
        for s in all_solvers() {
            let r = s.solve(&p, 1e-10, 10_000);
            assert!(!r.residuals.is_empty(), "{}", s.name());
            let first = r.residuals[0];
            let last = *r.residuals.last().unwrap();
            // A solver may converge within its very first (block) iteration
            // on a 6-node problem; only demand non-increase in that case.
            assert!(
                last < first || r.residuals.len() == 1,
                "{}: residual did not decrease ({first} → {last})",
                s.name()
            );
            assert!(last <= 1e-10 * 10.0, "{}: final residual {last}", s.name());
        }
    }

    /// A pseudo-random web-like graph large enough for asymptotic behaviour
    /// (deterministic LCG, some dangling nodes).
    fn weblike_problem(n: usize, seed: u64) -> PageRankProblem {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = Vec::new();
        for u in 0..n {
            for _ in 0..(next() % 8) {
                edges.push((u, next() % n));
            }
        }
        let g = CsrGraph::from_edges(n, &edges, true);
        PageRankProblem::new(TransitionMatrix::from_graph(&g))
    }

    #[test]
    fn gauss_seidel_beats_jacobi_on_iterations() {
        // The paper's headline Fig. 3 finding on our substrate. On web-like
        // graphs GS needs roughly half the sweeps of Jacobi; tiny graphs can
        // invert this by ordering luck, so test at a realistic size.
        let p = weblike_problem(1500, 42);
        let gs = GaussSeidel.solve(&p, 1e-10, 10_000);
        let j = Jacobi.solve(&p, 1e-10, 10_000);
        assert!(
            (gs.iterations as f64) < 0.8 * j.iterations as f64,
            "GS {} vs Jacobi {}",
            gs.iterations,
            j.iterations
        );
    }

    #[test]
    fn solvers_agree_on_weblike_graph() {
        let p = weblike_problem(500, 7);
        let reference = PowerIteration.solve(&p, 1e-12, 10_000);
        for s in all_solvers() {
            let r = s.solve(&p, 1e-12, 10_000);
            assert!(r.converged, "{}", s.name());
            let diff: f64 =
                r.x.iter()
                    .zip(&reference.x)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
            assert!(diff < 1e-7, "{}: {diff}", s.name());
        }
    }

    #[test]
    fn iteration_cap_reports_nonconverged() {
        let p = toy_problem();
        let r = PowerIteration.solve(&p, 1e-300, 3);
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
        assert!(!r.interrupted);
    }

    #[test]
    fn expired_deadline_interrupts_every_solver() {
        let p = weblike_problem(500, 11);
        let expired = resil::Deadline::within(std::time::Duration::ZERO);
        let mut solvers = all_solvers();
        solvers.push(Box::new(Sor::default()));
        for s in solvers {
            let r = {
                let _scope = resil::deadline_scope(expired);
                s.solve(&p, 1e-300, 10_000)
            };
            assert!(r.interrupted, "{}", s.name());
            assert!(!r.converged, "{}", s.name());
            // The per-iteration checkpoint fires before real work starts.
            assert_eq!(r.iterations, 0, "{}", s.name());
            // The partial iterate is still a usable distribution.
            let sum: f64 = r.x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", s.name());
            // With the scope dropped, the same solver runs normally again.
            assert!(!s.solve(&p, 1e-8, 10_000).interrupted, "{}", s.name());
        }
    }

    #[test]
    fn dangling_only_graph() {
        // No edges at all: PageRank must be uniform.
        let g = CsrGraph::from_edges(4, &[], false);
        let p = PageRankProblem::new(TransitionMatrix::from_graph(&g));
        for s in all_solvers() {
            let r = s.solve(&p, 1e-12, 1000);
            for &v in &r.x {
                assert!((v - 0.25).abs() < 1e-9, "{}: {v}", s.name());
            }
        }
    }

    #[test]
    fn single_node() {
        let g = CsrGraph::from_edges(1, &[], false);
        let p = PageRankProblem::new(TransitionMatrix::from_graph(&g));
        for s in all_solvers() {
            let r = s.solve(&p, 1e-12, 100);
            assert!((r.x[0] - 1.0).abs() < 1e-12, "{}", s.name());
        }
    }

    #[test]
    fn ranking_sorted_descending() {
        let p = toy_problem();
        let r = PowerIteration.solve(&p, 1e-10, 1000);
        let ranking = r.ranking();
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranking.len(), p.n());
        // Page 2 has the most in-links; it should rank first.
        assert_eq!(ranking[0].0, 2);
    }
}
