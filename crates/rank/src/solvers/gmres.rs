//! Restarted GMRES (Generalized Minimum Residual) on the linear system.

use super::{apply_a, dot, norm2, rhs, stop_requested, SolveResult, Solver, VEC_CHUNK};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// GMRES(m): builds an orthonormal Krylov basis of `A = I − cPᵀ` with Arnoldi
/// (modified Gram–Schmidt), reduces the Hessenberg least-squares problem with
/// Givens rotations, and restarts every `restart` steps. One iteration = one
/// inner Arnoldi step = one matvec. Residual: relative `‖b − Ax‖₂ / ‖b‖₂`,
/// available for free from the rotated right-hand side.
#[derive(Debug, Clone, Copy)]
pub struct Gmres {
    /// Restart length `m`.
    pub restart: usize,
}

impl Default for Gmres {
    fn default() -> Self {
        Gmres { restart: 30 }
    }
}

impl Solver for Gmres {
    fn name(&self) -> &'static str {
        "GMRES"
    }

    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        let n = problem.n();
        let m = self.restart.max(1);
        let b = rhs(problem);
        let bnorm = norm2(pool, &b).max(f64::MIN_POSITIVE);
        let mut x = problem.u.clone();
        let mut residuals = Vec::new();
        let mut matvecs = 0usize;
        let mut iterations = 0usize;
        let mut converged = false;
        let mut interrupted = false;

        'outer: while iterations < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            // r = b − A x
            let mut r = vec![0.0; n];
            apply_a(pool, problem, &x, &mut r);
            matvecs += 1;
            {
                let b = &b;
                pool.par_chunks_mut(&mut r, VEC_CHUNK, |_, base, rs| {
                    for (k, ri) in rs.iter_mut().enumerate() {
                        *ri = b[base + k] - *ri;
                    }
                });
            }
            let beta = norm2(pool, &r);
            if beta / bnorm < tol {
                converged = true;
                break;
            }
            // Krylov basis V, Hessenberg H (column-major: h[j] has j+2 entries).
            let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
            v.push(r.iter().map(|ri| ri / beta).collect());
            let mut h: Vec<Vec<f64>> = Vec::with_capacity(m);
            // Givens rotations (cs, sn) and rotated rhs g.
            let mut cs = vec![0.0f64; m];
            let mut sn = vec![0.0f64; m];
            let mut g = vec![0.0f64; m + 1];
            g[0] = beta;
            let mut inner_used = 0usize;

            for j in 0..m {
                if iterations >= max_iter {
                    break;
                }
                if stop_requested() {
                    // Fall through to back-substitution so the Krylov work
                    // already done still improves the returned iterate.
                    interrupted = true;
                    break;
                }
                let mut w = vec![0.0; n];
                apply_a(pool, problem, &v[j], &mut w);
                matvecs += 1;
                iterations += 1;
                let mut hj = vec![0.0f64; j + 2];
                for (i, vi) in v.iter().enumerate().take(j + 1) {
                    let d = dot(pool, &w, vi);
                    hj[i] = d;
                    pool.par_chunks_mut(&mut w, VEC_CHUNK, |_, base, ws| {
                        for (k, wk) in ws.iter_mut().enumerate() {
                            *wk -= d * vi[base + k];
                        }
                    });
                }
                let wnorm = norm2(pool, &w);
                hj[j + 1] = wnorm;
                // Apply accumulated rotations to the new column.
                for i in 0..j {
                    let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                    hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                    hj[i] = t;
                }
                // New rotation to annihilate hj[j+1].
                let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
                if denom > 0.0 {
                    cs[j] = hj[j] / denom;
                    sn[j] = hj[j + 1] / denom;
                } else {
                    cs[j] = 1.0;
                    sn[j] = 0.0;
                }
                hj[j] = cs[j] * hj[j] + sn[j] * hj[j + 1];
                hj[j + 1] = 0.0;
                g[j + 1] = -sn[j] * g[j];
                g[j] *= cs[j];
                h.push(hj);
                inner_used = j + 1;
                let rel = g[j + 1].abs() / bnorm;
                residuals.push(rel);
                if rel < tol {
                    converged = true;
                    break;
                }
                if wnorm == 0.0 {
                    // Lucky breakdown: exact solution in this subspace.
                    converged = true;
                    break;
                }
                v.push(w.iter().map(|wk| wk / wnorm).collect());
            }

            // Back-substitute H y = g over the used columns.
            if inner_used > 0 {
                let k = inner_used;
                let mut y = vec![0.0f64; k];
                for i in (0..k).rev() {
                    let mut acc = g[i];
                    for (jj, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                        acc -= h[jj][i] * yj;
                    }
                    y[i] = acc / h[i][i];
                }
                // x += V y, chunked over elements; per-element accumulation
                // stays in basis order, so the update is deterministic.
                let v = &v;
                let y = &y;
                pool.par_chunks_mut(&mut x, VEC_CHUNK, |_, base, xs| {
                    for (r, xi) in xs.iter_mut().enumerate() {
                        let i = base + r;
                        for (j, yj) in y.iter().enumerate() {
                            *xi += yj * v[j][i];
                        }
                    }
                });
            }
            if converged || interrupted {
                break 'outer;
            }
        }
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            matvecs,
            residuals,
            converged,
            interrupted,
        )
    }
}
