//! Jacobi iteration on the linear system (Eq. 5).

use super::{norm1, rhs, stop_requested, SolveResult, Solver, VEC_CHUNK};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// Jacobi splitting of `A = I − cPᵀ`: with `D = diag(A)`,
/// `x(k+1) = D⁻¹ (b + (D − A) x(k))`. For graphs without self-loops `D = I`
/// and this reduces to the Richardson iteration `x(k+1) = b + cPᵀx(k)`;
/// self-loop weights are handled through the true diagonal. One iteration =
/// one matvec. Residual: `‖x(k+1) − x(k)‖₁`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Jacobi;

impl Solver for Jacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        let n = problem.n();
        let b = rhs(problem);
        let c = problem.c;
        // Diagonal of Pᵀ (self-loop transition weights).
        let diag: Vec<f64> = (0..n)
            .map(|i| {
                problem
                    .matrix
                    .in_links(i)
                    .find(|(j, _)| *j == i)
                    .map(|(_, w)| w)
                    .unwrap_or(0.0)
            })
            .collect();
        let mut x = problem.u.clone();
        let mut px = vec![0.0; n];
        let mut residuals = Vec::new();
        let mut iterations = 0;
        let mut converged = false;
        let mut interrupted = false;
        while iterations < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            problem.matrix.matvec_in(pool, &x, &mut px);
            iterations += 1;
            // Parallel sweep over fixed chunks; the per-chunk diff partials
            // come back in chunk order, keeping the residual deterministic.
            let partials = {
                let x = &x;
                let b = &b;
                let diag = &diag;
                pool.par_chunks_mut(&mut px, VEC_CHUNK, |_, base, chunk| {
                    let mut d = 0.0;
                    for (r, pv) in chunk.iter_mut().enumerate() {
                        let i = base + r;
                        // (D − A)x = cPᵀx − c·diag·x ; D = 1 − c·diag.
                        let new = (b[i] + c * (*pv - diag[i] * x[i])) / (1.0 - c * diag[i]);
                        d += (new - x[i]).abs();
                        *pv = new;
                    }
                    d
                })
            };
            let diff: f64 = partials.into_iter().sum();
            std::mem::swap(&mut x, &mut px);
            // Scale the residual to the normalized solution so tolerances are
            // comparable across methods (the raw linear-system iterate sums to
            // <1 before normalization).
            let scale = norm1(pool, &x).max(f64::MIN_POSITIVE);
            residuals.push(diff / scale);
            if diff / scale < tol {
                converged = true;
                break;
            }
        }
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            iterations,
            residuals,
            converged,
            interrupted,
        )
    }
}
