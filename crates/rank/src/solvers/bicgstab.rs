//! BiCGSTAB (Biconjugate Gradient Stabilized) on the linear system.

use super::{apply_a, dot, norm2, rhs, stop_requested, SolveResult, Solver, VEC_CHUNK};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// Van der Vorst's BiCGSTAB for the nonsymmetric system `(I − cPᵀ)x = b`.
/// One iteration = two matvecs. Residual: relative `‖r‖₂ / ‖b‖₂`. Breakdown
/// (`ρ ≈ 0` or `ω ≈ 0`) restarts from the current residual.
#[derive(Debug, Default, Clone, Copy)]
pub struct BiCgStab;

impl Solver for BiCgStab {
    fn name(&self) -> &'static str {
        "BiCGSTAB"
    }

    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        let n = problem.n();
        let b = rhs(problem);
        let bnorm = norm2(pool, &b).max(f64::MIN_POSITIVE);
        let mut x = problem.u.clone();
        let mut r = vec![0.0; n];
        apply_a(pool, problem, &x, &mut r);
        let mut matvecs = 1usize;
        {
            let b = &b;
            pool.par_chunks_mut(&mut r, VEC_CHUNK, |_, base, rs| {
                for (k, ri) in rs.iter_mut().enumerate() {
                    *ri = b[base + k] - *ri;
                }
            });
        }
        let mut r_hat = r.clone();
        let mut rho = 1.0f64;
        let mut alpha = 1.0f64;
        let mut omega = 1.0f64;
        let mut v = vec![0.0f64; n];
        let mut p = vec![0.0f64; n];
        let mut s = vec![0.0f64; n];
        let mut t = vec![0.0f64; n];
        let mut residuals = Vec::new();
        let mut iterations = 0usize;
        let mut converged = norm2(pool, &r) / bnorm < tol;
        if converged {
            residuals.push(norm2(pool, &r) / bnorm);
        }

        let mut interrupted = false;
        while !converged && iterations < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            let rho_new = dot(pool, &r_hat, &r);
            if rho_new.abs() < 1e-300 {
                // Breakdown: restart with the current residual as shadow.
                r_hat = r.clone();
                rho = 1.0;
                alpha = 1.0;
                omega = 1.0;
                v.iter_mut().for_each(|e| *e = 0.0);
                p.iter_mut().for_each(|e| *e = 0.0);
                continue;
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            {
                let r = &r;
                let v = &v;
                pool.par_chunks_mut(&mut p, VEC_CHUNK, |_, base, ps| {
                    for (k, pi) in ps.iter_mut().enumerate() {
                        let i = base + k;
                        *pi = r[i] + beta * (*pi - omega * v[i]);
                    }
                });
            }
            apply_a(pool, problem, &p, &mut v);
            matvecs += 1;
            let rhat_v = dot(pool, &r_hat, &v);
            alpha = rho / rhat_v;
            {
                let r = &r;
                let v = &v;
                pool.par_chunks_mut(&mut s, VEC_CHUNK, |_, base, ss| {
                    for (k, si) in ss.iter_mut().enumerate() {
                        let i = base + k;
                        *si = r[i] - alpha * v[i];
                    }
                });
            }
            if norm2(pool, &s) / bnorm < tol {
                {
                    let p = &p;
                    pool.par_chunks_mut(&mut x, VEC_CHUNK, |_, base, xs| {
                        for (k, xi) in xs.iter_mut().enumerate() {
                            *xi += alpha * p[base + k];
                        }
                    });
                }
                iterations += 1;
                residuals.push(norm2(pool, &s) / bnorm);
                converged = true;
                break;
            }
            apply_a(pool, problem, &s, &mut t);
            matvecs += 1;
            let tt = dot(pool, &t, &t);
            let ts = dot(pool, &t, &s);
            omega = if tt > 0.0 { ts / tt } else { 0.0 };
            {
                let p = &p;
                let s = &s;
                pool.par_chunks_mut(&mut x, VEC_CHUNK, |_, base, xs| {
                    for (k, xi) in xs.iter_mut().enumerate() {
                        let i = base + k;
                        *xi += alpha * p[i] + omega * s[i];
                    }
                });
            }
            {
                let s = &s;
                let t = &t;
                pool.par_chunks_mut(&mut r, VEC_CHUNK, |_, base, rs| {
                    for (k, ri) in rs.iter_mut().enumerate() {
                        let i = base + k;
                        *ri = s[i] - omega * t[i];
                    }
                });
            }
            iterations += 1;
            let rel = norm2(pool, &r) / bnorm;
            residuals.push(rel);
            if rel < tol {
                converged = true;
            }
            if omega.abs() < 1e-300 {
                r_hat = r.clone();
                rho = 1.0;
                alpha = 1.0;
                omega = 1.0;
                v.iter_mut().for_each(|e| *e = 0.0);
                p.iter_mut().for_each(|e| *e = 0.0);
            }
        }
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            matvecs,
            residuals,
            converged,
            interrupted,
        )
    }
}
