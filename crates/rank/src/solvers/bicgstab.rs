//! BiCGSTAB (Biconjugate Gradient Stabilized) on the linear system.

use super::{apply_a, norm2, rhs, SolveResult, Solver};
use crate::problem::PageRankProblem;

/// Van der Vorst's BiCGSTAB for the nonsymmetric system `(I − cPᵀ)x = b`.
/// One iteration = two matvecs. Residual: relative `‖r‖₂ / ‖b‖₂`. Breakdown
/// (`ρ ≈ 0` or `ω ≈ 0`) restarts from the current residual.
#[derive(Debug, Default, Clone, Copy)]
pub struct BiCgStab;

impl Solver for BiCgStab {
    fn name(&self) -> &'static str {
        "BiCGSTAB"
    }

    fn solve(&self, problem: &PageRankProblem, tol: f64, max_iter: usize) -> SolveResult {
        let n = problem.n();
        let b = rhs(problem);
        let bnorm = norm2(&b).max(f64::MIN_POSITIVE);
        let mut x = problem.u.clone();
        let mut r = vec![0.0; n];
        apply_a(problem, &x, &mut r);
        let mut matvecs = 1usize;
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut r_hat = r.clone();
        let mut rho = 1.0f64;
        let mut alpha = 1.0f64;
        let mut omega = 1.0f64;
        let mut v = vec![0.0f64; n];
        let mut p = vec![0.0f64; n];
        let mut residuals = Vec::new();
        let mut iterations = 0usize;
        let mut converged = norm2(&r) / bnorm < tol;
        if converged {
            residuals.push(norm2(&r) / bnorm);
        }

        while !converged && iterations < max_iter {
            let rho_new: f64 = r_hat.iter().zip(&r).map(|(a, b)| a * b).sum();
            if rho_new.abs() < 1e-300 {
                // Breakdown: restart with the current residual as shadow.
                r_hat = r.clone();
                rho = 1.0;
                alpha = 1.0;
                omega = 1.0;
                v.iter_mut().for_each(|e| *e = 0.0);
                p.iter_mut().for_each(|e| *e = 0.0);
                continue;
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            apply_a(problem, &p, &mut v);
            matvecs += 1;
            let rhat_v: f64 = r_hat.iter().zip(&v).map(|(a, b)| a * b).sum();
            alpha = rho / rhat_v;
            let s: Vec<f64> = r.iter().zip(&v).map(|(ri, vi)| ri - alpha * vi).collect();
            if norm2(&s) / bnorm < tol {
                for i in 0..n {
                    x[i] += alpha * p[i];
                }
                iterations += 1;
                residuals.push(norm2(&s) / bnorm);
                converged = true;
                break;
            }
            let mut t = vec![0.0; n];
            apply_a(problem, &s, &mut t);
            matvecs += 1;
            let tt: f64 = t.iter().map(|ti| ti * ti).sum();
            let ts: f64 = t.iter().zip(&s).map(|(a, b)| a * b).sum();
            omega = if tt > 0.0 { ts / tt } else { 0.0 };
            for i in 0..n {
                x[i] += alpha * p[i] + omega * s[i];
                r[i] = s[i] - omega * t[i];
            }
            iterations += 1;
            let rel = norm2(&r) / bnorm;
            residuals.push(rel);
            if rel < tol {
                converged = true;
            }
            if omega.abs() < 1e-300 {
                r_hat = r.clone();
                rho = 1.0;
                alpha = 1.0;
                omega = 1.0;
                v.iter_mut().for_each(|e| *e = 0.0);
                p.iter_mut().for_each(|e| *e = 0.0);
            }
        }
        SolveResult::finish(self.name(), x, iterations, matvecs, residuals, converged)
    }
}
