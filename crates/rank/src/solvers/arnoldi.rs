//! Restarted Arnoldi iteration for the PageRank eigenproblem.

use super::{dot, norm2, stop_requested, SolveResult, Solver, VEC_CHUNK};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// Arnoldi method specialised for PageRank (Golub & Greif's refined variant):
/// because the dominant eigenvalue of the Google matrix is known to be exactly
/// 1, each restart builds an `m`-step Krylov subspace of `(P″)ᵀ` and takes as
/// the new iterate `x = V·y` where `y` minimizes `‖(H̄ − E₁)y‖₂` — the
/// smallest right singular vector of the shifted Hessenberg matrix. One
/// iteration = one matvec; the residual `‖(P″)ᵀx − x‖₂` is recorded once per
/// restart.
#[derive(Debug, Clone, Copy)]
pub struct Arnoldi {
    /// Krylov subspace dimension per restart.
    pub subspace: usize,
}

impl Default for Arnoldi {
    fn default() -> Self {
        Arnoldi { subspace: 12 }
    }
}

impl Solver for Arnoldi {
    fn name(&self) -> &'static str {
        "Arnoldi"
    }

    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        let n = problem.n();
        let m = self.subspace.max(2).min(n.max(2));
        let mut x = problem.u.clone();
        let mut residuals = Vec::new();
        let mut matvecs = 0usize;
        let mut converged = false;
        let mut interrupted = false;

        while matvecs < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            // Normalize the start vector (L2 for the orthogonal basis).
            let xnorm = norm2(pool, &x).max(f64::MIN_POSITIVE);
            let mut v: Vec<Vec<f64>> = vec![x.iter().map(|e| e / xnorm).collect()];
            // H̄ is (m+1) × m, stored column-major.
            let mut h: Vec<Vec<f64>> = Vec::with_capacity(m);
            let mut used = 0usize;
            for j in 0..m {
                if matvecs >= max_iter {
                    break;
                }
                if stop_requested() {
                    // The basis built so far still yields an improved
                    // iterate below.
                    interrupted = true;
                    break;
                }
                let mut w = vec![0.0; n];
                problem.google_matvec_in(pool, &v[j], &mut w);
                matvecs += 1;
                let mut hj = vec![0.0f64; j + 2];
                for (i, vi) in v.iter().enumerate().take(j + 1) {
                    let d = dot(pool, &w, vi);
                    hj[i] = d;
                    pool.par_chunks_mut(&mut w, VEC_CHUNK, |_, base, ws| {
                        for (k, wk) in ws.iter_mut().enumerate() {
                            *wk -= d * vi[base + k];
                        }
                    });
                }
                let wnorm = norm2(pool, &w);
                hj[j + 1] = wnorm;
                h.push(hj);
                used = j + 1;
                if wnorm < 1e-14 {
                    break; // invariant subspace found
                }
                v.push(w.iter().map(|wk| wk / wnorm).collect());
            }
            if used == 0 {
                break;
            }
            // y = argmin ‖(H̄ − E₁)y‖ over unit y, where E₁ stacks I_used over 0.
            let y = smallest_singular_vector(&h, used);
            // New iterate x = V y, signed so the dominant mass is positive.
            // Chunked over elements; per-element accumulation stays in basis
            // order, keeping the update deterministic.
            let mut newx = vec![0.0f64; n];
            {
                let v = &v;
                let y = &y;
                pool.par_chunks_mut(&mut newx, VEC_CHUNK, |_, base, xs| {
                    for (r, xi) in xs.iter_mut().enumerate() {
                        let i = base + r;
                        for (j, yj) in y.iter().enumerate() {
                            *xi += yj * v[j][i];
                        }
                    }
                });
            }
            if newx.iter().sum::<f64>() < 0.0 {
                for e in &mut newx {
                    *e = -*e;
                }
            }
            // PageRank is nonnegative; clamp tiny negative round-off.
            for e in &mut newx {
                if *e < 0.0 {
                    *e = 0.0;
                }
            }
            x = newx;
            let res = problem.residual_in(pool, &x);
            residuals.push(res);
            if res < tol {
                converged = true;
                break;
            }
            if interrupted {
                break;
            }
        }
        let iterations = matvecs;
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            matvecs,
            residuals,
            converged,
            interrupted,
        )
    }
}

/// Smallest right singular vector of `(H̄ − E₁)`, where `h` holds the first
/// `used` Hessenberg columns (column j has j+2 entries) and `E₁` is the
/// identity padded with a zero row. Computed by inverse iteration on the
/// Gram matrix with a dense LU solve — the matrix is at most
/// `subspace × subspace`, so cost is negligible next to the matvecs.
fn smallest_singular_vector(h: &[Vec<f64>], used: usize) -> Vec<f64> {
    let m = used;
    // Dense (m+1) × m of (H̄ − E1).
    let mut a = vec![vec![0.0f64; m]; m + 1];
    for (j, col) in h.iter().enumerate().take(m) {
        for (i, &v) in col.iter().enumerate() {
            a[i][j] = v;
        }
        a[j][j] -= 1.0;
    }
    // Gram matrix B = AᵀA (m×m, SPD up to rank deficiency).
    let mut bmat = vec![vec![0.0f64; m]; m];
    for p in 0..m {
        for q in 0..m {
            let mut acc = 0.0;
            for row in &a {
                acc += row[p] * row[q];
            }
            bmat[p][q] = acc;
        }
    }
    // Shift for invertibility.
    let trace: f64 = (0..m).map(|i| bmat[i][i]).sum();
    let eps = (trace / m as f64).max(1e-30) * 1e-12;
    for (i, row) in bmat.iter_mut().enumerate().take(m) {
        row[i] += eps;
        let _ = i;
    }
    // Inverse iteration.
    let mut y = vec![1.0 / (m as f64).sqrt(); m];
    for _ in 0..25 {
        let z = dense_solve(&bmat, &y);
        // Serial norm: the vector is at most `subspace` long.
        let znorm = z
            .iter()
            .map(|e| e * e)
            .sum::<f64>()
            .sqrt()
            .max(f64::MIN_POSITIVE);
        let next: Vec<f64> = z.iter().map(|e| e / znorm).collect();
        let delta: f64 = next.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum();
        y = next;
        if delta < 1e-14 {
            break;
        }
    }
    y
}

/// Solves a small dense system by Gaussian elimination with partial pivoting.
fn dense_solve(mat: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let m = b.len();
    let mut a: Vec<Vec<f64>> = mat.to_vec();
    let mut x = b.to_vec();
    for col in 0..m {
        // Pivot.
        let piv = (col..m)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(col); // col..m is non-empty; col itself is a no-op swap
        a.swap(col, piv);
        x.swap(col, piv);
        let d = a[col][col];
        if d.abs() < 1e-300 {
            continue; // singular direction; leave as-is
        }
        for row in col + 1..m {
            let f = a[row][col] / d;
            if f == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)]
            for k in col..m {
                a[row][k] -= f * a[col][k];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..m).rev() {
        let d = a[col][col];
        if d.abs() < 1e-300 {
            x[col] = 0.0;
            continue;
        }
        let mut acc = x[col];
        #[allow(clippy::needless_range_loop)]
        for k in col + 1..m {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / d;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        let x = dense_solve(&a, &[3.0, 8.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solve_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = dense_solve(&a, &[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }
}
