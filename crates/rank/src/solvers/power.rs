//! Power iteration on the Google matrix (Eq. 3).

use super::{diff1, norm1, stop_requested, SolveResult, Solver, VEC_CHUNK};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// Simple power iterations `x(k+1) = (P″)ᵀ x(k)`; since `P″` is
/// row-stochastic and irreducible after the Eq. 1–2 modifications, the
/// iterates converge to the principal eigenvector. One iteration = one
/// matvec. Residual: `‖x(k+1) − x(k)‖₁`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PowerIteration;

impl Solver for PowerIteration {
    fn name(&self) -> &'static str {
        "Power"
    }

    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        let n = problem.n();
        let mut x = problem.u.clone();
        let mut y = vec![0.0; n];
        let mut residuals = Vec::new();
        let mut iterations = 0;
        let mut converged = false;
        let mut interrupted = false;
        while iterations < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            problem.google_matvec_in(pool, &x, &mut y);
            iterations += 1;
            let diff = diff1(pool, &y, &x);
            // Stochastic matvec preserves mass; renormalize defensively
            // against floating-point drift on long runs.
            let sum = norm1(pool, &y);
            pool.par_chunks_mut(&mut y, VEC_CHUNK, |_, _, ys| {
                for v in ys.iter_mut() {
                    *v /= sum;
                }
            });
            std::mem::swap(&mut x, &mut y);
            residuals.push(diff);
            if diff < tol {
                converged = true;
                break;
            }
        }
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            iterations,
            residuals,
            converged,
            interrupted,
        )
    }
}
