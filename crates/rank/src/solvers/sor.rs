//! Successive over-relaxation — the natural extension of the paper's
//! Gauss–Seidel choice.
//!
//! SOR blends each Gauss–Seidel update with the previous iterate:
//! `x_i ← (1−ω)·x_i + ω·x_i^GS`. With `ω = 1` this *is* Gauss–Seidel; for
//! PageRank systems mild over-relaxation (ω slightly above 1) can shave
//! iterations, while large ω diverges — the ablation bench sweeps ω to show
//! the paper's plain-GS choice sits very close to optimal.

use super::{norm1, rhs, stop_requested, SolveResult, Solver};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// SOR with relaxation factor `omega` ∈ (0, 2).
#[derive(Debug, Clone, Copy)]
pub struct Sor {
    /// Relaxation factor ω.
    pub omega: f64,
}

impl Default for Sor {
    fn default() -> Self {
        Sor { omega: 1.05 }
    }
}

impl Solver for Sor {
    fn name(&self) -> &'static str {
        "SOR"
    }

    // Like Gauss–Seidel, the sweep is inherently sequential (in-place
    // updates feed later rows in the same sweep); only the norm reductions
    // use the pool.
    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        assert!(
            self.omega > 0.0 && self.omega < 2.0,
            "SOR requires omega in (0, 2), got {}",
            self.omega
        );
        let n = problem.n();
        let b = rhs(problem);
        let c = problem.c;
        let w = self.omega;
        let mut x = problem.u.clone();
        let mut residuals = Vec::new();
        let mut iterations = 0;
        let mut converged = false;
        let mut interrupted = false;
        while iterations < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            let mut diff = 0.0;
            for i in 0..n {
                let mut acc = 0.0;
                let mut diag = 0.0;
                for (j, wgt) in problem.matrix.in_links(i) {
                    if j == i {
                        diag = wgt;
                    } else {
                        acc += wgt * x[j];
                    }
                }
                let gs = (b[i] + c * acc) / (1.0 - c * diag);
                let new = (1.0 - w) * x[i] + w * gs;
                diff += (new - x[i]).abs();
                x[i] = new;
            }
            iterations += 1;
            let scale = norm1(pool, &x).max(f64::MIN_POSITIVE);
            residuals.push(diff / scale);
            if diff / scale < tol {
                converged = true;
                break;
            }
            if !diff.is_finite() {
                break; // diverged (over-relaxed); report non-converged
            }
        }
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            iterations,
            residuals,
            converged,
            interrupted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TransitionMatrix;
    use crate::solvers::{GaussSeidel, PowerIteration};
    use sensormeta_graph::CsrGraph;

    fn problem() -> PageRankProblem {
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let n = 800;
        let mut edges = Vec::new();
        for u in 0..n {
            for _ in 0..(next() % 6) {
                edges.push((u, next() % n));
            }
        }
        PageRankProblem::new(TransitionMatrix::from_graph(&CsrGraph::from_edges(
            n, &edges, true,
        )))
    }

    #[test]
    fn omega_one_is_gauss_seidel() {
        let p = problem();
        let sor = Sor { omega: 1.0 }.solve(&p, 1e-11, 5000);
        let gs = GaussSeidel.solve(&p, 1e-11, 5000);
        assert_eq!(sor.iterations, gs.iterations);
        let diff: f64 = sor.x.iter().zip(&gs.x).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff < 1e-12, "identical trajectories, diff {diff}");
    }

    #[test]
    fn sor_agrees_with_power_iteration() {
        let p = problem();
        let reference = PowerIteration.solve(&p, 1e-12, 10_000);
        for omega in [0.8, 1.0, 1.1] {
            let r = Sor { omega }.solve(&p, 1e-12, 10_000);
            assert!(r.converged, "omega {omega}");
            let diff: f64 =
                r.x.iter()
                    .zip(&reference.x)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
            assert!(diff < 1e-8, "omega {omega}: {diff}");
        }
    }

    #[test]
    fn under_relaxation_is_slower() {
        let p = problem();
        let slow = Sor { omega: 0.5 }.solve(&p, 1e-10, 5000);
        let gs = Sor { omega: 1.0 }.solve(&p, 1e-10, 5000);
        assert!(slow.iterations > gs.iterations);
    }

    #[test]
    #[should_panic(expected = "omega in (0, 2)")]
    fn invalid_omega_panics() {
        let p = problem();
        let _ = Sor { omega: 2.5 }.solve(&p, 1e-6, 10);
    }
}
