//! Gauss–Seidel iteration — the method the paper selects for its
//! PageRank Calculation module.

use super::{norm1, rhs, stop_requested, SolveResult, Solver};
use crate::problem::PageRankProblem;
use sensormeta_par::Pool;

/// Forward Gauss–Seidel sweeps on `(I − cPᵀ)x = (1−c)u`:
///
/// ```text
/// x_i ← ( b_i + c · Σ_{j∈in(i), j≠i} P_ji x_j ) / (1 − c·P_ii)
/// ```
///
/// using already-updated values within the sweep, which roughly halves the
/// iteration count versus Jacobi on web-like graphs — the behaviour Fig. 3
/// reports. One iteration = one full sweep (one matvec-equivalent of work).
/// Residual: `‖x(k+1) − x(k)‖₁` scaled by the iterate's norm.
#[derive(Debug, Default, Clone, Copy)]
pub struct GaussSeidel;

impl Solver for GaussSeidel {
    fn name(&self) -> &'static str {
        "Gauss-Seidel"
    }

    // The sweep itself stays serial: each update reads values already
    // written in the same sweep, an inherently sequential dependency (and
    // the very reason GS halves Jacobi's iteration count). Only the norm
    // reductions use the pool.
    fn solve_in(
        &self,
        pool: &Pool,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> SolveResult {
        let n = problem.n();
        let b = rhs(problem);
        let c = problem.c;
        let mut x = problem.u.clone();
        let mut residuals = Vec::new();
        let mut iterations = 0;
        let mut converged = false;
        let mut interrupted = false;
        while iterations < max_iter {
            if stop_requested() {
                interrupted = true;
                break;
            }
            let mut diff = 0.0;
            for i in 0..n {
                let mut acc = 0.0;
                let mut diag = 0.0;
                for (j, w) in problem.matrix.in_links(i) {
                    if j == i {
                        diag = w;
                    } else {
                        acc += w * x[j];
                    }
                }
                let new = (b[i] + c * acc) / (1.0 - c * diag);
                diff += (new - x[i]).abs();
                x[i] = new;
            }
            iterations += 1;
            let scale = norm1(pool, &x).max(f64::MIN_POSITIVE);
            residuals.push(diff / scale);
            if diff / scale < tol {
                converged = true;
                break;
            }
        }
        SolveResult::finish(
            self.name(),
            x,
            iterations,
            iterations,
            residuals,
            converged,
            interrupted,
        )
    }
}
