//! Recommendation of related metadata pages.
//!
//! The paper embeds "a recommendation mechanism … based on the combination of
//! query inputs and properties that are high-scored by the PageRank
//! algorithm". The model: every page carries a set of semantic properties;
//! a property's authority is the PageRank mass of the pages carrying it; a
//! candidate page is recommended when it shares authoritative properties with
//! the query's seed pages, weighted by the candidate's own PageRank.

use std::collections::{HashMap, HashSet};

/// A page→properties incidence plus PageRank scores.
#[derive(Debug, Default)]
pub struct Recommender {
    /// Properties per page (dense page ids).
    page_props: Vec<Vec<u32>>,
    /// PageRank score per page.
    scores: Vec<f64>,
    /// Authority per property id: Σ PageRank of carrying pages.
    prop_authority: HashMap<u32, f64>,
}

/// One recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Recommended page id.
    pub page: usize,
    /// Combined relevance score.
    pub score: f64,
    /// Properties shared with the seed set that contributed.
    pub shared_properties: Vec<u32>,
}

impl Recommender {
    /// Builds the recommender from per-page property lists and PageRank
    /// scores (same indexing).
    pub fn new(page_props: Vec<Vec<u32>>, scores: Vec<f64>) -> Recommender {
        assert_eq!(page_props.len(), scores.len());
        let mut prop_authority: HashMap<u32, f64> = HashMap::new();
        for (page, props) in page_props.iter().enumerate() {
            for &p in props {
                *prop_authority.entry(p).or_insert(0.0) += scores[page];
            }
        }
        Recommender {
            page_props,
            scores,
            prop_authority,
        }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.page_props.len()
    }

    /// Authority of a property (0 if unknown).
    pub fn property_authority(&self, prop: u32) -> f64 {
        self.prop_authority.get(&prop).copied().unwrap_or(0.0)
    }

    /// Properties ordered by descending authority — "properties that are
    /// scored high by the PageRank algorithm".
    pub fn top_properties(&self, k: usize) -> Vec<(u32, f64)> {
        let mut props: Vec<(u32, f64)> =
            self.prop_authority.iter().map(|(&p, &a)| (p, a)).collect();
        props.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        props.truncate(k);
        props
    }

    /// Recommends up to `k` pages related to the `seeds` (query-result pages),
    /// excluding the seeds themselves.
    pub fn recommend(&self, seeds: &[usize], k: usize) -> Vec<Recommendation> {
        let seed_set: HashSet<usize> = seeds.iter().copied().collect();
        // Properties present in the seed set, with their authority.
        let mut seed_props: HashMap<u32, f64> = HashMap::new();
        for &s in seeds {
            if let Some(props) = self.page_props.get(s) {
                for &p in props {
                    seed_props.insert(p, self.property_authority(p));
                }
            }
        }
        if seed_props.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Recommendation> = Vec::new();
        for (page, props) in self.page_props.iter().enumerate() {
            if seed_set.contains(&page) {
                continue;
            }
            let mut shared = Vec::new();
            let mut prop_score = 0.0;
            for &p in props {
                if let Some(&auth) = seed_props.get(&p) {
                    shared.push(p);
                    prop_score += auth;
                }
            }
            if shared.is_empty() {
                continue;
            }
            out.push(Recommendation {
                page,
                score: prop_score * self.scores[page],
                shared_properties: shared,
            });
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page))
        });
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pages: 0,1 share prop 10; 2 shares prop 10 too but low rank;
    /// 3 has unrelated prop 20.
    fn fixture() -> Recommender {
        Recommender::new(
            vec![vec![10, 20], vec![10], vec![10], vec![20]],
            vec![0.4, 0.3, 0.1, 0.2],
        )
    }

    #[test]
    fn property_authority_sums_pagerank() {
        let r = fixture();
        assert!((r.property_authority(10) - 0.8).abs() < 1e-12);
        assert!((r.property_authority(20) - 0.6).abs() < 1e-12);
        assert_eq!(r.property_authority(99), 0.0);
    }

    #[test]
    fn top_properties_ordered() {
        let r = fixture();
        let top = r.top_properties(2);
        assert_eq!(top[0].0, 10);
        assert_eq!(top[1].0, 20);
    }

    #[test]
    fn recommend_excludes_seeds_and_ranks_by_score() {
        let r = fixture();
        let recs = r.recommend(&[1], 10);
        let pages: Vec<usize> = recs.iter().map(|r| r.page).collect();
        assert!(!pages.contains(&1));
        // Page 0 (rank .4, shares 10) beats page 2 (rank .1, shares 10).
        assert_eq!(pages[0], 0);
        assert!(pages.contains(&2));
        // Page 3 shares nothing with the seed.
        assert!(!pages.contains(&3));
    }

    #[test]
    fn recommend_respects_k() {
        let r = fixture();
        assert_eq!(r.recommend(&[1], 1).len(), 1);
    }

    #[test]
    fn empty_seed_or_unknown_page() {
        let r = fixture();
        assert!(r.recommend(&[], 5).is_empty());
        assert!(r.recommend(&[999], 5).is_empty());
    }

    #[test]
    fn shared_properties_reported() {
        let r = fixture();
        let recs = r.recommend(&[0], 10);
        let rec3 = recs.iter().find(|r| r.page == 3).expect("page 3 shares 20");
        assert_eq!(rec3.shared_properties, vec![20]);
    }
}
