//! Cached PageRank solving: converged vectors keyed by
//! `(web-graph epoch, problem fingerprint, solver, tolerance, cap)`.
//!
//! PageRank is by far the most expensive computation in the serving stack
//! (hundreds of matvecs over the whole web graph), yet its input only
//! changes when pages or links change. [`RankCache`] memoizes
//! [`SolveResult`]s through the shared `sensormeta-cache` subsystem with the
//! [`Domain::WebGraph`] epoch as the validity dependency, so a rebuilt graph
//! invalidates every vector while parameter-identical re-solves between
//! writes are free.

use crate::problem::PageRankProblem;
use crate::solvers::{SolveResult, Solver};
use sensormeta_cache::{Cache, CacheConfig, CacheError, Domain, EpochClock, Fingerprint};
use std::sync::Arc;

/// Epoch domains a converged vector depends on.
const DEPS: &[Domain] = &[Domain::WebGraph];

/// Default byte budget: a handful of full vectors at demo scale, still
/// bounded at corpus scale.
const DEFAULT_CAPACITY: usize = 8 << 20;

fn weigh(r: &SolveResult) -> usize {
    (r.x.len() + r.residuals.len()) * std::mem::size_of::<f64>()
}

/// Compute-error wrapper carrying an interrupted solve's partial result out
/// of the cache path (the subsystem requires `Display` errors).
struct Interrupted(SolveResult);

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solve interrupted after {} iterations",
            self.0.iterations
        )
    }
}

/// A process-wide memo of converged PageRank vectors.
#[derive(Debug)]
pub struct RankCache {
    cache: Cache<SolveResult>,
}

impl Default for RankCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RankCache {
    /// A cache with the default byte budget, validated against the global
    /// epoch clock.
    pub fn new() -> RankCache {
        RankCache {
            cache: Cache::new(CacheConfig::new("rank", DEFAULT_CAPACITY, DEPS), weigh),
        }
    }

    /// A cache validated against an explicit clock — isolation for tests,
    /// where the process-global clock is bumped by unrelated mutations.
    pub fn with_clock(clock: Arc<EpochClock>) -> RankCache {
        RankCache {
            cache: Cache::with_clock(
                CacheConfig::new("rank", DEFAULT_CAPACITY, DEPS),
                weigh,
                clock,
            ),
        }
    }

    /// Solves (or replays a converged solve of) `problem` with `solver`.
    /// The boolean is true when the result came out of the cache.
    pub fn solve(
        &self,
        solver: &dyn Solver,
        problem: &PageRankProblem,
        tol: f64,
        max_iter: usize,
    ) -> (Arc<SolveResult>, bool) {
        let key = Fingerprint::new()
            .str(solver.name())
            .u64(problem.fingerprint())
            .f64(tol)
            .usize(max_iter)
            .finish();
        // Interrupted solves (ambient deadline hit mid-iteration) surface as
        // compute errors so they are neither cached as positives nor — the
        // `|_| false` filter — recorded as negatives: the next request with
        // headroom re-solves from scratch.
        let (result, status) = self.cache.get_or_compute_filtered(
            key,
            None,
            || {
                let r = solver.solve(problem, tol, max_iter);
                if r.interrupted {
                    Err(Interrupted(r))
                } else {
                    Ok(r)
                }
            },
            |_| false,
        );
        match result {
            Ok(v) => (v, status == sensormeta_cache::Status::Hit),
            // Our own interrupted solve: hand back the partial vector
            // uncached so the caller can degrade.
            Err(CacheError::Compute(Interrupted(partial))) => (Arc::new(partial), false),
            // A waiter raced a leader that got interrupted, or a wait timed
            // out (impossible with no deadline). Solve directly, uncached.
            Err(CacheError::Negative(_) | CacheError::WaitTimeout) => {
                (Arc::new(solver.solve(problem, tol, max_iter)), false)
            }
        }
    }

    /// Drops every memoized vector.
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// Instance statistics (hits, misses, resident bytes …).
    pub fn stats(&self) -> sensormeta_cache::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TransitionMatrix;
    use crate::solvers::PowerIteration;
    use sensormeta_graph::CsrGraph;

    fn problem() -> PageRankProblem {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)], false);
        PageRankProblem::new(TransitionMatrix::from_graph(&g))
    }

    #[test]
    fn replays_identical_solves() {
        let cache = RankCache::with_clock(Arc::new(EpochClock::new()));
        let p = problem();
        let (first, cached1) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        let (second, cached2) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        assert!(!cached1);
        assert!(cached2, "identical parameters must replay");
        assert_eq!(first.x, second.x);
        assert!(Arc::ptr_eq(&first, &second), "same shared vector");
    }

    #[test]
    fn distinct_parameters_solve_separately() {
        let cache = RankCache::with_clock(Arc::new(EpochClock::new()));
        let p = problem();
        let (_, _) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        let (_, cached) = cache.solve(&PowerIteration, &p, 1e-6, 200);
        assert!(!cached, "different tolerance is a different key");
    }

    #[test]
    fn interrupted_solves_are_not_cached() {
        let cache = RankCache::with_clock(Arc::new(EpochClock::new()));
        let p = problem();
        let expired = sensormeta_resil::Deadline::within(std::time::Duration::ZERO);
        let (partial, cached) = {
            let _scope = sensormeta_resil::deadline_scope(expired);
            cache.solve(&PowerIteration, &p, 1e-10, 200)
        };
        assert!(!cached);
        assert!(partial.interrupted);
        // Neither a positive nor a negative was recorded: with headroom the
        // same key solves for real and then replays.
        let (full, cached) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        assert!(!cached, "interrupted result must not have been cached");
        assert!(full.converged);
        let (_, cached) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        assert!(cached);
    }

    #[test]
    fn graph_epoch_bump_invalidates() {
        let clk = Arc::new(EpochClock::new());
        let cache = RankCache::with_clock(Arc::clone(&clk));
        let p = problem();
        let (_, _) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        clk.bump(Domain::WebGraph);
        let (_, cached) = cache.solve(&PowerIteration, &p, 1e-10, 200);
        assert!(!cached, "web-graph epoch bump must invalidate");
    }
}
