//! # sensormeta-rank
//!
//! The paper's ranking layer: PageRank over the **double linking structure**
//! of metadata pages (semantic RDF-property links + ordinary hyperlinks),
//! with the eigen formulation (Eq. 3) and the linear-system formulation
//! (Eq. 5) solved by six iterative methods — power iteration, Jacobi,
//! Gauss–Seidel, restarted GMRES, Arnoldi, and BiCGSTAB — plus the
//! property-authority recommendation mechanism.
//!
//! ```
//! use sensormeta_graph::CsrGraph;
//! use sensormeta_rank::{PageRankProblem, TransitionMatrix, Solver, GaussSeidel};
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false);
//! let p = PageRankProblem::new(TransitionMatrix::from_graph(&g));
//! let r = GaussSeidel.solve(&p, 1e-10, 1000);
//! assert!(r.converged);
//! assert!((r.x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod cached;
pub mod problem;
pub mod recommend;
pub mod solvers;

pub use cached::RankCache;
pub use problem::{PageRankProblem, TransitionMatrix};
pub use recommend::{Recommendation, Recommender};
pub use solvers::{
    all_solvers, Arnoldi, BiCgStab, GaussSeidel, Gmres, Jacobi, PowerIteration, SolveResult,
    Solver, Sor,
};
