//! PageRank problem setup: transition matrices and the double-link model.
//!
//! Following the paper's Section III, the web graph adjacency matrix `A` is
//! row-normalized into `P` (`P_ij = A_ij / deg(i)`); dangling rows are patched
//! with a distribution `u` (Eq. 1) and teleportation is mixed in with
//! coefficient `c` (Eq. 2). The solvers work with the substochastic `Pᵀ`
//! stored explicitly in weighted CSR form (in-links with weights), which both
//! matvec-style methods (power, GMRES, BiCGSTAB, Arnoldi) and sweep-style
//! methods (Jacobi, Gauss–Seidel) can consume.
//!
//! The paper's non-trivial extension is the **double-link structure**: every
//! metadata page participates in a semantic (RDF property) link graph and a
//! plain hyperlink graph, and "not all of the metadata pages have semantic
//! attributes", so the two must be combined per page. [`TransitionMatrix::double_link`]
//! blends the two row distributions with weight `alpha`, falling back to
//! whichever structure a page actually has.

use sensormeta_graph::CsrGraph;
use sensormeta_par::Pool;

/// Rows per parallel matvec chunk. Fixed: chunk boundaries are part of the
/// determinism contract (see `sensormeta-par`), so results are bit-for-bit
/// identical at every thread count.
const ROW_CHUNK: usize = 512;
/// Elements per parallel reduction chunk (same contract).
const SUM_CHUNK: usize = 2048;

/// Transposed, row-substochastic transition matrix in weighted CSR form:
/// for each node `i`, the list of `(j, P_ji)` in-links. Dangling rows of `P`
/// are all-zero here; solvers handle them via normalization or an explicit
/// dangling correction.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    n: usize,
    /// Row offsets into `src`/`weight` for each target node.
    offsets: Vec<usize>,
    /// Source node of each in-link.
    src: Vec<u32>,
    /// Transition probability P[src → target].
    weight: Vec<f64>,
    /// Nodes whose row of `P` sums to zero (dangling).
    dangling: Vec<usize>,
}

impl TransitionMatrix {
    /// Builds `Pᵀ` from a directed graph with uniform out-link weights.
    pub fn from_graph(g: &CsrGraph) -> TransitionMatrix {
        let n = g.node_count();
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for u in 0..n {
            let deg = g.out_degree(u);
            if deg == 0 {
                continue;
            }
            let w = 1.0 / deg as f64;
            for &v in g.neighbors(u) {
                entries[v].push((u as u32, w));
            }
        }
        Self::from_entries(n, entries, g.dangling_nodes())
    }

    /// Builds the paper's double-link transition: for each page, the
    /// out-distribution is `alpha`·(semantic links) + `(1−alpha)`·(hyperlinks),
    /// with full weight given to whichever structure exists when the other is
    /// missing. A page with neither is dangling.
    pub fn double_link(semantic: &CsrGraph, hyperlink: &CsrGraph, alpha: f64) -> TransitionMatrix {
        assert_eq!(
            semantic.node_count(),
            hyperlink.node_count(),
            "both link graphs must cover the same page set"
        );
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let n = semantic.node_count();
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut dangling = Vec::new();
        for u in 0..n {
            let ds = semantic.out_degree(u);
            let dh = hyperlink.out_degree(u);
            let (ws, wh) = match (ds, dh) {
                (0, 0) => {
                    dangling.push(u);
                    continue;
                }
                (_, 0) => (1.0, 0.0),
                (0, _) => (0.0, 1.0),
                _ => (alpha, 1.0 - alpha),
            };
            if ws > 0.0 {
                let w = ws / ds as f64;
                for &v in semantic.neighbors(u) {
                    entries[v].push((u as u32, w));
                }
            }
            if wh > 0.0 {
                let w = wh / dh as f64;
                for &v in hyperlink.neighbors(u) {
                    entries[v].push((u as u32, w));
                }
            }
        }
        Self::from_entries(n, entries, dangling)
    }

    fn from_entries(
        n: usize,
        entries: Vec<Vec<(u32, f64)>>,
        dangling: Vec<usize>,
    ) -> TransitionMatrix {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut src = Vec::new();
        let mut weight = Vec::new();
        for mut row in entries {
            // Merge parallel entries (same source appearing in both link
            // structures pointing to the same target).
            row.sort_by_key(|(s, _)| *s);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
            for (s, w) in row {
                match merged.last_mut() {
                    Some((ls, lw)) if *ls == s => *lw += w,
                    _ => merged.push((s, w)),
                }
            }
            for (s, w) in merged {
                src.push(s);
                weight.push(w);
            }
            offsets.push(src.len());
        }
        TransitionMatrix {
            n,
            offsets,
            src,
            weight,
            dangling,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored transitions.
    pub fn nnz(&self) -> usize {
        self.src.len()
    }

    /// The dangling node list (indicator `d` of Eq. 1).
    pub fn dangling(&self) -> &[usize] {
        &self.dangling
    }

    /// Computes `y = Pᵀ x` (substochastic; dangling mass is dropped and must
    /// be re-injected by the caller when needed) on the global pool.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_in(Pool::global(), x, y);
    }

    /// [`Self::matvec`] on an explicit pool: the output rows are partitioned
    /// into fixed-size chunks and filled in parallel. Each row is written by
    /// exactly one chunk, so the result is identical to a serial loop.
    pub fn matvec_in(&self, pool: &Pool, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        pool.par_chunks_mut(y, ROW_CHUNK, |_, base, rows| {
            for (r, yi) in rows.iter_mut().enumerate() {
                let i = base + r;
                let mut acc = 0.0;
                for k in self.offsets[i]..self.offsets[i + 1] {
                    acc += self.weight[k] * x[self.src[k] as usize];
                }
                *yi = acc;
            }
        });
    }

    /// In-links of node `i` as `(source, weight)` pairs — the access pattern
    /// Gauss–Seidel sweeps need.
    pub fn in_links(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.offsets[i]..self.offsets[i + 1]).map(move |k| (self.src[k] as usize, self.weight[k]))
    }

    /// Sum of dangling components of `x` (`dᵀx` of Eq. 4).
    pub fn dangling_mass(&self, x: &[f64]) -> f64 {
        self.dangling_mass_in(Pool::global(), x)
    }

    /// [`Self::dangling_mass`] on an explicit pool (deterministic chunked
    /// reduction).
    pub fn dangling_mass_in(&self, pool: &Pool, x: &[f64]) -> f64 {
        pool.par_sum(self.dangling.len(), SUM_CHUNK, |k| x[self.dangling[k]])
    }

    /// Order-sensitive fingerprint of the full CSR structure (offsets,
    /// sources, weights, dangling list) — the cache key component that ties
    /// a converged PageRank vector to the exact matrix it was solved on.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = sensormeta_cache::Fingerprint::new().usize(self.n);
        for &o in &self.offsets {
            fp = fp.usize(o);
        }
        for &s in &self.src {
            fp = fp.u64(u64::from(s));
        }
        for &w in &self.weight {
            fp = fp.f64(w);
        }
        for &d in &self.dangling {
            fp = fp.usize(d);
        }
        fp.finish()
    }

    /// Verifies column-stochasticity of `Pᵀ` up to dangling columns; test
    /// support.
    pub fn check_substochastic(&self, tol: f64) -> bool {
        let mut colsum = vec![0.0f64; self.n];
        for i in 0..self.n {
            for k in self.offsets[i]..self.offsets[i + 1] {
                colsum[self.src[k] as usize] += self.weight[k];
            }
        }
        let is_dangling: Vec<bool> = {
            let mut v = vec![false; self.n];
            for &d in &self.dangling {
                v[d] = true;
            }
            v
        };
        colsum.iter().enumerate().all(|(j, &s)| {
            if is_dangling[j] {
                s.abs() < tol
            } else {
                (s - 1.0).abs() < tol
            }
        })
    }
}

/// A complete PageRank instance: matrix, teleportation coefficient `c`
/// (Eq. 2; the paper notes `0.85 ≤ c < 1` in practice), and the
/// teleportation/dangling distribution `u` (uniform unless personalized).
#[derive(Debug, Clone)]
pub struct PageRankProblem {
    /// The transposed transition matrix.
    pub matrix: TransitionMatrix,
    /// Teleportation coefficient `c`.
    pub c: f64,
    /// Teleportation distribution `u` (sums to 1).
    pub u: Vec<f64>,
}

impl PageRankProblem {
    /// Standard problem: uniform teleportation, `c = 0.85`.
    pub fn new(matrix: TransitionMatrix) -> PageRankProblem {
        Self::with_c(matrix, 0.85)
    }

    /// Problem with explicit `c`.
    pub fn with_c(matrix: TransitionMatrix, c: f64) -> PageRankProblem {
        assert!((0.0..1.0).contains(&c), "teleportation c must be in [0,1)");
        let n = matrix.n();
        let u = vec![1.0 / n.max(1) as f64; n];
        PageRankProblem { matrix, c, u }
    }

    /// Personalized problem: `u` is normalized to sum 1.
    pub fn personalized(matrix: TransitionMatrix, c: f64, mut u: Vec<f64>) -> PageRankProblem {
        assert_eq!(u.len(), matrix.n());
        let sum: f64 = u.iter().sum();
        assert!(sum > 0.0, "personalization vector must have positive mass");
        for v in &mut u {
            *v /= sum;
        }
        PageRankProblem { matrix, c, u }
    }

    /// Number of pages.
    pub fn n(&self) -> usize {
        self.matrix.n()
    }

    /// One full Google-matrix application: `y = (P″)ᵀ x` of Eq. 3, i.e.
    /// `c·Pᵀx + c·u·(dᵀx) + (1−c)·u·(eᵀx)`, on the global pool.
    pub fn google_matvec(&self, x: &[f64], y: &mut [f64]) {
        self.google_matvec_in(Pool::global(), x, y);
    }

    /// [`Self::google_matvec`] on an explicit pool. The matvec, the two
    /// mass reductions and the teleportation mix each run as deterministic
    /// chunked regions.
    pub fn google_matvec_in(&self, pool: &Pool, x: &[f64], y: &mut [f64]) {
        self.matrix.matvec_in(pool, x, y);
        let dangling = self.matrix.dangling_mass_in(pool, x);
        let total = pool.par_sum(x.len(), SUM_CHUNK, |i| x[i]);
        let correction = self.c * dangling + (1.0 - self.c) * total;
        let c = self.c;
        let u = &self.u;
        pool.par_chunks_mut(y, ROW_CHUNK, |_, base, ys| {
            for (r, yi) in ys.iter_mut().enumerate() {
                *yi = c * *yi + correction * u[base + r];
            }
        });
    }

    /// Fingerprint of the whole instance: matrix structure, `c`, and the
    /// teleportation distribution.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = sensormeta_cache::Fingerprint::new()
            .u64(self.matrix.fingerprint())
            .f64(self.c);
        for &v in &self.u {
            fp = fp.f64(v);
        }
        fp.finish()
    }

    /// Residual of a candidate solution under the eigen formulation:
    /// `‖(P″)ᵀ x − x‖₁` for the L1-normalized `x`.
    pub fn residual(&self, x: &[f64]) -> f64 {
        self.residual_in(Pool::global(), x)
    }

    /// [`Self::residual`] on an explicit pool.
    pub fn residual_in(&self, pool: &Pool, x: &[f64]) -> f64 {
        let sum: f64 = x.iter().sum();
        if sum <= 0.0 {
            return f64::INFINITY;
        }
        let xn: Vec<f64> = x.iter().map(|v| v / sum).collect();
        let mut y = vec![0.0; self.n()];
        self.google_matvec_in(pool, &xn, &mut y);
        pool.par_sum(y.len(), SUM_CHUNK, |i| (y[i] - xn[i]).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_dangling() -> CsrGraph {
        // 0 → 1 → 2 (2 dangling), 0 → 2
        CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)], false)
    }

    #[test]
    fn matrix_shape_and_dangling() {
        let m = TransitionMatrix::from_graph(&chain_with_dangling());
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.dangling(), &[2]);
        assert!(m.check_substochastic(1e-12));
    }

    #[test]
    fn matvec_distributes_rank() {
        let m = TransitionMatrix::from_graph(&chain_with_dangling());
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        m.matvec(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.5, 0.5]);
    }

    #[test]
    fn google_matvec_preserves_total_mass() {
        let m = TransitionMatrix::from_graph(&chain_with_dangling());
        let p = PageRankProblem::new(m);
        let x = vec![1.0 / 3.0; 3];
        let mut y = vec![0.0; 3];
        p.google_matvec(&x, &mut y);
        let sum: f64 = y.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-12,
            "P'' is stochastic, mass preserved"
        );
    }

    #[test]
    fn double_link_blends_structures() {
        // Page 0 has both structures; page 1 only hyperlinks; page 2 neither.
        let sem = CsrGraph::from_edges(3, &[(0, 1)], false);
        let hyp = CsrGraph::from_edges(3, &[(0, 2), (1, 2)], false);
        let m = TransitionMatrix::double_link(&sem, &hyp, 0.7);
        assert_eq!(m.dangling(), &[2]);
        assert!(m.check_substochastic(1e-12));
        // Row 0 of P: 0.7 to page 1 (semantic), 0.3 to page 2 (hyperlink).
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        m.matvec(&x, &mut y);
        assert!((y[1] - 0.7).abs() < 1e-12);
        assert!((y[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn double_link_fallback_when_one_missing() {
        let sem = CsrGraph::from_edges(2, &[], false);
        let hyp = CsrGraph::from_edges(2, &[(0, 1)], false);
        let m = TransitionMatrix::double_link(&sem, &hyp, 0.9);
        let x = vec![1.0, 0.0];
        let mut y = vec![0.0; 2];
        m.matvec(&x, &mut y);
        assert!((y[1] - 1.0).abs() < 1e-12, "hyperlink gets full weight");
    }

    #[test]
    fn double_link_merges_parallel_edges() {
        // Same edge in both structures: weights must merge into one entry.
        let sem = CsrGraph::from_edges(2, &[(0, 1)], false);
        let hyp = CsrGraph::from_edges(2, &[(0, 1)], false);
        let m = TransitionMatrix::double_link(&sem, &hyp, 0.5);
        assert_eq!(m.nnz(), 1);
        let x = vec![1.0, 0.0];
        let mut y = vec![0.0; 2];
        m.matvec(&x, &mut y);
        assert!((y[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn personalization_normalizes() {
        let m = TransitionMatrix::from_graph(&chain_with_dangling());
        let p = PageRankProblem::personalized(m, 0.85, vec![2.0, 0.0, 2.0]);
        assert!((p.u.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p.u[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let g = CsrGraph::from_edges(1, &[], false);
        TransitionMatrix::double_link(&g, &g, 1.5);
    }
}
