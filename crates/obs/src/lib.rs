//! # sensormeta-obs
//!
//! Zero-external-dependency observability for the sensormeta stack: a
//! [`Registry`] of named counters, gauges and log-linear-bucket histograms,
//! lightweight [`Span`]s that record durations on drop (with a thread-local
//! parent stack separating exclusive from inclusive time), and deterministic
//! Prometheus-text-format and JSON exposition.
//!
//! Design rules:
//!
//! - **Atomics only on the hot path.** Incrementing a [`Counter`], moving a
//!   [`Gauge`] or recording into a [`Histogram`] is a handful of relaxed
//!   atomic operations — no locks, no allocation. Locks (`parking_lot`) are
//!   taken only to register or look up a metric by name; hot call sites can
//!   cache the returned handle.
//! - **One process-wide default registry.** Library crates record into
//!   [`global()`] with one-line call sites; tests construct their own
//!   [`Registry::new()`] for isolation, and [`Registry::set_enabled`] turns
//!   a registry into a no-op for overhead measurements.
//! - **Deterministic exposition.** Metric names are sanitized to
//!   `[a-z0-9_:]`, output is sorted by name, and histogram buckets have
//!   fixed integer boundaries, so `/metrics` output is snapshot-testable.
//!
//! ```
//! use sensormeta_obs::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("requests_total").inc();
//! reg.histogram("latency_us").record(250);
//! {
//!     let _outer = reg.span("outer");
//!     let _inner = reg.span("inner"); // exclusive time subtracts this
//! }
//! let text = reg.render_prometheus();
//! assert!(text.contains("requests_total 1"));
//! ```

#![warn(missing_docs)]

mod expose;
mod metrics;
mod registry;
mod span;

pub use expose::bucket_boundary;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use span::Span;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry. Instrumented library code records
/// here; the server exposes it at `/metrics` and the CLI dumps it via
/// `sensormeta stats`.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Counter handle from the [`global()`] registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Gauge handle from the [`global()`] registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Histogram handle from the [`global()`] registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Enters a [`Span`] on the [`global()`] registry. The returned guard
/// records `<name>_us` (inclusive) and `<name>_excl_us` (exclusive)
/// histograms when dropped.
pub fn span(name: &'static str) -> Span {
    global().span(name)
}

/// Sanitizes a metric name: ASCII-lowercased, any character outside
/// `[a-z0-9_:]` becomes `_`. Applied on every registration so call sites
/// may pass human-oriented names (e.g. solver display names).
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' | ':' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_lowercases_and_replaces() {
        assert_eq!(sanitize_name("Gauss-Seidel"), "gauss_seidel");
        assert_eq!(sanitize_name("http_2xx"), "http_2xx");
        assert_eq!(sanitize_name("a b/c"), "a_b_c");
    }

    #[test]
    fn global_is_shared() {
        counter("obs_selftest_total").add(2);
        assert!(global().render_prometheus().contains("obs_selftest_total"));
    }
}
