//! Lightweight timing spans with exclusive/inclusive accounting.
//!
//! A [`Span`] measures the wall time between `enter` and drop and records it
//! into two histograms: `<name>_us` (inclusive — the whole interval) and
//! `<name>_excl_us` (exclusive — the interval minus time spent inside child
//! spans entered on the same thread while this one was open). The parentage
//! is tracked with a thread-local stack of child-time accumulators, so
//! nesting costs one `Vec` push/pop and no allocation after warm-up.

use crate::registry::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// One accumulator per open span on this thread: nanoseconds consumed
    /// by already-closed child spans.
    static CHILD_NANOS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records on drop. Obtain via [`Registry::span`] or
/// [`crate::span`].
#[derive(Debug)]
pub struct Span {
    /// `None` when the registry was disabled at entry — the drop is a no-op
    /// and nothing was pushed on the thread-local stack.
    registry: Option<Registry>,
    name: &'static str,
    start: Instant,
}

impl Span {
    pub(crate) fn enter(registry: &Registry, name: &'static str) -> Span {
        if !registry.is_enabled() {
            return Span {
                registry: None,
                name,
                start: Instant::now(),
            };
        }
        CHILD_NANOS.with(|s| s.borrow_mut().push(0));
        Span {
            registry: Some(registry.clone()),
            name,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(registry) = self.registry.take() else {
            return;
        };
        let nanos = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let child_nanos = CHILD_NANOS.with(|s| {
            let mut stack = s.borrow_mut();
            let mine = stack.pop().unwrap_or(0);
            // Credit the whole inclusive interval to the parent, if any.
            if let Some(parent) = stack.last_mut() {
                *parent += nanos;
            }
            mine
        });
        let incl_us = nanos / 1_000;
        let excl_us = nanos.saturating_sub(child_nanos) / 1_000;
        registry
            .histogram(&format!("{}_us", self.name))
            .record(incl_us);
        registry
            .histogram(&format!("{}_excl_us", self.name))
            .record(excl_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn span_records_inclusive_and_exclusive() {
        let reg = Registry::new();
        {
            let _outer = reg.span("outer");
            spin(Duration::from_millis(8));
            {
                let _inner = reg.span("inner");
                spin(Duration::from_millis(8));
            }
        }
        let outer = reg.histogram("outer_us").snapshot();
        let outer_excl = reg.histogram("outer_excl_us").snapshot();
        let inner = reg.histogram("inner_us").snapshot();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Inclusive outer covers both phases; exclusive outer only its own.
        assert!(outer.sum >= 15_000, "outer inclusive {}us", outer.sum);
        assert!(inner.sum >= 7_000, "inner {}us", inner.sum);
        assert!(
            outer_excl.sum < outer.sum,
            "exclusive {} must be below inclusive {}",
            outer_excl.sum,
            outer.sum
        );
        // Exclusive ≈ inclusive − child inclusive (within scheduling slack).
        let expected = outer.sum - inner.sum;
        let diff = outer_excl.sum.abs_diff(expected);
        assert!(
            diff <= 2_000,
            "exclusive {} vs expected {} (diff {}us)",
            outer_excl.sum,
            expected,
            diff
        );
    }

    #[test]
    fn sibling_spans_both_credit_parent() {
        let reg = Registry::new();
        {
            let _outer = reg.span("p");
            {
                let _a = reg.span("a");
                spin(Duration::from_millis(5));
            }
            {
                let _b = reg.span("b");
                spin(Duration::from_millis(5));
            }
        }
        let p_excl = reg.histogram("p_excl_us").snapshot();
        let p = reg.histogram("p_us").snapshot();
        assert!(p.sum >= 9_000);
        assert!(
            p_excl.sum + 8_000 < p.sum,
            "both children subtracted: excl {} incl {}",
            p_excl.sum,
            p.sum
        );
    }

    #[test]
    fn disabled_registry_spans_are_noops() {
        let reg = Registry::new();
        reg.set_enabled(false);
        {
            let _s = reg.span("quiet");
        }
        reg.set_enabled(true);
        assert_eq!(reg.histogram("quiet_us").count(), 0);
    }

    #[test]
    fn unbalanced_enable_toggle_keeps_stack_consistent() {
        // Disabling mid-span must not corrupt the thread-local stack: the
        // span captured its decision at entry.
        let reg = Registry::new();
        {
            let _outer = reg.span("t_outer");
            reg.set_enabled(false);
            {
                let _inner = reg.span("t_inner"); // no-op, no push
            }
            reg.set_enabled(true);
        }
        assert_eq!(reg.histogram("t_outer_us").count(), 1);
        assert_eq!(reg.histogram("t_inner_us").count(), 0);
        CHILD_NANOS.with(|s| assert!(s.borrow().is_empty()));
    }
}
