//! Deterministic exposition: Prometheus text format and JSON.
//!
//! Output is sorted by metric name (counters, then gauges, then histograms)
//! and every number is formatted deterministically, so renders of identical
//! registries are byte-identical — `/metrics` is snapshot-testable.

use crate::metrics::{bucket_upper, Histogram};
use crate::registry::Registry;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Formats an `f64` deterministically for both formats: integral values
/// print without a fractional part, non-finite values print as Prometheus
/// spells them (JSON rendering maps those to `null`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as cumulative `_bucket{le="…"}` samples over the non-empty buckets
    /// plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        self.with_tables(|t| {
            for (name, cell) in &t.counters {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", cell.load(Ordering::Relaxed));
            }
            for (name, cell) in &t.gauges {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(
                    out,
                    "{name} {}",
                    fmt_f64(f64::from_bits(cell.load(Ordering::Relaxed)))
                );
            }
            for (name, core) in &t.hists {
                let h = Histogram {
                    enabled: Arc::new(std::sync::atomic::AtomicBool::new(true)),
                    core: Arc::clone(core),
                };
                let snap = h.snapshot();
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for (upper, n) in &snap.buckets {
                    cum += n;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                let _ = writeln!(out, "{name}_sum {}", snap.sum);
                let _ = writeln!(out, "{name}_count {}", snap.count);
            }
        });
        out
    }

    /// Renders every metric as one JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,max,p50,p90,p95,p99}}}`.
    /// Hand-rolled (metric names are already sanitized to `[a-z0-9_:]`, so
    /// no escaping is needed); non-finite gauges render as `null`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        self.with_tables(|t| {
            out.push_str("\"counters\":{");
            for (i, (name, cell)) in t.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{}", cell.load(Ordering::Relaxed));
            }
            out.push_str("},\"gauges\":{");
            for (i, (name, cell)) in t.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let v = f64::from_bits(cell.load(Ordering::Relaxed));
                if v.is_finite() {
                    let _ = write!(out, "\"{name}\":{}", fmt_f64(v));
                } else {
                    let _ = write!(out, "\"{name}\":null");
                }
            }
            out.push_str("},\"histograms\":{");
            for (i, (name, core)) in t.hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let h = Histogram {
                    enabled: Arc::new(std::sync::atomic::AtomicBool::new(true)),
                    core: Arc::clone(core),
                };
                let s = h.snapshot();
                let _ = write!(
                    out,
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
                    s.count, s.sum, s.max, s.p50, s.p90, s.p95, s.p99
                );
            }
            out.push('}');
        });
        out.push('}');
        out
    }
}

/// The `le` boundary label of histogram bucket `i` — exposed for tests that
/// validate exposition against the bucket layout.
pub fn bucket_boundary(i: usize) -> u64 {
    bucket_upper(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("b_total").add(7);
        reg.counter("a_total").inc();
        reg.gauge("residual").set(0.25);
        let h = reg.histogram("lat_us");
        h.record(3);
        h.record(3);
        h.record(200);
        reg
    }

    #[test]
    fn prometheus_render_is_sorted_and_pinned() {
        let text = sample_registry().render_prometheus();
        let expected = "\
# TYPE a_total counter
a_total 1
# TYPE b_total counter
b_total 7
# TYPE residual gauge
residual 0.25
# TYPE lat_us histogram
lat_us_bucket{le=\"3\"} 2
lat_us_bucket{le=\"207\"} 3
lat_us_bucket{le=\"+Inf\"} 3
lat_us_sum 206
lat_us_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn render_is_deterministic_across_registries() {
        assert_eq!(
            sample_registry().render_prometheus(),
            sample_registry().render_prometheus()
        );
        assert_eq!(
            sample_registry().render_json(),
            sample_registry().render_json()
        );
    }

    #[test]
    fn json_render_pinned() {
        let json = sample_registry().render_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a_total\":1,\"b_total\":7},\
             \"gauges\":{\"residual\":0.25},\
             \"histograms\":{\"lat_us\":{\"count\":3,\"sum\":206,\"max\":200,\
             \"p50\":3,\"p90\":207,\"p95\":207,\"p99\":207}}}"
        );
    }

    #[test]
    fn fmt_f64_forms() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
    }

    /// A tiny Prometheus-text parser: validates that every line is either a
    /// `# TYPE` comment or `name[{le="…"}] value`, that bucket counts are
    /// cumulative, and that every histogram closes with `+Inf`, `_sum` and
    /// `_count`. The CI smoke test reuses this shape on a live scrape.
    pub(crate) fn parse_prometheus(text: &str) -> Result<usize, String> {
        let mut samples = 0usize;
        let mut last_bucket: Option<(String, u64)> = None;
        for (ln, line) in text.lines().enumerate() {
            let ln = ln + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or(format!("line {ln}: TYPE without name"))?;
                let kind = parts
                    .next()
                    .ok_or(format!("line {ln}: TYPE without kind"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(format!("line {ln}: unknown kind {kind}"));
                }
                if name.is_empty() {
                    return Err(format!("line {ln}: empty name"));
                }
                continue;
            }
            let (name_part, value) = line
                .rsplit_once(' ')
                .ok_or(format!("line {ln}: no value"))?;
            let value: f64 = value
                .parse()
                .or(Err(format!("line {ln}: bad value {value}")))?;
            if let Some((name, labels)) = name_part.split_once('{') {
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix("\"}"))
                    .ok_or(format!("line {ln}: bad labels {labels}"))?;
                if le != "+Inf" {
                    le.parse::<u64>()
                        .or(Err(format!("line {ln}: bad le {le}")))?;
                }
                let cum = value as u64;
                if let Some((prev_name, prev_cum)) = &last_bucket {
                    if prev_name == name && cum < *prev_cum {
                        return Err(format!("line {ln}: bucket counts not cumulative"));
                    }
                }
                last_bucket = Some((name.to_string(), cum));
            } else {
                last_bucket = None;
                if name_part.is_empty() {
                    return Err(format!("line {ln}: empty metric name"));
                }
            }
            samples += 1;
        }
        Ok(samples)
    }

    #[test]
    fn tiny_parser_accepts_own_render() {
        let n =
            parse_prometheus(&sample_registry().render_prometheus()).expect("render must parse");
        // a_total, b_total, residual, 3 buckets + sum + count.
        assert_eq!(n, 8);
    }

    #[test]
    fn tiny_parser_rejects_garbage() {
        assert!(parse_prometheus("name_without_value\n").is_err());
        assert!(parse_prometheus("x{le=\"bogus\"} 1\n").is_err());
        assert!(parse_prometheus("# TYPE x summary\nx 1\n").is_err());
    }

    #[test]
    fn bucket_boundary_reexport() {
        assert_eq!(bucket_boundary(0), 0);
        assert!(bucket_boundary(100) > bucket_boundary(99));
    }
}
