//! The metric registry: named handles, registration, and reset.

use crate::metrics::{Counter, Gauge, HistCore, Histogram};
use crate::sanitize_name;
use crate::span::Span;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared metric tables. `BTreeMap` keeps exposition naturally sorted.
#[derive(Debug, Default)]
pub(crate) struct Tables {
    pub(crate) counters: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) gauges: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) hists: BTreeMap<String, Arc<HistCore>>,
}

#[derive(Debug)]
struct Inner {
    enabled: Arc<AtomicBool>,
    tables: RwLock<Tables>,
}

/// A registry of named metrics. Cloning is cheap (`Arc`); all clones share
/// the same metrics. Lookups by name take a read lock (write lock on first
/// registration only); the returned handles record lock-free.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                enabled: Arc::new(AtomicBool::new(true)),
                tables: RwLock::new(Tables::default()),
            }),
        }
    }

    /// Enables or disables recording. Disabled handles (including ones
    /// handed out earlier) short-circuit with one relaxed load — the no-op
    /// mode used to measure instrumentation overhead.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Counter handle for `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let key = sanitize_name(name);
        if let Some(cell) = self.inner.tables.read().counters.get(&key) {
            return Counter {
                enabled: Arc::clone(&self.inner.enabled),
                cell: Arc::clone(cell),
            };
        }
        let mut tables = self.inner.tables.write();
        let cell = Arc::clone(
            tables
                .counters
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Counter {
            enabled: Arc::clone(&self.inner.enabled),
            cell,
        }
    }

    /// Gauge handle for `name` (registered on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let key = sanitize_name(name);
        if let Some(cell) = self.inner.tables.read().gauges.get(&key) {
            return Gauge {
                enabled: Arc::clone(&self.inner.enabled),
                cell: Arc::clone(cell),
            };
        }
        let mut tables = self.inner.tables.write();
        let cell = Arc::clone(
            tables
                .gauges
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Gauge {
            enabled: Arc::clone(&self.inner.enabled),
            cell,
        }
    }

    /// Histogram handle for `name` (registered on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let key = sanitize_name(name);
        if let Some(core) = self.inner.tables.read().hists.get(&key) {
            return Histogram {
                enabled: Arc::clone(&self.inner.enabled),
                core: Arc::clone(core),
            };
        }
        let mut tables = self.inner.tables.write();
        let core = tables
            .hists
            .entry(key)
            .or_insert_with(|| Arc::new(HistCore::new()));
        Histogram {
            enabled: Arc::clone(&self.inner.enabled),
            core: Arc::clone(core),
        }
    }

    /// Enters a span named `name`. On drop the guard records the inclusive
    /// duration into `<name>_us` and the exclusive duration (inclusive
    /// minus time spent in child spans on the same thread) into
    /// `<name>_excl_us`, both in microseconds.
    pub fn span(&self, name: &'static str) -> Span {
        Span::enter(self, name)
    }

    /// Removes every metric and its accumulated values (test/bench
    /// isolation). Handles handed out earlier keep recording into detached
    /// cells that no longer appear in exposition.
    pub fn reset(&self) {
        let mut tables = self.inner.tables.write();
        *tables = Tables::default();
    }

    /// Runs `f` over the sorted tables (exposition entry point).
    pub(crate) fn with_tables<R>(&self, f: impl FnOnce(&Tables) -> R) -> R {
        f(&self.inner.tables.read())
    }
}
