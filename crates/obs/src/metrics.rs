//! Metric primitives: counters, gauges and log-linear histograms.
//!
//! All three are handles around atomically-updated cells shared with the
//! owning [`crate::Registry`]; cloning a handle is an `Arc` clone and
//! recording through one is lock-free. Every handle also carries the
//! registry's enable flag so a disabled registry short-circuits recording
//! with a single relaxed load (the no-op mode used by overhead benchmarks).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotonically increasing event counter.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a floating-point value that can move both ways (stored as f64
/// bits in an atomic, matching Prometheus's double-valued gauges).
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (compare-and-swap loop; gauges are not contended in
    /// this codebase).
    pub fn add(&self, delta: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut current = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.cell.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Number of linear sub-buckets per power-of-two decade (and the count of
/// exact buckets for the smallest values). 8 sub-buckets bound the relative
/// quantile error at 1/8 = 12.5%.
pub(crate) const SUB: u64 = 8;
const SUB_BITS: u32 = 3; // log2(SUB)

/// Total bucket count covering the whole u64 range: `SUB` exact buckets for
/// values `< SUB`, then `SUB` linear buckets for each of the 61 remaining
/// decades.
pub(crate) const NBUCKETS: usize = (SUB as usize) * 62;

/// Maps a value to its bucket index. Values below `SUB` get exact buckets;
/// larger values share a bucket with at most 12.5% relative width.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let shift = msb as u32 - SUB_BITS;
    let sub = (v >> shift) - SUB;
    ((u64::from(shift) + 1) * SUB + sub) as usize
}

/// Inclusive upper bound of bucket `i` — the value reported for any
/// quantile that lands in the bucket, and the `le` label in exposition.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = (i / SUB - 1) as u32;
    let sub = i % SUB;
    ((SUB + sub) << shift) + ((1u64 << shift) - 1)
}

/// Shared histogram storage.
#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-linear-bucket histogram of unsigned integer observations
/// (microseconds for durations, plain counts for iteration-style metrics).
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) core: Arc<HistCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let c = &self.core;
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q·count)`.
    /// Deterministic; exact for values below 8, within 12.5% above.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.core.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        self.max()
    }

    /// Consistent point-in-time summary used by exposition and benchmarks.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// A summarized view of a histogram: totals, tail quantiles, and the
/// non-empty buckets as `(upper_bound, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Non-empty buckets, ascending by upper bound.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn bucket_index_exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_cover() {
        let mut prev_upper = None;
        for i in 0..NBUCKETS {
            let upper = bucket_upper(i);
            if let Some(p) = prev_upper {
                assert!(upper > p, "bucket {i} upper {upper} <= prev {p}");
            }
            prev_upper = Some(upper);
        }
        // Every value maps into a bucket whose bounds contain it.
        for v in [
            0,
            1,
            7,
            8,
            15,
            16,
            100,
            1_000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < NBUCKETS);
            assert!(bucket_upper(i) >= v, "v={v} i={i}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "v={v} i={i}");
            }
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [9u64, 100, 999, 10_000, 1 << 20, (1 << 40) + 12345] {
            let upper = bucket_upper(bucket_index(v));
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 0.125, "v={v} upper={upper} err={err}");
        }
    }

    /// Pins the quantile math on recorded known values: 1..=100 recorded
    /// once each. The expected outputs are the log-linear bucket upper
    /// bounds, worked out by hand from the SUB=8 layout.
    #[test]
    fn quantiles_of_known_values_are_pinned() {
        let reg = Registry::new();
        let h = reg.histogram("pin");
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // rank 50 lands in bucket [48,51] -> 51
        assert_eq!(h.quantile(0.50), 51);
        // rank 90 lands in bucket [88,95] -> 95
        assert_eq!(h.quantile(0.90), 95);
        // rank 95 lands in bucket [88,95] -> 95
        assert_eq!(h.quantile(0.95), 95);
        // rank 99 lands in bucket [96,103] -> 103
        assert_eq!(h.quantile(0.99), 103);
        // extremes
        assert_eq!(h.quantile(0.0), 1, "rank clamps to 1 -> exact value 1");
        assert_eq!(h.quantile(1.0), 103, "last bucket upper bound");
    }

    #[test]
    fn quantile_exact_for_small_values() {
        let reg = Registry::new();
        let h = reg.histogram("small");
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let reg = Registry::new();
        let h = reg.histogram("empty");
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("g");
        g.set(1.5);
        g.add(-0.5);
        assert!((g.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        let c = reg.counter("c");
        let h = reg.histogram("h");
        let g = reg.gauge("g");
        c.inc();
        h.record(9);
        g.set(3.0);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0.0);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_lists_nonempty_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.record(3);
        h.record(3);
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(3, 2), (103, 1)]);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 100);
    }
}
