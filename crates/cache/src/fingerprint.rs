//! Stable query fingerprints: a tiny FNV-1a builder every subsystem uses to
//! derive its 64-bit cache keys, so identical logical queries collide onto
//! one entry and the keys are reproducible across runs (unlike
//! `DefaultHasher`, whose seed is randomized per process).

/// Incremental FNV-1a hasher with typed, length-prefixed feeds (so
/// `("ab","c")` and `("a","bc")` fingerprint differently).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Fingerprint {
        Fingerprint(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Fingerprint {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a string, length-prefixed.
    pub fn str(self, s: &str) -> Fingerprint {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Feeds an optional string (None hashes distinctly from `Some("")`).
    pub fn opt_str(self, s: Option<&str>) -> Fingerprint {
        match s {
            Some(s) => self.u64(1).str(s),
            None => self.u64(0),
        }
    }

    /// Feeds a 64-bit integer (little-endian bytes).
    pub fn u64(self, v: u64) -> Fingerprint {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds a platform-sized integer.
    pub fn usize(self, v: usize) -> Fingerprint {
        self.u64(v as u64)
    }

    /// Feeds a float by bit pattern (NaN payloads included).
    pub fn f64(self, v: f64) -> Fingerprint {
        self.u64(v.to_bits())
    }

    /// Feeds a boolean.
    pub fn bool(self, v: bool) -> Fingerprint {
        self.u64(u64::from(v))
    }

    /// Finishes, returning the 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_sensitive() {
        let a = Fingerprint::new().str("snow").u64(3).finish();
        let b = Fingerprint::new().str("snow").u64(3).finish();
        let c = Fingerprint::new().str("snow").u64(4).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let ab_c = Fingerprint::new().str("ab").str("c").finish();
        let a_bc = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn none_differs_from_empty() {
        let none = Fingerprint::new().opt_str(None).finish();
        let empty = Fingerprint::new().opt_str(Some("")).finish();
        assert_ne!(none, empty);
    }
}
