//! # sensormeta-cache
//!
//! Unified, epoch-invalidated result caching for the sensormeta stack.
//!
//! The serving layer answers the same combined SQL+SPARQL queries, ranked
//! searches and tag clouds over and over between writes; this crate gives
//! every subsystem one shared caching substrate instead of bespoke caches:
//!
//! - [`EpochClock`] — per-[`Domain`] monotonic epochs (relational tables,
//!   triple store, search index, web graph, tag incidence). Every mutating
//!   path bumps the domains it touches; a cache entry is valid iff the
//!   epoch vector it captured *before* computing still matches.
//! - [`Cache`] — a sharded, concurrent LRU+TTL map with per-entry byte-cost
//!   accounting, negative caching of failed computations, and single-flight
//!   stampede protection (concurrent identical misses coalesce onto one
//!   computation).
//! - [`Fingerprint`] — a stable FNV-1a builder for deriving the 64-bit
//!   query keys.
//!
//! Every movement is mirrored into the `sensormeta-obs` global registry:
//! `cache_hits_total`, `cache_misses_total`, `cache_evictions_total`,
//! `cache_singleflight_waits_total` and the `cache_bytes` gauge, plus
//! per-namespace `cache_<name>_*` variants (and optional legacy aliases
//! for migrated subsystems).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod fingerprint;
mod result_cache;

pub use clock::{clock, Domain, EpochClock, EpochVector, ALL_DOMAINS, DOMAIN_COUNT};
pub use fingerprint::Fingerprint;
pub use result_cache::{Cache, CacheConfig, CacheError, CacheStats, LegacyMetricNames, Status};
