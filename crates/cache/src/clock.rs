//! Epoch clock: per-domain monotonic counters that date every piece of
//! mutable state a cached result can depend on.
//!
//! Every mutating path in the stack bumps the domain(s) it touches; a cache
//! entry captures the clock *before* its computation runs and stays valid
//! only while every captured epoch still matches. Bumps are single relaxed
//! atomic increments, so instrumenting hot write paths costs nanoseconds.
//! Over-invalidation (a bump that did not actually change what an entry
//! read) is always safe — it can only cause a recomputation, never a stale
//! serve.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The mutable state domains cached results may depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Domain {
    /// Relational tables (pages, annotations, links, tags, revisions).
    Relational = 0,
    /// The RDF triple store mirror.
    Triples = 1,
    /// The full-text inverted index.
    SearchIndex = 2,
    /// The double-link web graph (semantic + hyperlink edges).
    WebGraph = 3,
    /// The page↔tag incidence structure.
    TagIncidence = 4,
}

/// Number of [`Domain`] variants (the epoch vector's length).
pub const DOMAIN_COUNT: usize = 5;

/// Every domain, in epoch-vector order.
pub const ALL_DOMAINS: [Domain; DOMAIN_COUNT] = [
    Domain::Relational,
    Domain::Triples,
    Domain::SearchIndex,
    Domain::WebGraph,
    Domain::TagIncidence,
];

impl Domain {
    /// Stable short name (used in metric names and debug output).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Relational => "relational",
            Domain::Triples => "triples",
            Domain::SearchIndex => "search_index",
            Domain::WebGraph => "web_graph",
            Domain::TagIncidence => "tag_incidence",
        }
    }
}

/// A point-in-time copy of every domain epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochVector(pub [u64; DOMAIN_COUNT]);

impl EpochVector {
    /// The captured epoch of one domain.
    pub fn get(&self, d: Domain) -> u64 {
        self.0[d as usize]
    }

    /// True iff the two vectors agree on every domain in `deps` — the
    /// snapshot-reader analogue of [`EpochClock::matches`]: an MVCC reader
    /// pinned at this vector validates cache entries against *it*, not
    /// against the moving clock.
    pub fn matches_on(&self, other: &EpochVector, deps: &[Domain]) -> bool {
        deps.iter().all(|&d| self.get(d) == other.get(d))
    }
}

/// Monotonic per-domain epoch counters.
#[derive(Debug, Default)]
pub struct EpochClock {
    epochs: [AtomicU64; DOMAIN_COUNT],
}

impl EpochClock {
    /// A clock with every domain at epoch 0.
    pub fn new() -> EpochClock {
        EpochClock::default()
    }

    /// Advances one domain's epoch, invalidating every cached entry that
    /// depends on it (lazily, at its next lookup).
    pub fn bump(&self, d: Domain) {
        self.epochs[d as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Advances every domain at once (e.g. `POST /admin/cache/clear`).
    pub fn bump_all(&self) {
        for d in ALL_DOMAINS {
            self.bump(d);
        }
    }

    /// Current epoch of one domain.
    pub fn get(&self, d: Domain) -> u64 {
        self.epochs[d as usize].load(Ordering::Relaxed)
    }

    /// Copies the whole clock. Callers capture this *before* running a
    /// computation, so a mutation racing with the computation leaves the
    /// resulting entry already stale.
    pub fn snapshot(&self) -> EpochVector {
        let mut v = [0u64; DOMAIN_COUNT];
        for (i, e) in self.epochs.iter().enumerate() {
            v[i] = e.load(Ordering::Relaxed);
        }
        EpochVector(v)
    }

    /// True iff, for every domain in `deps`, the captured epoch still
    /// matches the clock.
    pub fn matches(&self, stamp: &EpochVector, deps: &[Domain]) -> bool {
        deps.iter().all(|&d| stamp.get(d) == self.get(d))
    }
}

static GLOBAL: OnceLock<EpochClock> = OnceLock::new();

/// The process-wide epoch clock. Library mutation paths bump this one;
/// caches validate against it unless built with an explicit clock.
pub fn clock() -> &'static EpochClock {
    GLOBAL.get_or_init(EpochClock::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_moves_only_its_domain() {
        let c = EpochClock::new();
        c.bump(Domain::Relational);
        c.bump(Domain::Relational);
        c.bump(Domain::WebGraph);
        assert_eq!(c.get(Domain::Relational), 2);
        assert_eq!(c.get(Domain::WebGraph), 1);
        assert_eq!(c.get(Domain::Triples), 0);
    }

    #[test]
    fn snapshot_matches_until_dep_bumped() {
        let c = EpochClock::new();
        let stamp = c.snapshot();
        assert!(c.matches(&stamp, &[Domain::Relational, Domain::Triples]));
        c.bump(Domain::SearchIndex);
        assert!(
            c.matches(&stamp, &[Domain::Relational, Domain::Triples]),
            "unrelated bump does not invalidate"
        );
        c.bump(Domain::Triples);
        assert!(!c.matches(&stamp, &[Domain::Relational, Domain::Triples]));
    }

    #[test]
    fn bump_all_touches_every_domain() {
        let c = EpochClock::new();
        let stamp = c.snapshot();
        c.bump_all();
        for d in ALL_DOMAINS {
            assert!(!c.matches(&stamp, &[d]), "{}", d.name());
        }
    }

    #[test]
    fn global_clock_is_shared() {
        let before = clock().get(Domain::WebGraph);
        clock().bump(Domain::WebGraph);
        assert!(clock().get(Domain::WebGraph) > before);
    }
}
