//! The sharded, concurrent, epoch-invalidated result cache.
//!
//! One [`Cache`] instance serves one namespace (query results, posting
//! lists, PageRank vectors, tag clouds …). Entries are keyed by a 64-bit
//! query fingerprint, cost-accounted in bytes (capacity is a byte budget,
//! not an entry count), bounded by LRU eviction plus optional TTLs, and
//! validated against an [`EpochClock`](crate::EpochClock): an entry is
//! served only while every domain epoch captured before its computation
//! still matches the clock. Stale entries are dropped lazily — on lookup
//! for the requested key, and by an opportunistic sweep of the shard on
//! every insert.
//!
//! Failed computations are *negatively cached*: the error message is stored
//! under a short TTL so a hot failing query does not hammer the backend.
//!
//! Concurrent identical misses coalesce through a per-key single-flight
//! slot: one caller computes, the rest block on the slot (optionally with a
//! deadline) and receive the shared result.

use crate::clock::{clock, Domain, EpochClock, EpochVector};
use sensormeta_obs as obs;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Fixed per-entry bookkeeping charge added to the weighed value cost.
const ENTRY_OVERHEAD: usize = 96;

/// How a lookup was answered (the server's `Cache-Status` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Served from cache (including results received from a coalesced
    /// in-flight computation).
    Hit,
    /// Nothing cached; this call computed (or timed out waiting).
    Miss,
    /// A cached entry existed but was epoch- or TTL-stale; it was dropped
    /// (or retained for degradation) and this call recomputed.
    Stale,
    /// The cache was disabled or sidestepped; computed without caching.
    Bypass,
    /// The live computation failed (or was rejected by a breaker) and a
    /// stale cached value within the grace window was served instead.
    /// Labeled `stale` on the wire; servers add a `Warning` header so a
    /// degraded answer is never mistaken for a fresh one.
    Degraded,
}

impl Status {
    /// Lowercase label (`hit` / `miss` / `stale` / `bypass`; degraded
    /// serves are labeled `stale` — the data really is stale).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Hit => "hit",
            Status::Miss => "miss",
            Status::Stale | Status::Degraded => "stale",
            Status::Bypass => "bypass",
        }
    }

    /// True when the response body is a stale value served under
    /// degradation (as opposed to a fresh recompute labeled `stale`).
    pub fn is_degraded(self) -> bool {
        matches!(self, Status::Degraded)
    }
}

/// Why a lookup returned no value.
#[derive(Debug)]
pub enum CacheError<E> {
    /// The computation ran (this call or a coalesced one) and failed;
    /// the original error.
    Compute(E),
    /// A negatively cached failure was replayed without recomputing.
    Negative(Arc<str>),
    /// The single-flight wait exceeded the caller's deadline.
    WaitTimeout,
}

impl<E: fmt::Display> fmt::Display for CacheError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Compute(e) => write!(f, "{e}"),
            CacheError::Negative(msg) => write!(f, "{msg}"),
            CacheError::WaitTimeout => write!(f, "timed out waiting for in-flight computation"),
        }
    }
}

impl<E> std::error::Error for CacheError<E>
where
    E: std::error::Error + 'static,
{
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Compute(e) => Some(e),
            CacheError::Negative(_) | CacheError::WaitTimeout => None,
        }
    }
}

/// Counters for one cache instance (process-lifetime, never reset by
/// [`Cache::clear`]). The same movements are mirrored into the global obs
/// registry under `cache_*` / `cache_<name>_*` metric names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a valid entry (negative hits included).
    pub hits: u64,
    /// Lookups that computed (stale recomputes included).
    pub misses: u64,
    /// Entries dropped: LRU pressure, stale sweeps, and stale lookups.
    pub evictions: u64,
    /// The subset of `evictions` dropped for epoch/TTL staleness.
    pub stale_drops: u64,
    /// Times a caller blocked on another caller's in-flight computation.
    pub singleflight_waits: u64,
    /// Hits that replayed a negatively cached error.
    pub negative_hits: u64,
    /// Stale values handed out by [`Cache::get_stale`] for degradation.
    pub stale_serves: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the capacity.
    pub bytes: usize,
}

/// Legacy metric names kept emitting after a subsystem migrates its bespoke
/// cache onto this crate (dashboard compatibility).
#[derive(Debug, Clone, Copy)]
pub struct LegacyMetricNames {
    /// Counter name mirrored on every hit.
    pub hits: &'static str,
    /// Counter name mirrored on every miss.
    pub misses: &'static str,
    /// Counter name mirrored on every eviction.
    pub evictions: &'static str,
}

/// Construction-time knobs for one [`Cache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Namespace label: metric suffix `cache_<name>_…` and debug output.
    pub name: &'static str,
    /// Byte budget across all shards (0 disables caching entirely —
    /// every lookup is a [`Status::Bypass`]).
    pub capacity_bytes: usize,
    /// Shard count (rounded up to a power of two, min 1). More shards,
    /// less lock contention, coarser LRU.
    pub shards: usize,
    /// Optional wall-clock bound on positive entries.
    pub ttl: Option<Duration>,
    /// Wall-clock bound on negatively cached failures.
    pub negative_ttl: Duration,
    /// Staleness grace window for serve-stale degradation: an epoch- or
    /// TTL-stale *positive* entry younger than this (measured from its
    /// insertion) is retained instead of dropped, can be fetched with
    /// [`Cache::get_stale`], and is never overwritten by a negative
    /// entry. `None` (the default) disables degradation: stale entries
    /// are dropped on sight exactly as before.
    pub stale_grace: Option<Duration>,
    /// Domains whose epochs every entry of this cache depends on.
    pub deps: &'static [Domain],
    /// Optional pre-migration metric names to keep emitting.
    pub legacy: Option<LegacyMetricNames>,
}

impl CacheConfig {
    /// A config with the common defaults: 8 shards, no positive TTL, a
    /// 2-second negative TTL, no legacy metric aliases.
    pub fn new(name: &'static str, capacity_bytes: usize, deps: &'static [Domain]) -> CacheConfig {
        CacheConfig {
            name,
            capacity_bytes,
            shards: 8,
            ttl: None,
            negative_ttl: Duration::from_secs(2),
            stale_grace: None,
            deps,
            legacy: None,
        }
    }
}

/// A cached outcome: a shared value, or a negatively cached error message.
type Outcome<V> = Result<Arc<V>, Arc<str>>;

struct Entry<V> {
    value: Outcome<V>,
    stamp: EpochVector,
    expires: Option<Instant>,
    /// When the entry landed — the grace window for serve-stale
    /// degradation bounds the value's total age from this point.
    inserted: Instant,
    cost: usize,
    tick: u64,
}

enum FlightState<V> {
    Pending,
    Done(Outcome<V>),
    /// The computing caller panicked; waiters should retry from scratch.
    Poisoned,
}

struct Flight<V> {
    stamp: EpochVector,
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum WaitOutcome<V> {
    Completed(Outcome<V>),
    Poisoned,
    TimedOut,
}

impl<V> Flight<V> {
    fn new(stamp: EpochVector) -> Flight<V> {
        Flight {
            stamp,
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, outcome: Option<Outcome<V>>) {
        let mut st = lock(&self.state);
        *st = match outcome {
            Some(o) => FlightState::Done(o),
            None => FlightState::Poisoned,
        };
        self.cv.notify_all();
    }

    fn wait(&self, deadline: Option<Instant>) -> WaitOutcome<V> {
        let mut st = lock(&self.state);
        loop {
            match &*st {
                FlightState::Done(o) => return WaitOutcome::Completed(o.clone()),
                FlightState::Poisoned => return WaitOutcome::Poisoned,
                FlightState::Pending => {}
            }
            st = match deadline {
                None => self.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return WaitOutcome::TimedOut;
                    }
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(st, dl - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard
                }
            };
        }
    }
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    /// LRU order: access tick → key (ticks are unique per shard).
    lru: BTreeMap<u64, u64>,
    bytes: usize,
    next_tick: u64,
    flights: HashMap<u64, Arc<Flight<V>>>,
}

impl<V> Shard<V> {
    fn new() -> Shard<V> {
        Shard {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            bytes: 0,
            next_tick: 0,
            flights: HashMap::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.lru.remove(&e.tick);
            e.tick = tick;
            self.lru.insert(tick, key);
        }
    }

    fn remove(&mut self, key: u64) -> Option<Entry<V>> {
        let e = self.map.remove(&key)?;
        self.lru.remove(&e.tick);
        self.bytes -= e.cost;
        Some(e)
    }
}

/// Recovers a mutex from poisoning: computations run *outside* these locks
/// (single-flight publishes a poison marker instead), so the guarded state
/// is always structurally consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Metrics {
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    singleflight_waits: obs::Counter,
    stale_serves: obs::Counter,
    global_hits: obs::Counter,
    global_misses: obs::Counter,
    global_evictions: obs::Counter,
    global_waits: obs::Counter,
    global_stale_serves: obs::Counter,
    bytes: obs::Gauge,
    global_bytes: obs::Gauge,
    legacy_hits: Option<obs::Counter>,
    legacy_misses: Option<obs::Counter>,
    legacy_evictions: Option<obs::Counter>,
}

impl Metrics {
    fn new(cfg: &CacheConfig) -> Metrics {
        let per = |what: &str| obs::counter(&format!("cache_{}_{what}", cfg.name));
        Metrics {
            hits: per("hits_total"),
            misses: per("misses_total"),
            evictions: per("evictions_total"),
            singleflight_waits: per("singleflight_waits_total"),
            stale_serves: per("stale_serves_total"),
            global_hits: obs::counter("cache_hits_total"),
            global_misses: obs::counter("cache_misses_total"),
            global_evictions: obs::counter("cache_evictions_total"),
            global_waits: obs::counter("cache_singleflight_waits_total"),
            global_stale_serves: obs::counter("cache_stale_serves_total"),
            bytes: obs::gauge(&format!("cache_{}_bytes", cfg.name)),
            global_bytes: obs::gauge("cache_bytes"),
            legacy_hits: cfg.legacy.map(|l| obs::counter(l.hits)),
            legacy_misses: cfg.legacy.map(|l| obs::counter(l.misses)),
            legacy_evictions: cfg.legacy.map(|l| obs::counter(l.evictions)),
        }
    }
}

struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_drops: AtomicU64,
    singleflight_waits: AtomicU64,
    negative_hits: AtomicU64,
    stale_serves: AtomicU64,
    entries: AtomicUsize,
}

/// A sharded, concurrent, epoch-invalidated LRU+TTL result cache; see the
/// module docs. All methods take `&self` — interior locking is per shard.
pub struct Cache<V> {
    cfg: CacheConfig,
    clock: ClockRef,
    weigher: fn(&V) -> usize,
    shards: Vec<Mutex<Shard<V>>>,
    shard_capacity: usize,
    enabled: AtomicBool,
    stats: Stats,
    metrics: Metrics,
}

/// The clock a cache validates against: the process-global one, or an
/// owned instance (test isolation).
enum ClockRef {
    Global,
    Owned(Arc<EpochClock>),
}

impl ClockRef {
    fn get(&self) -> &EpochClock {
        match self {
            ClockRef::Global => clock(),
            ClockRef::Owned(c) => c,
        }
    }
}

impl<V> fmt::Debug for Cache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // No `V: Debug` bound: only bookkeeping is printed, never values.
        let s = CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            stale_drops: self.stats.stale_drops.load(Ordering::Relaxed),
            singleflight_waits: self.stats.singleflight_waits.load(Ordering::Relaxed),
            negative_hits: self.stats.negative_hits.load(Ordering::Relaxed),
            stale_serves: self.stats.stale_serves.load(Ordering::Relaxed),
            entries: self.stats.entries.load(Ordering::Relaxed),
            bytes: 0,
        };
        f.debug_struct("Cache")
            .field("name", &self.cfg.name)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl<V: Send + Sync + 'static> Cache<V> {
    /// A cache validating against the process-global [`clock`]. `weigher`
    /// estimates a value's resident cost in bytes (a fixed per-entry
    /// overhead is added on top).
    pub fn new(cfg: CacheConfig, weigher: fn(&V) -> usize) -> Cache<V> {
        Self::build(cfg, weigher, ClockRef::Global)
    }

    /// A cache validating against an explicit clock (test isolation — the
    /// global clock is bumped by every mutation in the process).
    pub fn with_clock(cfg: CacheConfig, weigher: fn(&V) -> usize, c: Arc<EpochClock>) -> Cache<V> {
        Self::build(cfg, weigher, ClockRef::Owned(c))
    }

    fn build(cfg: CacheConfig, weigher: fn(&V) -> usize, clock: ClockRef) -> Cache<V> {
        let nshards = cfg.shards.clamp(1, 1024).next_power_of_two();
        let metrics = Metrics::new(&cfg);
        Cache {
            shard_capacity: (cfg.capacity_bytes / nshards).max(usize::from(cfg.capacity_bytes > 0)),
            shards: (0..nshards).map(|_| Mutex::new(Shard::new())).collect(),
            clock,
            weigher,
            enabled: AtomicBool::new(true),
            stats: Stats {
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                stale_drops: AtomicU64::new(0),
                singleflight_waits: AtomicU64::new(0),
                negative_hits: AtomicU64::new(0),
                stale_serves: AtomicU64::new(0),
                entries: AtomicUsize::new(0),
            },
            metrics,
            cfg,
        }
    }

    /// The configured namespace label.
    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    /// Turns the cache into a pass-through ([`Status::Bypass`]) or back on.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        let bytes: usize = self.shards.iter().map(|s| lock(s).bytes).sum();
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            stale_drops: self.stats.stale_drops.load(Ordering::Relaxed),
            singleflight_waits: self.stats.singleflight_waits.load(Ordering::Relaxed),
            negative_hits: self.stats.negative_hits.load(Ordering::Relaxed),
            stale_serves: self.stats.stale_serves.load(Ordering::Relaxed),
            entries: self.stats.entries.load(Ordering::Relaxed),
            bytes,
        }
    }

    /// Drops every resident entry (in-flight computations are unaffected
    /// and will re-insert when they land). Statistics are not reset.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut sh = lock(shard);
            let dropped = sh.map.len();
            let freed = sh.bytes;
            sh.map.clear();
            sh.lru.clear();
            sh.bytes = 0;
            drop(sh);
            self.note_dropped(dropped, freed);
        }
    }

    fn note_dropped(&self, count: usize, freed: usize) {
        if count > 0 {
            self.stats.entries.fetch_sub(count, Ordering::Relaxed);
        }
        if freed > 0 {
            self.metrics.bytes.add(-(freed as f64));
            self.metrics.global_bytes.add(-(freed as f64));
        }
    }

    /// Peeks at a key without computing, touching LRU order but not the
    /// hit/miss counters. Mostly for tests.
    pub fn peek(&self, key: u64) -> Option<Arc<V>> {
        let mut sh = lock(self.shard(key));
        let e = sh.map.get(&key)?;
        if !self.entry_valid(e) {
            return None;
        }
        let v = e.value.as_ref().ok().cloned();
        sh.touch(key);
        v
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        let i = ((key >> 32) ^ key) as usize & (self.shards.len() - 1);
        &self.shards[i]
    }

    fn entry_valid(&self, e: &Entry<V>) -> bool {
        self.entry_valid_at(e, None)
    }

    /// Entry validity for a reader pinned at `at` (an MVCC snapshot's epoch
    /// vector), or against the live clock when `at` is `None`.
    fn entry_valid_at(&self, e: &Entry<V>, at: Option<&EpochVector>) -> bool {
        if let Some(expires) = e.expires {
            if Instant::now() >= expires {
                return false;
            }
        }
        match at {
            Some(v) => v.matches_on(&e.stamp, self.cfg.deps),
            None => self.clock.get().matches(&e.stamp, self.cfg.deps),
        }
    }

    /// Whether a (possibly invalid) entry may still back a degraded serve:
    /// a positive value younger than the staleness grace window.
    fn stale_servable(&self, e: &Entry<V>) -> bool {
        e.value.is_ok()
            && self
                .cfg
                .stale_grace
                .is_some_and(|g| e.inserted.elapsed() < g)
    }

    /// Serve-stale degradation: returns the resident positive value for
    /// `key` — fresh, or epoch-/TTL-stale but within the staleness grace
    /// window — along with its age since insertion. Callers use this when
    /// the live computation failed, timed out, or was rejected by an open
    /// breaker, and MUST label the response (`Cache-Status: stale` plus a
    /// `Warning` header). Returns `None` when nothing servable is
    /// resident; never computes.
    pub fn get_stale(&self, key: u64) -> Option<(Arc<V>, Duration)> {
        if self.cfg.capacity_bytes == 0 || !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let found = {
            let sh = lock(self.shard(key));
            let e = sh.map.get(&key)?;
            if !self.entry_valid(e) && !self.stale_servable(e) {
                return None;
            }
            let v = e.value.as_ref().ok()?;
            (Arc::clone(v), e.inserted.elapsed())
        };
        self.stats.stale_serves.fetch_add(1, Ordering::Relaxed);
        self.metrics.stale_serves.inc();
        self.metrics.global_stale_serves.inc();
        Some(found)
    }

    fn count_hit(&self, negative: bool) {
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        if negative {
            self.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.hits.inc();
        self.metrics.global_hits.inc();
        if let Some(c) = &self.metrics.legacy_hits {
            c.inc();
        }
    }

    fn count_miss(&self) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.inc();
        self.metrics.global_misses.inc();
        if let Some(c) = &self.metrics.legacy_misses {
            c.inc();
        }
    }

    fn count_evictions(&self, n: u64, stale: bool) {
        if n == 0 {
            return;
        }
        self.stats.evictions.fetch_add(n, Ordering::Relaxed);
        if stale {
            self.stats.stale_drops.fetch_add(n, Ordering::Relaxed);
        }
        self.metrics.evictions.add(n);
        self.metrics.global_evictions.add(n);
        if let Some(c) = &self.metrics.legacy_evictions {
            c.add(n);
        }
    }

    /// Looks `key` up; on a valid entry returns it, otherwise computes via
    /// `compute` (or coalesces onto an identical in-flight computation,
    /// waiting at most until `deadline` after this call began). Successful
    /// values are cached under the epoch stamp captured *before* the
    /// computation ran; failures are negatively cached for
    /// [`CacheConfig::negative_ttl`].
    pub fn get_or_compute<E, F>(
        &self,
        key: u64,
        deadline: Option<Duration>,
        compute: F,
    ) -> (Result<Arc<V>, CacheError<E>>, Status)
    where
        E: fmt::Display,
        F: FnOnce() -> Result<V, E>,
    {
        self.get_or_compute_filtered(key, deadline, compute, |_| true)
    }

    /// [`get_or_compute`](Cache::get_or_compute) with control over negative
    /// caching: `cache_error` decides per failure whether it is cached.
    /// Deadline expiries and injected chaos faults must *not* be negatively
    /// cached — the failure is the caller's circumstance, not a property of
    /// the key — or a burst of expired requests would poison the key for
    /// every later caller with budget to spare. Waiters coalesced onto the
    /// flight still observe the shared failure either way.
    pub fn get_or_compute_filtered<E, F, P>(
        &self,
        key: u64,
        deadline: Option<Duration>,
        compute: F,
        cache_error: P,
    ) -> (Result<Arc<V>, CacheError<E>>, Status)
    where
        E: fmt::Display,
        F: FnOnce() -> Result<V, E>,
        P: FnOnce(&E) -> bool,
    {
        self.get_or_compute_inner(key, None, deadline, compute, cache_error)
    }

    /// [`get_or_compute_filtered`](Cache::get_or_compute_filtered) for an
    /// MVCC snapshot reader pinned at `stamp`: entries are validated against
    /// (and new entries stamped with) the snapshot's epoch vector instead of
    /// the moving clock, so a reader keeps hitting its own consistent
    /// generation even while writers bump epochs underneath it.
    ///
    /// Keys stay generation-independent (snapshots at different epoch
    /// vectors share one entry slot): that keeps serve-stale degradation
    /// working across commits — [`Cache::get_stale`] can still find the
    /// superseded value under the same key. Cross-generation safety comes
    /// from validation instead: an entry stamped by another generation is
    /// simply treated as stale (retained for degradation when still fresh
    /// for the live clock or within the grace window) and recomputed, and
    /// a caller never coalesces onto an in-flight computation whose stamp
    /// its own validation context would reject.
    pub fn get_or_compute_filtered_at<E, F, P>(
        &self,
        key: u64,
        stamp: EpochVector,
        deadline: Option<Duration>,
        compute: F,
        cache_error: P,
    ) -> (Result<Arc<V>, CacheError<E>>, Status)
    where
        E: fmt::Display,
        F: FnOnce() -> Result<V, E>,
        P: FnOnce(&E) -> bool,
    {
        self.get_or_compute_inner(key, Some(stamp), deadline, compute, cache_error)
    }

    fn get_or_compute_inner<E, F, P>(
        &self,
        key: u64,
        at: Option<EpochVector>,
        deadline: Option<Duration>,
        compute: F,
        cache_error: P,
    ) -> (Result<Arc<V>, CacheError<E>>, Status)
    where
        E: fmt::Display,
        F: FnOnce() -> Result<V, E>,
        P: FnOnce(&E) -> bool,
    {
        if self.cfg.capacity_bytes == 0 || !self.enabled.load(Ordering::Relaxed) {
            return match compute() {
                Ok(v) => (Ok(Arc::new(v)), Status::Bypass),
                Err(e) => (Err(CacheError::Compute(e)), Status::Bypass),
            };
        }
        let deadline = deadline.map(|d| Instant::now() + d);
        let mut compute = Some(compute);
        let mut saw_stale = false;
        loop {
            enum Step<V> {
                Lead(Arc<Flight<V>>),
                Wait(Arc<Flight<V>>),
                /// An in-flight computation exists but its stamp fails this
                /// caller's validation (wrong generation): compute without
                /// touching the cache rather than receive a value this
                /// caller's snapshot could not serve.
                Solo,
            }
            let step = {
                let mut sh = lock(self.shard(key));
                if let Some(e) = sh.map.get(&key) {
                    if self.entry_valid_at(e, at.as_ref()) {
                        let value = e.value.clone();
                        sh.touch(key);
                        drop(sh);
                        self.count_hit(value.is_err());
                        return match value {
                            Ok(v) => (Ok(v), Status::Hit),
                            Err(msg) => (Err(CacheError::Negative(msg)), Status::Hit),
                        };
                    }
                    if self.stale_servable(e) || (at.is_some() && self.entry_valid(e)) {
                        // Retained: for serve-stale degradation the
                        // recompute's insert replaces it (a failed
                        // recompute leaves it for `get_stale`); and a
                        // pinned snapshot reader must never evict an
                        // entry that is still fresh for the live clock.
                        saw_stale = true;
                    } else {
                        let freed = sh.remove(key).map_or(0, |e| e.cost);
                        drop(sh);
                        self.note_dropped(1, freed);
                        self.count_evictions(1, true);
                        saw_stale = true;
                        continue;
                    }
                }
                match sh.flights.get(&key) {
                    Some(fl) => {
                        let compatible = match at.as_ref() {
                            Some(v) => v.matches_on(&fl.stamp, self.cfg.deps),
                            None => self.clock.get().matches(&fl.stamp, self.cfg.deps),
                        };
                        if compatible {
                            Step::Wait(Arc::clone(fl))
                        } else {
                            Step::Solo
                        }
                    }
                    None => {
                        let stamp = at.unwrap_or_else(|| self.clock.get().snapshot());
                        let fl = Arc::new(Flight::new(stamp));
                        sh.flights.insert(key, Arc::clone(&fl));
                        Step::Lead(fl)
                    }
                }
            };
            match step {
                Step::Lead(flight) => {
                    let Some(f) = compute.take() else {
                        // Unreachable: the leader role is taken at most once.
                        self.abandon_flight(key, &flight);
                        return (Err(CacheError::WaitTimeout), Status::Miss);
                    };
                    return self.lead(key, flight, f, cache_error, saw_stale);
                }
                Step::Solo => {
                    let Some(f) = compute.take() else {
                        // Unreachable: Solo returns on its first (and only) hit.
                        return (Err(CacheError::WaitTimeout), Status::Miss);
                    };
                    return match f() {
                        Ok(v) => (Ok(Arc::new(v)), Status::Bypass),
                        Err(e) => (Err(CacheError::Compute(e)), Status::Bypass),
                    };
                }
                Step::Wait(flight) => {
                    self.stats
                        .singleflight_waits
                        .fetch_add(1, Ordering::Relaxed);
                    self.metrics.singleflight_waits.inc();
                    self.metrics.global_waits.inc();
                    match flight.wait(deadline) {
                        WaitOutcome::Completed(Ok(v)) => {
                            self.count_hit(false);
                            return (Ok(v), Status::Hit);
                        }
                        WaitOutcome::Completed(Err(msg)) => {
                            self.count_hit(true);
                            return (Err(CacheError::Negative(msg)), Status::Hit);
                        }
                        WaitOutcome::Poisoned => continue,
                        WaitOutcome::TimedOut => {
                            return (Err(CacheError::WaitTimeout), Status::Miss);
                        }
                    }
                }
            }
        }
    }

    /// Runs the leader's computation with panic cleanup, publishes the
    /// outcome and inserts the entry.
    fn lead<E, F, P>(
        &self,
        key: u64,
        flight: Arc<Flight<V>>,
        compute: F,
        cache_error: P,
        saw_stale: bool,
    ) -> (Result<Arc<V>, CacheError<E>>, Status)
    where
        E: fmt::Display,
        F: FnOnce() -> Result<V, E>,
        P: FnOnce(&E) -> bool,
    {
        struct Cleanup<'a, W: Send + Sync + 'static> {
            cache: &'a Cache<W>,
            key: u64,
            flight: &'a Arc<Flight<W>>,
            armed: bool,
        }
        impl<W: Send + Sync + 'static> Drop for Cleanup<'_, W> {
            fn drop(&mut self) {
                if self.armed {
                    self.cache.abandon_flight(self.key, self.flight);
                }
            }
        }
        let mut cleanup = Cleanup {
            cache: self,
            key,
            flight: &flight,
            armed: true,
        };
        let result = compute();
        cleanup.armed = false;
        self.count_miss();
        let status = if saw_stale {
            Status::Stale
        } else {
            Status::Miss
        };
        match result {
            Ok(v) => {
                let v = Arc::new(v);
                let cost = (self.weigher)(&v) + ENTRY_OVERHEAD;
                self.insert(key, Ok(Arc::clone(&v)), flight.stamp, self.cfg.ttl, cost);
                self.finish_flight(key, &flight, Some(Ok(v.clone())));
                (Ok(v), status)
            }
            Err(e) => {
                let msg: Arc<str> = Arc::from(e.to_string());
                if cache_error(&e) {
                    let cost = msg.len() + ENTRY_OVERHEAD;
                    self.insert(
                        key,
                        Err(Arc::clone(&msg)),
                        flight.stamp,
                        Some(self.cfg.negative_ttl),
                        cost,
                    );
                }
                self.finish_flight(key, &flight, Some(Err(msg)));
                (Err(CacheError::Compute(e)), status)
            }
        }
    }

    /// Removes the flight slot and wakes waiters with a poison marker
    /// (leader panicked or could not run).
    fn abandon_flight(&self, key: u64, flight: &Arc<Flight<V>>) {
        self.finish_flight(key, flight, None);
    }

    fn finish_flight(&self, key: u64, flight: &Arc<Flight<V>>, outcome: Option<Outcome<V>>) {
        {
            let mut sh = lock(self.shard(key));
            if let Some(current) = sh.flights.get(&key) {
                if Arc::ptr_eq(current, flight) {
                    sh.flights.remove(&key);
                }
            }
        }
        flight.publish(outcome);
    }

    /// Inserts an entry: sweeps stale shard residents first, then LRU-evicts
    /// until the shard fits its byte budget. Values larger than the whole
    /// shard budget are not cached at all.
    fn insert(
        &self,
        key: u64,
        value: Outcome<V>,
        stamp: EpochVector,
        ttl: Option<Duration>,
        cost: usize,
    ) {
        if cost > self.shard_capacity {
            return;
        }
        let mut sh = lock(self.shard(key));
        // A failure never displaces a grace-servable positive value: the
        // stale answer outranks a negatively cached error for degradation.
        if value.is_err() && sh.map.get(&key).is_some_and(|e| self.stale_servable(e)) {
            return;
        }
        // Lazy sweep: drop epoch/TTL-stale residents of this shard, except
        // positives still inside the staleness grace window.
        let now = Instant::now();
        let clk = self.clock.get();
        let stale_keys: Vec<u64> = sh
            .map
            .iter()
            .filter(|(_, e)| {
                (e.expires.is_some_and(|t| now >= t) || !clk.matches(&e.stamp, self.cfg.deps))
                    && !self.stale_servable(e)
            })
            .map(|(&k, _)| k)
            .collect();
        let mut freed = 0usize;
        for k in &stale_keys {
            if let Some(e) = sh.remove(*k) {
                freed += e.cost;
            }
        }
        let swept = stale_keys.len();
        // Replace any (stale) previous entry for this key.
        let mut replaced = 0usize;
        if let Some(e) = sh.remove(key) {
            freed += e.cost;
            replaced = 1;
        }
        // LRU eviction down to budget.
        let mut lru_evicted = 0usize;
        while sh.bytes + cost > self.shard_capacity {
            let Some(victim) = sh.lru.iter().next().map(|(_, &k)| k) else {
                break;
            };
            if let Some(e) = sh.remove(victim) {
                freed += e.cost;
            }
            lru_evicted += 1;
        }
        let tick = sh.next_tick;
        sh.next_tick += 1;
        sh.lru.insert(tick, key);
        sh.bytes += cost;
        sh.map.insert(
            key,
            Entry {
                value,
                stamp,
                expires: ttl.map(|t| now + t),
                inserted: now,
                cost,
                tick,
            },
        );
        drop(sh);
        self.count_evictions(swept as u64, true);
        self.count_evictions(lru_evicted as u64, false);
        self.note_dropped(swept + replaced + lru_evicted, freed);
        self.stats.entries.fetch_add(1, Ordering::Relaxed);
        self.metrics.bytes.add(cost as f64);
        self.metrics.global_bytes.add(cost as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ALL_DOMAINS;
    use std::cell::Cell;

    const DEPS: &[Domain] = &[Domain::Relational, Domain::SearchIndex];

    fn test_cache(capacity: usize) -> (Cache<String>, Arc<EpochClock>) {
        let clk = Arc::new(EpochClock::new());
        let mut cfg = CacheConfig::new("test", capacity, DEPS);
        cfg.shards = 1;
        cfg.negative_ttl = Duration::from_millis(40);
        let cache = Cache::with_clock(cfg, |v: &String| v.len(), Arc::clone(&clk));
        (cache, clk)
    }

    fn get(
        cache: &Cache<String>,
        key: u64,
        value: &str,
        calls: &Cell<u32>,
    ) -> (Result<Arc<String>, CacheError<String>>, Status) {
        cache.get_or_compute(key, None, || {
            calls.set(calls.get() + 1);
            Ok::<_, String>(value.to_string())
        })
    }

    #[test]
    fn miss_then_hit_computes_once() {
        let (cache, _clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let (v1, s1) = get(&cache, 7, "alpha", &calls);
        let (v2, s2) = get(&cache, 7, "beta", &calls);
        assert_eq!(s1, Status::Miss);
        assert_eq!(s2, Status::Hit);
        assert_eq!(calls.get(), 1);
        assert_eq!(*v1.expect("first"), "alpha");
        assert_eq!(
            *v2.expect("second"),
            "alpha",
            "hit returns the cached value"
        );
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert!(st.bytes > 0);
    }

    #[test]
    fn dep_bump_goes_stale_but_unrelated_bump_does_not() {
        let (cache, clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "v1", &calls);
        clk.bump(Domain::WebGraph); // not in DEPS
        let (_, s) = get(&cache, 1, "v2", &calls);
        assert_eq!(s, Status::Hit, "unrelated domain bump must not invalidate");
        clk.bump(Domain::Relational);
        let (v, s) = get(&cache, 1, "v3", &calls);
        assert_eq!(s, Status::Stale);
        assert_eq!(*v.expect("recomputed"), "v3");
        assert_eq!(calls.get(), 2);
        let st = cache.stats();
        assert_eq!(st.stale_drops, 1);
        assert_eq!(st.evictions, 1);
    }

    #[test]
    fn negative_result_is_cached_until_its_ttl() {
        let (cache, _clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let compute = || {
            calls.set(calls.get() + 1);
            Err::<String, String>("backend exploded".to_string())
        };
        let (r1, s1) = cache.get_or_compute(9, None, compute);
        assert_eq!(s1, Status::Miss);
        assert!(matches!(r1, Err(CacheError::Compute(_))));
        let (r2, s2) = cache.get_or_compute(9, None, compute);
        assert_eq!(s2, Status::Hit, "failure replayed from cache");
        match r2 {
            Err(CacheError::Negative(msg)) => assert_eq!(&*msg, "backend exploded"),
            other => panic!("expected negative hit, got {other:?}"),
        }
        assert_eq!(calls.get(), 1);
        assert_eq!(cache.stats().negative_hits, 1);
        std::thread::sleep(Duration::from_millis(60));
        let (_, s3) = cache.get_or_compute(9, None, compute);
        assert_eq!(s3, Status::Stale, "negative TTL elapsed, recomputed");
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn lru_evicts_oldest_under_byte_pressure() {
        // Each entry costs 10 + ENTRY_OVERHEAD = 106 bytes; capacity fits 2.
        let (cache, _clk) = test_cache(2 * (10 + ENTRY_OVERHEAD));
        let calls = Cell::new(0);
        let ten = "x".repeat(10);
        let _ = get(&cache, 1, &ten, &calls);
        let _ = get(&cache, 2, &ten, &calls);
        let _ = get(&cache, 1, &ten, &calls); // touch 1 so 2 is now LRU victim
        let _ = get(&cache, 3, &ten, &calls); // evicts 2
        assert!(cache.peek(1).is_some(), "recently used key survives");
        assert!(cache.peek(2).is_none(), "LRU victim evicted");
        assert!(cache.peek(3).is_some());
        let st = cache.stats();
        assert_eq!(st.entries, 2);
        assert_eq!(st.evictions, 1);
        assert!(st.bytes <= 2 * (10 + ENTRY_OVERHEAD));
    }

    #[test]
    fn oversized_value_is_computed_but_never_cached() {
        let (cache, _clk) = test_cache(64); // < one entry's overhead+cost
        let calls = Cell::new(0);
        let big = "y".repeat(100);
        let (_, s1) = get(&cache, 5, &big, &calls);
        let (_, s2) = get(&cache, 5, &big, &calls);
        assert_eq!((s1, s2), (Status::Miss, Status::Miss));
        assert_eq!(calls.get(), 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn zero_capacity_bypasses() {
        let (cache, _clk) = test_cache(0);
        let calls = Cell::new(0);
        let (v, s) = get(&cache, 1, "v", &calls);
        assert_eq!(s, Status::Bypass);
        assert_eq!(*v.expect("computed"), "v");
        let (_, s2) = get(&cache, 1, "v", &calls);
        assert_eq!(s2, Status::Bypass);
        assert_eq!(calls.get(), 2);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (0, 0, 0));
    }

    #[test]
    fn disabling_bypasses_and_reenabling_restores() {
        let (cache, _clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "v", &calls);
        cache.set_enabled(false);
        let (_, s) = get(&cache, 1, "v", &calls);
        assert_eq!(s, Status::Bypass);
        cache.set_enabled(true);
        let (_, s) = get(&cache, 1, "v", &calls);
        assert_eq!(s, Status::Hit);
    }

    #[test]
    fn clear_drops_everything_and_resets_bytes() {
        let (cache, _clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "a", &calls);
        let _ = get(&cache, 2, "b", &calls);
        cache.clear();
        let st = cache.stats();
        assert_eq!((st.entries, st.bytes), (0, 0));
        let (_, s) = get(&cache, 1, "a", &calls);
        assert_eq!(s, Status::Miss);
    }

    #[test]
    fn positive_ttl_expires_entries() {
        let clk = Arc::new(EpochClock::new());
        let mut cfg = CacheConfig::new("ttl_test", 1 << 16, DEPS);
        cfg.shards = 1;
        cfg.ttl = Some(Duration::from_millis(30));
        let cache = Cache::with_clock(cfg, |v: &String| v.len(), Arc::clone(&clk));
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "v", &calls);
        let (_, s) = get(&cache, 1, "v", &calls);
        assert_eq!(s, Status::Hit);
        std::thread::sleep(Duration::from_millis(50));
        let (_, s) = get(&cache, 1, "v", &calls);
        assert_eq!(s, Status::Stale);
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn stamp_captured_before_compute_invalidates_racing_write() {
        // A mutation landing *during* the computation must leave the entry
        // already stale: the stamp is taken at flight creation.
        let (cache, clk) = test_cache(1 << 16);
        let clk2 = Arc::clone(&clk);
        let (_, s1) = cache.get_or_compute(3, None, move || {
            clk2.bump(Domain::Relational); // concurrent write, simulated inline
            Ok::<_, String>("computed-under-race".to_string())
        });
        assert_eq!(s1, Status::Miss);
        let calls = Cell::new(0);
        let (_, s2) = get(&cache, 3, "fresh", &calls);
        assert_eq!(
            s2,
            Status::Stale,
            "entry stamped pre-compute must not serve"
        );
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn snapshot_pinned_reader_keeps_hitting_its_generation() {
        let (cache, clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let stamp = clk.snapshot();
        let compute = || {
            calls.set(calls.get() + 1);
            Ok::<_, String>("old-gen".to_string())
        };
        let (v1, s1) = cache.get_or_compute_filtered_at(21, stamp, None, compute, |_| true);
        assert_eq!(s1, Status::Miss);
        assert_eq!(*v1.expect("computed"), "old-gen");
        // A writer commits; live readers are invalidated, but the reader
        // pinned at `stamp` keeps hitting its own generation.
        clk.bump(Domain::Relational);
        let (v2, s2) = cache.get_or_compute_filtered_at(
            21,
            stamp,
            None,
            || {
                calls.set(calls.get() + 1);
                Ok::<_, String>("recomputed".to_string())
            },
            |_| true,
        );
        assert_eq!(s2, Status::Hit, "pinned reader validates against stamp");
        assert_eq!(*v2.expect("hit"), "old-gen");
        assert_eq!(calls.get(), 1);
        // A live-clock lookup of the same key sees the entry as stale.
        let (_, s3) = get(&cache, 21, "fresh", &calls);
        assert_eq!(s3, Status::Stale);
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn insert_sweeps_stale_shard_residents() {
        let (cache, clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "a", &calls);
        let _ = get(&cache, 2, "b", &calls);
        clk.bump(Domain::SearchIndex);
        // Inserting key 3 sweeps the now-stale 1 and 2 from the shard.
        let _ = get(&cache, 3, "c", &calls);
        let st = cache.stats();
        assert_eq!(st.entries, 1);
        assert_eq!(st.stale_drops, 2);
    }

    #[test]
    fn status_labels_are_stable() {
        for (s, want) in [
            (Status::Hit, "hit"),
            (Status::Miss, "miss"),
            (Status::Stale, "stale"),
            (Status::Bypass, "bypass"),
            (Status::Degraded, "stale"),
        ] {
            assert_eq!(s.as_str(), want);
        }
        assert!(Status::Degraded.is_degraded());
        assert!(!Status::Stale.is_degraded());
        let _ = ALL_DOMAINS; // referenced so the import is exercised
    }

    fn grace_cache(grace: Option<Duration>) -> (Cache<String>, Arc<EpochClock>) {
        let clk = Arc::new(EpochClock::new());
        let mut cfg = CacheConfig::new("grace_test", 1 << 16, DEPS);
        cfg.shards = 1;
        cfg.stale_grace = grace;
        let cache = Cache::with_clock(cfg, |v: &String| v.len(), Arc::clone(&clk));
        (cache, clk)
    }

    #[test]
    fn without_grace_stale_entries_are_not_servable() {
        let (cache, clk) = grace_cache(None);
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "v1", &calls);
        clk.bump(Domain::Relational);
        assert!(cache.get_stale(1).is_none(), "no grace window configured");
    }

    #[test]
    fn grace_serves_stale_and_survives_failed_recompute() {
        let (cache, clk) = grace_cache(Some(Duration::from_secs(60)));
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "v1", &calls);
        // Fresh entries are servable too (age ~0).
        let (v, age) = cache.get_stale(1).expect("fresh entry servable");
        assert_eq!(*v, "v1");
        assert!(age < Duration::from_secs(1));

        clk.bump(Domain::Relational);
        let (v, _) = cache.get_stale(1).expect("grace keeps the stale value");
        assert_eq!(*v, "v1");

        // A failing recompute (negatively cached) must not displace it.
        let (r, s) = cache.get_or_compute(1, None, || Err::<String, String>("backend down".into()));
        assert!(matches!(r, Err(CacheError::Compute(_))));
        assert_eq!(
            s,
            Status::Stale,
            "retained entry still marks recompute stale"
        );
        let (v, _) = cache
            .get_stale(1)
            .expect("negative outcome must not evict the stale positive");
        assert_eq!(*v, "v1");
        assert_eq!(cache.stats().stale_serves, 3);

        // A successful recompute replaces it with fresh data.
        let (_, s) = get(&cache, 1, "v2", &calls);
        assert_eq!(s, Status::Stale);
        let (v, _) = cache.get_stale(1).expect("fresh again");
        assert_eq!(*v, "v2");
    }

    #[test]
    fn expired_grace_drops_the_entry() {
        let (cache, clk) = grace_cache(Some(Duration::from_millis(20)));
        let calls = Cell::new(0);
        let _ = get(&cache, 1, "v1", &calls);
        clk.bump(Domain::Relational);
        std::thread::sleep(Duration::from_millis(40));
        assert!(cache.get_stale(1).is_none(), "grace window elapsed");
        // And the lookup path evicts it like any stale entry.
        let (_, s) = get(&cache, 1, "v2", &calls);
        assert_eq!(s, Status::Stale);
        assert_eq!(cache.stats().stale_drops, 1);
    }

    #[test]
    fn filtered_errors_are_not_negatively_cached() {
        let (cache, _clk) = test_cache(1 << 16);
        let calls = Cell::new(0);
        let compute = || {
            calls.set(calls.get() + 1);
            Err::<String, String>("deadline exceeded".into())
        };
        let (r1, _) = cache.get_or_compute_filtered(11, None, compute, |_| false);
        assert!(matches!(r1, Err(CacheError::Compute(_))));
        let (r2, s2) = cache.get_or_compute_filtered(11, None, compute, |_| false);
        assert!(
            matches!(r2, Err(CacheError::Compute(_))),
            "second call recomputed instead of replaying a negative entry"
        );
        assert_eq!(s2, Status::Miss);
        assert_eq!(calls.get(), 2);
        assert_eq!(cache.stats().entries, 0);
    }
}
