//! # sensormeta-tx
//!
//! MVCC snapshot isolation for the sensormeta stores: a versioned,
//! copy-on-write publication cell ([`Mvcc`]) whose readers each hold a
//! consistent point-in-time [`Snapshot`] while a single serialized writer
//! commits new versions.
//!
//! The design is shadow paging rather than undo/redo:
//!
//! - Every published version is immutable and reference-counted. Opening a
//!   snapshot is one atomic `Arc` clone under a briefly-held `RwLock` —
//!   readers never wait on a writer's work, only on the pointer swap.
//! - Writers serialize on an internal mutex, build the next version as a
//!   structural copy-on-write clone of the current one (see
//!   `Database::clone_reader` / `TripleStore`'s `Arc`-shared indexes, which
//!   make the clone a handful of refcount bumps), apply their changes, and
//!   publish with a single pointer swap. A commit that errors publishes
//!   nothing — readers can never observe a partial transaction.
//! - Each version is stamped with the [`EpochClock`] vector taken *after*
//!   the commit's domain bumps, so the epoch vector is the snapshot
//!   identifier: the shared result cache keys entries by it, and a snapshot
//!   whose vector still matches the live clock is the current version.
//! - Old versions are garbage-collected by refcount: when the last
//!   snapshot pinning a superseded version drops, the version frees. The
//!   cell keeps only `Weak` history handles for accounting
//!   (`tx_versions_live`), never strong pins.
//!
//! Durability stays where it was: writers that mutate a durable store go
//! through the relstore WAL *inside* their commit closure, before the
//! publish. A crash mid-commit therefore recovers via WAL replay while no
//! published snapshot ever exposed the partial state.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use sensormeta_cache::{clock, Domain, EpochClock, EpochVector};
use sensormeta_obs as obs;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, Weak};

/// One immutable published version of the guarded state.
#[derive(Debug)]
struct Version<T> {
    data: T,
    /// The epoch-clock vector at publish time (after the commit's bumps):
    /// the snapshot identifier the result cache keys by.
    epochs: EpochVector,
    /// Monotonic publication sequence number, starting at 0 for the
    /// initial version.
    seq: u64,
}

/// A consistent point-in-time view of the state guarded by an [`Mvcc`].
///
/// Cloning a snapshot is an `Arc` clone; dropping the last handle to a
/// superseded version frees it. Dereferences to the guarded `T`.
pub struct Snapshot<T> {
    version: Arc<Version<T>>,
    live: Arc<()>,
}

impl<T> Snapshot<T> {
    /// The epoch vector this version was stamped with at publish time.
    pub fn epochs(&self) -> EpochVector {
        self.version.epochs
    }

    /// The publication sequence number of this version (0 = initial).
    pub fn seq(&self) -> u64 {
        self.version.seq
    }
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            version: Arc::clone(&self.version),
            live: Arc::clone(&self.live),
        }
    }
}

impl<T> Deref for Snapshot<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.version.data
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("seq", &self.version.seq)
            .field("epochs", &self.version.epochs)
            .finish_non_exhaustive()
    }
}

/// The clock versions are stamped by: the process-global one, or an
/// explicit clock for test isolation.
#[derive(Debug)]
enum ClockRef {
    Global,
    Owned(Arc<EpochClock>),
}

impl ClockRef {
    fn get(&self) -> &EpochClock {
        match self {
            ClockRef::Global => clock(),
            ClockRef::Owned(c) => c,
        }
    }
}

/// A multi-version publication cell: lock-free-ish snapshot reads (one
/// briefly-held pointer lock), a single serialized writer, refcount GC of
/// superseded versions.
#[derive(Debug)]
pub struct Mvcc<T> {
    /// The current published version. The lock is held only long enough to
    /// clone or swap the `Arc` — never across a reader's use of the data or
    /// a writer's commit work.
    current: RwLock<Arc<Version<T>>>,
    /// Serializes committers. Guards the seq counter so publish order and
    /// sequence numbers agree.
    writer: Mutex<u64>,
    /// Weak handles to superseded versions, for `versions_live` accounting;
    /// pruned on every publish. Never pins a version.
    history: Mutex<Vec<Weak<Version<T>>>>,
    /// One strong reference per open snapshot (minus our own), for the
    /// `tx_snapshots_live` gauge.
    live: Arc<()>,
    clock: ClockRef,
}

/// Exclusive access to the committer side of an [`Mvcc`], for writers that
/// keep their own mutable primary copy of the state and publish read-only
/// clones of it (the server's query engine does this so the WAL-owning
/// primary never needs to be cloned through `T: Clone`).
#[derive(Debug)]
pub struct Committer<'a, T> {
    cell: &'a Mvcc<T>,
    guard: MutexGuard<'a, u64>,
}

impl<T> Mvcc<T> {
    /// A cell whose initial version holds `data`, stamped with the current
    /// global clock.
    pub fn new(data: T) -> Mvcc<T> {
        Mvcc::build(data, ClockRef::Global)
    }

    /// A cell stamping versions against an explicit clock (test isolation —
    /// the global clock is bumped by every mutation in the process).
    pub fn with_clock(data: T, clock: Arc<EpochClock>) -> Mvcc<T> {
        Mvcc::build(data, ClockRef::Owned(clock))
    }

    fn build(data: T, clock: ClockRef) -> Mvcc<T> {
        let epochs = clock.get().snapshot();
        Mvcc {
            current: RwLock::new(Arc::new(Version {
                data,
                epochs,
                seq: 0,
            })),
            writer: Mutex::new(0),
            history: Mutex::new(Vec::new()),
            live: Arc::new(()),
            clock,
        }
    }

    /// Opens a consistent point-in-time snapshot of the current version.
    ///
    /// Cost: one `RwLock` read acquisition held across an `Arc` clone. A
    /// concurrent committer holds the write side only for the pointer swap,
    /// so readers are never blocked behind the commit's actual work.
    pub fn snapshot(&self) -> Snapshot<T> {
        let version = {
            let cur = read_lock(&self.current);
            Arc::clone(&cur)
        };
        let s = Snapshot {
            version,
            live: Arc::clone(&self.live),
        };
        obs::gauge("tx_snapshots_live").set(self.snapshots_live() as f64);
        s
    }

    /// Number of snapshots currently open (including clones).
    pub fn snapshots_live(&self) -> usize {
        // One reference is the cell's own `live` anchor.
        Arc::strong_count(&self.live).saturating_sub(1)
    }

    /// Sequence number of the current published version.
    pub fn seq(&self) -> u64 {
        read_lock(&self.current).seq
    }

    /// Epoch vector of the current published version.
    pub fn epochs(&self) -> EpochVector {
        read_lock(&self.current).epochs
    }

    /// Number of versions still reachable: the current one plus every
    /// superseded version kept alive by an open snapshot. Superseded
    /// versions with no snapshot pinning them have already been freed by
    /// their refcount — this reports, it never retains.
    pub fn versions_live(&self) -> usize {
        let mut hist = lock(&self.history);
        hist.retain(|w| w.strong_count() > 0);
        1 + hist.len()
    }

    /// Applies `f` to a copy-on-write clone of the current version and, on
    /// `Ok`, bumps `domains` on the clock, stamps the result with the
    /// post-bump epoch vector and publishes it as the next version.
    ///
    /// On `Err` nothing is published and no epoch is bumped: readers never
    /// observe a partial commit. Committers serialize on an internal mutex;
    /// readers keep opening snapshots of the previous version throughout.
    pub fn commit<E>(
        &self,
        domains: &[Domain],
        f: impl FnOnce(&mut T) -> Result<(), E>,
    ) -> Result<u64, E>
    where
        T: Clone,
    {
        let committer = self.begin();
        let mut data = {
            let cur = read_lock(&self.current);
            cur.data.clone()
        };
        f(&mut data)?;
        Ok(committer.publish(domains, data))
    }

    /// Begins a serialized commit section without cloning the published
    /// state. The returned [`Committer`] holds the writer lock; writers
    /// with their own primary copy mutate it, then call
    /// [`Committer::publish`].
    pub fn begin(&self) -> Committer<'_, T> {
        Committer {
            guard: lock(&self.writer),
            cell: self,
        }
    }
}

impl<T> Committer<'_, T> {
    /// A snapshot of the version current at this point in the commit
    /// section (no other committer can publish while this exists).
    pub fn base(&self) -> Snapshot<T> {
        self.cell.snapshot()
    }

    /// Bumps `domains` on the clock, stamps `data` with the post-bump
    /// epoch vector, and publishes it as the next version in one pointer
    /// swap. Returns the new sequence number.
    pub fn publish(mut self, domains: &[Domain], data: T) -> u64 {
        let clk = self.cell.clock.get();
        for &d in domains {
            clk.bump(d);
        }
        let epochs = clk.snapshot();
        *self.guard += 1;
        let seq = *self.guard;
        let next = Arc::new(Version { data, epochs, seq });
        let prev = {
            let mut cur = write_lock(&self.cell.current);
            std::mem::replace(&mut *cur, next)
        };
        {
            let mut hist = lock(&self.cell.history);
            hist.push(Arc::downgrade(&prev));
            hist.retain(|w| w.strong_count() > 0);
            obs::gauge("tx_versions_live").set((1 + hist.len()) as f64);
        }
        drop(prev);
        obs::counter("tx_commits_total").inc();
        seq
    }
}

/// Poison-proof `Mutex` lock: a panicked committer must not wedge every
/// future reader and writer; the data it was building was private to it
/// and was never published.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cell(v: i64) -> (Mvcc<Vec<i64>>, Arc<EpochClock>) {
        let clk = Arc::new(EpochClock::new());
        (Mvcc::with_clock(vec![v], Arc::clone(&clk)), clk)
    }

    #[test]
    fn snapshot_sees_version_at_open_time() {
        let (cell, _clk) = test_cell(1);
        let before = cell.snapshot();
        cell.commit::<()>(&[Domain::Relational], |v| {
            v.push(2);
            Ok(())
        })
        .unwrap();
        let after = cell.snapshot();
        assert_eq!(*before, vec![1], "old snapshot unchanged");
        assert_eq!(*after, vec![1, 2]);
        assert_eq!(before.seq(), 0);
        assert_eq!(after.seq(), 1);
    }

    #[test]
    fn failed_commit_publishes_nothing_and_bumps_nothing() {
        let (cell, clk) = test_cell(1);
        let stamp = clk.snapshot();
        let r = cell.commit(&[Domain::Relational], |v| {
            v.push(2);
            Err("boom")
        });
        assert_eq!(r, Err("boom"));
        assert_eq!(*cell.snapshot(), vec![1]);
        assert_eq!(cell.seq(), 0);
        assert_eq!(clk.snapshot(), stamp, "no epoch bump on abort");
    }

    #[test]
    fn commit_bumps_domains_and_stamps_post_bump_vector() {
        let (cell, clk) = test_cell(0);
        cell.commit::<()>(&[Domain::Relational, Domain::Triples], |_| Ok(()))
            .unwrap();
        assert_eq!(clk.get(Domain::Relational), 1);
        assert_eq!(clk.get(Domain::Triples), 1);
        assert_eq!(clk.get(Domain::WebGraph), 0);
        let s = cell.snapshot();
        assert_eq!(s.epochs(), clk.snapshot(), "stamp is post-bump");
        assert!(clk.matches(&s.epochs(), &sensormeta_cache::ALL_DOMAINS));
    }

    #[test]
    fn old_versions_gc_once_unpinned() {
        let (cell, _clk) = test_cell(0);
        let pin = cell.snapshot();
        for i in 0..5 {
            cell.commit::<()>(&[Domain::Relational], |v| {
                v.push(i);
                Ok(())
            })
            .unwrap();
        }
        // The pinned initial version survives; the three intermediate
        // versions (seq 1..=4 minus current) were freed as they were
        // superseded with no snapshot holding them.
        assert_eq!(cell.versions_live(), 2, "current + pinned initial");
        drop(pin);
        assert_eq!(cell.versions_live(), 1, "only current after unpin");
    }

    #[test]
    fn snapshot_accounting() {
        let (cell, _clk) = test_cell(0);
        assert_eq!(cell.snapshots_live(), 0);
        let a = cell.snapshot();
        let b = a.clone();
        assert_eq!(cell.snapshots_live(), 2);
        drop(a);
        assert_eq!(cell.snapshots_live(), 1);
        drop(b);
        assert_eq!(cell.snapshots_live(), 0);
    }

    #[test]
    fn external_committer_publishes_primary_copy() {
        let (cell, _clk) = test_cell(0);
        let mut primary = vec![0];
        let c = cell.begin();
        assert_eq!(*c.base(), vec![0]);
        primary.push(7);
        let seq = c.publish(&[Domain::WebGraph], primary.clone());
        assert_eq!(seq, 1);
        assert_eq!(*cell.snapshot(), vec![0, 7]);
    }

    #[test]
    fn committers_serialize_and_readers_do_not_block() {
        let cell = Arc::new(Mvcc::with_clock(0u64, Arc::new(EpochClock::new())));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        cell.commit::<()>(&[Domain::Relational], |v| {
                            *v += 1;
                            Ok(())
                        })
                        .unwrap();
                        let s = cell.snapshot();
                        assert!(*s <= 200);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*cell.snapshot(), 200, "no lost updates");
        assert_eq!(cell.seq(), 200);
    }

    #[test]
    fn poisoned_writer_recovers() {
        let cell = Arc::new(Mvcc::with_clock(0u64, Arc::new(EpochClock::new())));
        let c2 = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            c2.commit::<()>(&[], |_| panic!("injected")).ok();
        })
        .join();
        // The cell still works: the panicked commit published nothing.
        assert_eq!(*cell.snapshot(), 0);
        cell.commit::<()>(&[], |v| {
            *v = 9;
            Ok(())
        })
        .unwrap();
        assert_eq!(*cell.snapshot(), 9);
    }
}
